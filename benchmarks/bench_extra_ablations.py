"""Extra ablations beyond the paper's tables (design choices in DESIGN.md).

1. **Label-model agnosticism** (paper Sec. 4.3 claims the contextualized
   pipeline works with any label model): run the contextualized pipeline
   with each of the four aggregators.
2. **SEU engineering ablations** (Sec. 7 of DESIGN.md): the cold-start
   warm-up and the Platt-calibrated proxy are reproduction decisions the
   paper leaves unspecified — quantify them.
"""

import numpy as np

from benchmarks.conftest import current_scale, get_dataset
from repro.core.config import NemoConfig
from repro.core.seu import SEUSelector
from repro.experiments.protocol import run_learning_curve
from repro.experiments.reporting import format_table
from repro.interactive.simulated_user import SimulatedUser
from repro.utils.rng import stable_hash_seed

LABEL_MODELS = ("metal", "majority", "dawid-skene", "triplet")


def _run_config(config, dataset, scale, n_seeds=None):
    summaries = []
    for run_idx in range(n_seeds or scale.n_seeds):
        seed = stable_hash_seed("extra", dataset.name, run_idx)
        user = SimulatedUser(dataset, seed=stable_hash_seed("u", run_idx))
        session = config.create_session(dataset, user, seed=seed)
        curve = run_learning_curve(
            session, n_iterations=scale.n_iterations, eval_every=scale.eval_every
        )
        summaries.append(curve.summary)
    return float(np.mean(summaries))


def _label_model_table():
    scale = current_scale()
    rows = {}
    for ds_name in ("amazon", "sms"):
        dataset = get_dataset(ds_name)
        rows[ds_name] = [
            _run_config(
                NemoConfig(selector="random", contextualize=True, label_model=name),
                dataset,
                scale,
            )
            for name in LABEL_MODELS
        ]
    return rows


def _seu_engineering_table():
    scale = current_scale()
    rows = {}
    variants = {
        "seu (default)": NemoConfig(selector="seu", contextualize=False),
        "no warmup": NemoConfig(
            selector=SEUSelector(warmup=0), contextualize=False
        ),
        "long warmup (10)": NemoConfig(
            selector=SEUSelector(warmup=10), contextualize=False
        ),
    }
    for ds_name in ("amazon", "imdb"):
        dataset = get_dataset(ds_name)
        rows[ds_name] = [
            _run_config(cfg, dataset, scale) for cfg in variants.values()
        ]
    return rows, list(variants)


def test_label_model_agnosticism(benchmark, scale):
    rows = benchmark.pedantic(_label_model_table, rounds=1, iterations=1)
    print()
    print(
        format_table(
            f"Extra ablation - contextualized pipeline across label models "
            f"(scale={scale.name})",
            list(LABEL_MODELS),
            rows,
        )
    )
    # The default aggregator (metal) must clear a sanity floor; the others
    # only need to complete (a weak aggregator may legitimately score ~0 F1
    # on the imbalanced task).
    for ds, values in rows.items():
        metal_score = values[LABEL_MODELS.index("metal")]
        floor = 0.05 if ds == "sms" else 0.4
        assert metal_score > floor, (ds, values)
        assert all(v >= 0.0 for v in values)


def test_seu_cold_start_engineering(benchmark, scale):
    rows, names = benchmark.pedantic(_seu_engineering_table, rounds=1, iterations=1)
    print()
    print(
        format_table(
            f"Extra ablation - SEU cold-start warm-up (scale={scale.name})",
            names,
            rows,
        )
    )
    if scale.name == "tiny":
        return
    default = np.array([rows[ds][0] for ds in rows])
    no_warmup = np.array([rows[ds][1] for ds in rows])
    # The warm-up exists to prevent the polarity lock-in; on average it
    # must not be worse than launching SEU cold.
    assert default.mean() >= no_warmup.mean() - 0.05
