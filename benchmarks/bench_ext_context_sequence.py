"""Extension bench: weighted context-sequence contextualizer (γ sweep).

Section 3 of the paper leaves "the incorporation of longer weighted
context-sequence as a future direction"; ``repro.core.context_sequence``
implements it with an exponential recency decay γ (γ = 0 recovers the
paper's single-point Eq. 4).  This bench sweeps γ under random selection
(isolating the learning pipeline, as Table 8 does) and reports the curve
averages.

Expected shape: γ = 0 (the paper's choice) is a strong default; small γ
performs comparably — the sequence context mildly dilates radii toward
regions the user has already visited — while γ = 1 (uniform history) drifts
the refinement region away from each LF's own development point and should
not win.  The standard (uncontextualized) pipeline trails all of them.
"""

import numpy as np

from benchmarks.conftest import current_scale, get_dataset
from repro.core.config import NemoConfig
from repro.experiments.protocol import run_learning_curve
from repro.experiments.reporting import format_table
from repro.interactive.simulated_user import SimulatedUser
from repro.utils.rng import stable_hash_seed

GAMMAS = (0.0, 0.25, 0.5, 1.0)
DATASETS = ("amazon", "yelp", "sms")


def _run_config(config, dataset, scale):
    summaries = []
    for run_idx in range(scale.n_seeds):
        seed = stable_hash_seed("ctxseq", dataset.name, run_idx)
        user = SimulatedUser(dataset, seed=stable_hash_seed("u", run_idx))
        session = config.create_session(dataset, user, seed=seed)
        curve = run_learning_curve(
            session, n_iterations=scale.n_iterations, eval_every=scale.eval_every
        )
        summaries.append(curve.summary)
    return float(np.mean(summaries))


def _gamma_table():
    scale = current_scale()
    rows = {}
    for ds_name in DATASETS:
        dataset = get_dataset(ds_name)
        cells = [
            _run_config(
                NemoConfig(selector="random", contextualize=True, context_gamma=g),
                dataset,
                scale,
            )
            for g in GAMMAS
        ]
        cells.append(
            _run_config(
                NemoConfig(selector="random", contextualize=False), dataset, scale
            )
        )
        rows[ds_name] = cells
    return rows


def test_ext_context_sequence_gamma_sweep(benchmark, scale):
    rows = benchmark.pedantic(_gamma_table, rounds=1, iterations=1)
    columns = [f"gamma={g}" for g in GAMMAS] + ["standard"]
    print()
    print(
        format_table(
            f"Extension - context-sequence contextualizer sweep (scale={scale.name})",
            columns,
            rows,
        )
    )
    if scale.name == "tiny":
        return
    gamma0 = np.array([rows[ds][0] for ds in rows])
    best_ctx = np.array([max(rows[ds][:-1]) for ds in rows])
    standard = np.array([rows[ds][-1] for ds in rows])
    # Contextualized (any gamma) beats the standard pipeline on average.
    assert best_ctx.mean() > standard.mean()
    # The paper's single-point refinement stays within noise of the best gamma.
    assert gamma0.mean() > best_ctx.mean() - 0.05
