"""Figure 3: the toy four-cluster illustration of LF generalization.

The paper's toy: development points (stars) in a 2-D clustered dataset
produce LFs that generalize mostly to nearby examples and are more accurate
near their development data.  We reproduce it mechanically: radius-based
"keyword" LFs around sampled dev points, measured near vs. far.
"""

import numpy as np

from repro.data.synthetic import make_toy_clusters
from repro.experiments.reporting import format_table
from repro.utils.rng import ensure_rng


def _run():
    X, y, clusters = make_toy_clusters(n_docs=600, n_clusters=4, seed=0)
    rng = ensure_rng(1)
    rows = {}
    near_accs, far_accs = [], []
    for trial in range(20):
        dev = int(rng.integers(0, len(y)))
        dists = np.linalg.norm(X - X[dev], axis=1)
        votes = np.where(dists < 2.0, y[dev], 0)  # LF labels the dev neighborhood
        fired = votes != 0
        near = fired & (dists < 1.0)
        far_threshold = np.median(dists)
        far = (dists >= far_threshold)
        if near.any():
            near_accs.append((votes[near] == y[near]).mean())
        # accuracy the LF *would* have if over-generalized to far examples
        far_accs.append((y[dev] == y[far]).mean())
    rows["near dev data"] = [float(np.mean(near_accs))]
    rows["far from dev data"] = [float(np.mean(far_accs))]
    return rows


def test_figure3_toy_cluster_generalization(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            "Figure 3 - toy clusters: LF accuracy near vs far from development data",
            ["accuracy"],
            rows,
            highlight_max=False,
        )
    )
    assert rows["near dev data"][0] > rows["far from dev data"][0] + 0.2
