"""Shared infrastructure for the paper-reproduction benchmarks.

Every table and figure of the paper's evaluation has one bench module.
Each bench runs the relevant experiment once (``benchmark.pedantic`` with a
single round — the quantity of interest is the *result*, not the wall
time) and prints a paper-style table to stdout.

Scale is controlled by the ``REPRO_SCALE`` environment variable:

* ``tiny``  — smoke scale (CI): tiny corpora, 15 iterations, 2 seeds.
* ``bench`` — default: ~10x-reduced corpora, the paper's 50 iterations
  (eval every 5), 3 seeds.
* ``paper`` — paper-sized corpora, 50 iterations, 5 seeds (slow).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.data import load_dataset
from repro.experiments.protocol import evaluate_method
from repro.experiments.runners import make_method

ALL_DATASETS = ("amazon", "yelp", "imdb", "youtube", "sms", "vg")


@dataclass(frozen=True)
class BenchScale:
    name: str
    dataset_scale: str
    n_iterations: int
    eval_every: int
    n_seeds: int


_SCALES = {
    "tiny": BenchScale("tiny", "tiny", 15, 5, 2),
    "bench": BenchScale("bench", "bench", 50, 5, 3),
    "paper": BenchScale("paper", "paper", 50, 5, 5),
}


def current_scale() -> BenchScale:
    name = os.environ.get("REPRO_SCALE", "bench")
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(
            f"REPRO_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        ) from None


_dataset_cache: dict[tuple[str, str], object] = {}


def get_dataset(name: str, scale: BenchScale | None = None):
    """Load (and cache) a benchmark dataset at the current scale."""
    scale = scale or current_scale()
    key = (name, scale.dataset_scale)
    if key not in _dataset_cache:
        _dataset_cache[key] = load_dataset(name, scale=scale.dataset_scale, seed=0)
    return _dataset_cache[key]


def run_cell(
    method_name: str,
    dataset,
    scale: BenchScale | None = None,
    user_threshold: float = 0.5,
    base_seed: int = 0,
):
    """One (method, dataset) cell of a results table."""
    scale = scale or current_scale()
    return evaluate_method(
        make_method(method_name, user_threshold=user_threshold),
        method_name,
        dataset,
        n_iterations=scale.n_iterations,
        eval_every=scale.eval_every,
        n_seeds=scale.n_seeds,
        base_seed=base_seed,
    )


def run_table(method_names, dataset_names, user_threshold: float = 0.5):
    """Fill a whole table: {dataset: [summary per method]}."""
    scale = current_scale()
    rows = {}
    for ds_name in dataset_names:
        dataset = get_dataset(ds_name, scale)
        rows[ds_name] = [
            run_cell(m, dataset, scale, user_threshold=user_threshold).summary_mean
            for m in method_names
        ]
    return rows


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    return current_scale()
