"""Table 4: component ablation — Nemo without the selector / contextualizer.

Paper reference (Table 4): removing the data selector costs an average 7%,
removing the LF contextualizer an average 3%; both components matter.

    dataset  Nemo    no-selector  no-contextualizer
    amazon   0.7674  0.7244       0.7384
    yelp     0.7907  0.7360       0.7219
    imdb     0.7958  0.7557       0.7932
    youtube  0.8722  0.8407       0.8628
    sms      0.7038  0.6092       0.6899
    vg       0.6701  0.6253       0.6542
"""

import numpy as np

from benchmarks.conftest import ALL_DATASETS, run_table
from repro.experiments.reporting import format_table

METHODS = ("nemo", "nemo-no-selector", "nemo-no-contextualizer")


def test_table4_component_ablation(benchmark, scale):
    rows = benchmark.pedantic(run_table, args=(METHODS, ALL_DATASETS), rounds=1, iterations=1)
    print()
    print(
        format_table(
            f"Table 4 - Nemo component ablation (scale={scale.name})",
            list(METHODS),
            rows,
        )
    )
    if scale.name == "tiny":
        return
    nemo = np.array([rows[ds][0] for ds in rows])
    no_sel = np.array([rows[ds][1] for ds in rows])
    no_ctx = np.array([rows[ds][2] for ds in rows])
    # Averaged over datasets, the full system beats both ablations.
    assert nemo.mean() > no_sel.mean() - 1e-6
    assert nemo.mean() > no_ctx.mean() - 0.01
