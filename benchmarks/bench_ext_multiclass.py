"""Extension bench: the IDP pipeline generalized to K classes.

The paper evaluates binary tasks only ("for ease of exposition", Sec. 3).
This bench runs the multiclass generalization on the 4-topic synthetic
dataset and checks that the paper's headline shape carries over:

    Nemo-MC (SEU + contextualized)  >  SEU-only  >  Snorkel-MC (random)

plus a label-model comparison (Dawid-Skene EM vs majority vote) under the
random pipeline, mirroring the binary label-model-agnosticism ablation.
"""

import numpy as np

from benchmarks.conftest import current_scale
from repro.experiments.reporting import format_table
from repro.multiclass import (
    MCContextualizer,
    MCMajorityVote,
    MCPercentileTuner,
    MCRandomSelector,
    MCSEUSelector,
    MCSimulatedUser,
    MultiClassSession,
    make_topics_dataset,
)

_SCALE_DOCS = {"tiny": 600, "bench": 1500, "paper": 4000}
_SCALE_VOCAB = {"tiny": 8, "bench": 15, "paper": 40}


def _curve_average(dataset, selector_factory, contextualize, label_model_factory, seed, scale):
    session = MultiClassSession(
        dataset,
        selector_factory(),
        MCSimulatedUser(dataset, accuracy_threshold=0.5, seed=seed),
        label_model_factory=label_model_factory,
        contextualizer=(
            MCContextualizer(n_classes=dataset.n_classes) if contextualize else None
        ),
        percentile_tuner=MCPercentileTuner() if contextualize else None,
        seed=seed,
    )
    points = []
    for i in range(scale.n_iterations):
        session.step()
        if (i + 1) % scale.eval_every == 0:
            points.append(session.test_score())
    return float(np.mean(points))


def _run_multiclass_table():
    scale = current_scale()
    dataset = make_topics_dataset(
        n_docs=_SCALE_DOCS[scale.name], seed=0, vocab_scale=_SCALE_VOCAB[scale.name]
    )
    priors = dataset.class_priors
    configs = {
        "nemo-mc": (MCSEUSelector, True, None),
        "seu-only": (MCSEUSelector, False, None),
        "ctx-only": (MCRandomSelector, True, None),
        "snorkel-mc": (MCRandomSelector, False, None),
        "snorkel-mc/majority": (
            MCRandomSelector,
            False,
            lambda: MCMajorityVote(n_classes=4, class_priors=priors),
        ),
    }
    results = {}
    for name, (selector_factory, ctx, lm_factory) in configs.items():
        scores = [
            _curve_average(dataset, selector_factory, ctx, lm_factory, seed, scale)
            for seed in range(scale.n_seeds)
        ]
        results[name] = float(np.mean(scores))
    return results


def test_ext_multiclass_idp(benchmark, scale):
    results = benchmark.pedantic(_run_multiclass_table, rounds=1, iterations=1)
    print()
    print(
        format_table(
            f"Extension - multiclass IDP on 4-topic dataset (scale={scale.name})",
            list(results),
            {"topics": [results[k] for k in results]},
        )
    )
    if scale.name == "tiny":
        return
    assert results["nemo-mc"] > results["snorkel-mc"], "Nemo-MC must beat random+standard"
    assert results["seu-only"] > results["snorkel-mc"] - 0.01, "SEU carries to K classes"
    # The DS label model should not fall behind plain majority vote.
    assert results["snorkel-mc"] >= results["snorkel-mc/majority"] - 0.03
