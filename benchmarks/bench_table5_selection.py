"""Table 5: selection strategies under the standard (uncontextualized) pipeline.

Paper reference (Table 5): SEU consistently beats Random, Abstain and
Disagree — by up to 44% over Random (SMS) — when the learning pipeline is
fixed to the vanilla procedure.

    dataset  SEU     Random  Abstain Disagree
    amazon   0.7384  0.6774  0.6783  0.6733
    yelp     0.7219  0.6556  0.6664  0.6887
    imdb     0.7932  0.7107  0.7338  0.7480
    youtube  0.8628  0.8235  0.8541  0.8527
    sms      0.6899  0.4789  0.6189  0.5485
    vg       0.6542  0.6152  0.6250  0.6384
"""

import numpy as np

from benchmarks.conftest import ALL_DATASETS, run_table
from repro.experiments.reporting import format_table, relative_lift
from repro.experiments.runners import TABLE5_METHODS


def test_table5_selection_strategies(benchmark, scale):
    rows = benchmark.pedantic(
        run_table, args=(TABLE5_METHODS, ALL_DATASETS), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            f"Table 5 - selection strategies, standard pipeline (scale={scale.name})",
            list(TABLE5_METHODS),
            rows,
        )
    )
    seu = np.array([rows[ds][0] for ds in rows])
    random = np.array([rows[ds][1] for ds in rows])
    lift = relative_lift(seu.mean(), random.mean())
    print(f"\nmean SEU lift over Random: {lift:+.1%} (paper: +16% average)")
    if scale.name == "tiny":
        return
    assert seu.mean() > random.mean(), "SEU should beat Random on average"
    wins = int((seu > random).sum())
    assert wins >= len(rows) - 2
