"""Table 3: the user study, reproduced with noisy simulated participants.

The paper ran 15 human participants on Amazon (30 iterations, evaluation
every 3).  Humans are not reproducible offline; we substitute a cohort of
heterogeneous :class:`NoisyUser` participants (per-user accuracy
thresholds, label-reading mistakes, imperfect lexicon adherence) and keep
the protocol.  The reaction-time row is a human-subject measurement with no
computational analogue and is reported as ``n/a`` (see DESIGN.md).

Paper reference (performance row):

    Nemo 0.7473 - Snorkel 0.6665 - Sn-Abs 0.6689 - Sn-Dis 0.6600 -
    ImplyLoss-L 0.6833 - US 0.5882 - IWS-LSE 0.5971
"""

import numpy as np

from benchmarks.conftest import current_scale, get_dataset
from repro.experiments.protocol import run_learning_curve
from repro.experiments.reporting import format_table
from repro.interactive.simulated_user import NoisyUser
from repro.utils.rng import ensure_rng, stable_hash_seed

METHODS = ("nemo", "snorkel", "snorkel-abs", "snorkel-dis", "implyloss-l", "us", "iws-lse")


def _noisy_user_factory(method_name):
    """Like the registry factories, but with a NoisyUser participant."""
    from repro.core.config import NemoConfig
    from repro.interactive.implyloss_session import ImplyLossSession
    from repro.interactive.iws import IWSLSEMethod
    from repro.interactive.uncertainty import UncertaintySampling

    configs = {
        "nemo": NemoConfig(),
        "snorkel": NemoConfig(selector="random", contextualize=False),
        "snorkel-abs": NemoConfig(selector="abstain", contextualize=False),
        "snorkel-dis": NemoConfig(selector="disagree", contextualize=False),
    }

    def make_user(dataset, seed):
        rng = ensure_rng(stable_hash_seed("study-user", method_name, seed))
        return NoisyUser(
            dataset,
            accuracy_threshold=float(rng.uniform(0.45, 0.7)),
            mislabel_rate=float(rng.uniform(0.0, 0.1)),
            judgment_noise=float(rng.uniform(0.05, 0.15)),
            lexicon_adherence=float(rng.uniform(0.6, 0.95)),
            seed=rng,
        )

    def factory(dataset, seed):
        if method_name in configs:
            return configs[method_name].create_session(
                dataset, make_user(dataset, seed), seed=seed
            )
        if method_name == "implyloss-l":
            return ImplyLossSession(dataset, make_user(dataset, seed), seed=seed)
        if method_name == "us":
            return UncertaintySampling(dataset, seed=seed)
        if method_name == "iws-lse":
            return IWSLSEMethod(dataset, seed=seed)
        raise ValueError(method_name)

    return factory


def _run():
    scale = current_scale()
    dataset = get_dataset("amazon")
    n_participants = 5 if scale.name != "tiny" else 2
    n_iterations = 30 if scale.name != "tiny" else 9
    results = {}
    for method in METHODS:
        factory = _noisy_user_factory(method)
        summaries = []
        for participant in range(n_participants):
            curve = run_learning_curve(
                factory(dataset, participant), n_iterations=n_iterations, eval_every=3
            )
            summaries.append(curve.summary)
        results[method] = float(np.mean(summaries))
    return results


def test_table3_user_study(benchmark, scale):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = {
        "performance": [results[m] for m in METHODS],
        "react time (median)": [None] * len(METHODS),
    }
    print()
    print(
        format_table(
            f"Table 3 - simulated user study on amazon (scale={scale.name}; "
            "reaction times are human-subject measurements: n/a)",
            list(METHODS),
            rows,
        )
    )
    if scale.name == "tiny":
        return
    assert results["nemo"] > results["us"], "Nemo should beat label-query AL"
