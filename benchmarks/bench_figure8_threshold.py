"""Figure 8: sensitivity to the simulated user's LF-accuracy threshold.

Paper claims (Fig. 8): performance improves with the threshold for all
methods; Nemo is the best at every threshold and degrades the least when
the threshold drops from 0.7 to 0.5.
"""

import numpy as np

from benchmarks.conftest import current_scale, get_dataset, run_cell
from repro.experiments.reporting import format_table

METHODS = ("nemo", "snorkel", "snorkel-abs", "snorkel-dis")
THRESHOLDS = (0.5, 0.6, 0.7)


def _run():
    scale = current_scale()
    datasets = ["amazon", "sms"] if scale.name != "tiny" else ["amazon"]
    table = {}
    for t in THRESHOLDS:
        for method in METHODS:
            scores = [
                run_cell(method, get_dataset(ds), user_threshold=t).summary_mean
                for ds in datasets
            ]
            table[(t, method)] = float(np.mean(scores))
    return table


def test_figure8_threshold_sensitivity(benchmark, scale):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = {
        f"t={t}": [table[(t, m)] for m in METHODS] for t in THRESHOLDS
    }
    print()
    print(
        format_table(
            f"Figure 8 - sensitivity to LF accuracy threshold (scale={scale.name}, "
            "mean over amazon+sms)",
            list(METHODS),
            rows,
        )
    )
    if scale.name == "tiny":
        return
    # Nemo leads at every threshold.
    for t in THRESHOLDS:
        assert table[(t, "nemo")] >= max(table[(t, m)] for m in METHODS) - 0.02
    # Nemo's drop from t=0.7 to t=0.5 is no worse than Snorkel's.
    nemo_drop = table[(0.7, "nemo")] - table[(0.5, "nemo")]
    snorkel_drop = table[(0.7, "snorkel")] - table[(0.5, "snorkel")]
    assert nemo_drop <= snorkel_drop + 0.05
