"""Table 6: SEU user-model ablation (accuracy-weighted vs uniform).

Paper reference (Table 6): replacing Eq. 2's accuracy weighting with a
uniform pick distribution costs SEU most of its advantage on every dataset.

    dataset  SEU(Eq.6)  Uniform
    amazon   0.7384     0.6774
    yelp     0.7219     0.6556
    imdb     0.7932     0.7107
    youtube  0.8628     0.8235
    sms      0.6899     0.4789
    vg       0.6542     0.5592
"""

import numpy as np

from benchmarks.conftest import ALL_DATASETS, run_table
from repro.experiments.reporting import format_table

METHODS = ("seu", "seu-uniform")


def test_table6_user_model_ablation(benchmark, scale):
    rows = benchmark.pedantic(run_table, args=(METHODS, ALL_DATASETS), rounds=1, iterations=1)
    print()
    print(
        format_table(
            f"Table 6 - SEU user-model ablation (scale={scale.name})",
            ["seu (accuracy-weighted)", "seu (uniform)"],
            rows,
        )
    )
    if scale.name == "tiny":
        return
    accuracy_weighted = np.array([rows[ds][0] for ds in rows])
    uniform = np.array([rows[ds][1] for ds in rows])
    assert accuracy_weighted.mean() > uniform.mean() - 0.01
