"""Table 2: end-to-end performance of Nemo vs. every baseline.

Paper reference (Table 2, learning-curve averages):

    dataset  Nemo    Snorkel Sn-Abs  Sn-Dis  ImplyL  US      IWS     BALD    AW
    amazon   0.7674  0.6774  0.6783  0.6733  0.6822  0.5970  0.6234  0.6193  0.6951
    yelp     0.7907  0.6556  0.6664  0.6887  0.7009  0.6239  0.6415  0.6129  0.6745
    imdb     0.7958  0.7107  0.7338  0.7480  0.6766  0.6058  0.6295  0.5933  0.7247
    youtube  0.8722  0.8235  0.8541  0.8527  0.6811  0.7609  0.7904  0.7816  0.8073
    sms      0.7038  0.4789  0.6189  0.5485  0.5065  0.4234  0.6305  0.4536  0.5569
    vg       0.6701  0.6152  0.6250  0.6384  0.6270  0.5662  0.5976  0.5703  0.5914

Expected *shapes* (absolute numbers will differ on the synthetic substrate):
Nemo is the strongest full-IDP method; IDP methods generally beat the
label-per-query schemes (US/BALD); SEU-style gains are largest on SMS.
"""

from benchmarks.conftest import ALL_DATASETS, run_table
from repro.experiments.reporting import format_table
from repro.experiments.runners import TABLE2_METHODS


def test_table2_end_to_end(benchmark, scale):
    rows = benchmark.pedantic(
        run_table, args=(TABLE2_METHODS, ALL_DATASETS), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            f"Table 2 - end-to-end learning-curve averages (scale={scale.name}, "
            f"{scale.n_seeds} seeds x {scale.n_iterations} iterations)",
            list(TABLE2_METHODS),
            rows,
        )
    )
    if scale.name == "tiny":  # smoke only: shape claims need bench scale
        return
    nemo_idx = TABLE2_METHODS.index("nemo")
    snorkel_idx = TABLE2_METHODS.index("snorkel")
    us_idx = TABLE2_METHODS.index("us")
    wins = sum(rows[ds][nemo_idx] > rows[ds][snorkel_idx] for ds in rows)
    assert wins >= len(rows) - 1, "Nemo should beat Snorkel almost everywhere"
    nemo_beats_al = sum(rows[ds][nemo_idx] > rows[ds][us_idx] for ds in rows)
    assert nemo_beats_al >= len(rows) - 1, "full IDP beats label-per-query AL"
