"""Table 7: SEU utility-function ablation (Eq. 3's two factors).

Paper reference (Table 7): dropping either the informativeness term
(label-model uncertainty) or the correctness term (ŷ agreement) hurts; the
correctness term matters more.

    dataset  SEU(Eq.3)  No-Informativeness  No-Correctness
    amazon   0.7384     0.7369              0.6683
    yelp     0.7219     0.7211              0.6536
    imdb     0.7932     0.7911              0.7847
    youtube  0.8628     0.8538              0.8552
    sms      0.6899     0.6695              0.6517
    vg       0.6542     0.6486              0.6346
"""

import numpy as np

from benchmarks.conftest import ALL_DATASETS, run_table
from repro.experiments.reporting import format_table

METHODS = ("seu", "seu-no-informativeness", "seu-no-correctness")


def test_table7_utility_ablation(benchmark, scale):
    rows = benchmark.pedantic(run_table, args=(METHODS, ALL_DATASETS), rounds=1, iterations=1)
    print()
    print(
        format_table(
            f"Table 7 - SEU utility-function ablation (scale={scale.name})",
            ["full (Eq. 3)", "no informativeness", "no correctness"],
            rows,
        )
    )
    if scale.name == "tiny":
        return
    full = np.array([rows[ds][0] for ds in rows])
    no_info = np.array([rows[ds][1] for ds in rows])
    no_corr = np.array([rows[ds][2] for ds in rows])
    # The informativeness term is load-bearing: removing it collapses the
    # imbalanced tasks (paper agrees).
    assert full.mean() >= no_info.mean() - 0.02
    # Divergence from the paper (documented in EXPERIMENTS.md): on the
    # synthetic substrate the correctness term does NOT help on average —
    # the oracle user's accuracy filter already blocks the harmful LFs the
    # term is designed to avoid, so pure uncertainty-coverage explores
    # better.  We report the comparison without asserting the paper's
    # direction.
    print(
        f"\nfull={full.mean():.4f}  no-informativeness={no_info.mean():.4f}  "
        f"no-correctness={no_corr.mean():.4f}"
    )
