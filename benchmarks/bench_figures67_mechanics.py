"""Figures 6 & 7: the selector's and contextualizer's mechanics, measured.

Figure 6 (selection): once the dominant clusters are saturated with LFs,
random sampling keeps landing on already-covered examples while SEU's
expected utility concentrates on the under-covered small clusters.

Figure 7 (contextualization): on the paper's 2-D toy, two over-generalized
LFs with opposite labels conflict between their clusters; even with perfect
per-source accuracies the standard pipeline mislabels one side of the
conflict region, while radius refinement (Eq. 4) resolves it.
"""

import numpy as np

from benchmarks.conftest import get_dataset
from repro.core import LFFamily, SEUSelector
from repro.core.selection import SessionState
from repro.experiments.reporting import format_table
from repro.labelmodel import MetalLabelModel, apply_lfs
from repro.labelmodel.base import posterior_entropy
from repro.utils.rng import ensure_rng


def _figure6():
    dataset = get_dataset("amazon")
    train = dataset.train
    family = LFFamily(dataset.primitive_names, train.B)
    rng = ensure_rng(0)

    # Cover the two dominant clusters with simulated-user-style LFs.
    from repro.interactive.simulated_user import SimulatedUser

    user = SimulatedUser(dataset, seed=0)
    big_clusters = {0, 1}
    state = _state(dataset, family, rng)
    lfs = []
    candidates = np.flatnonzero(np.isin(train.clusters, list(big_clusters)))
    for dev in rng.permutation(candidates):
        lf = user.create_lf(int(dev), state)
        if lf is not None:
            lfs.append(lf)
            state.lfs.append(lf)
        if len(lfs) >= 40:  # saturate the dominant clusters (Fig. 6's premise)
            break
    L = apply_lfs(lfs, train.B)
    model = MetalLabelModel(class_prior=dataset.label_prior)
    soft = model.fit_predict_proba(L)
    state.L_train = L
    state.soft_labels = soft
    state.entropies = posterior_entropy(soft)
    # Emulate the session's ground-truth proxy: an end model trained on the
    # current soft labels (SEU is meaningless with a prior-flat proxy).
    from repro.endmodel.logistic import SoftLabelLogisticRegression

    covered = (L != 0).any(axis=1)
    end_model = SoftLabelLogisticRegression()
    end_model.fit(train.X[np.flatnonzero(covered)], soft[covered])
    state.proxy_proba = end_model.predict_proba(train.X)
    state.proxy_labels = np.where(state.proxy_proba >= 0.5, 1, -1)

    small_mask = ~np.isin(train.clusters, list(big_clusters))
    # Random selection hits the small clusters at their population rate...
    random_rate = small_mask.mean()
    # ...while SEU's expected utility concentrates there.
    seu = SEUSelector(warmup=0)
    scores = seu.expected_utilities(state)
    top = np.argsort(scores)[::-1][:50]
    seu_rate = small_mask[top].mean()
    return {
        "small-cluster population mass (= random hit rate)": [float(random_rate)],
        "SEU top-50 in small clusters": [float(seu_rate)],
        "n saturating LFs": [float(len(lfs))],
    }


def _state(dataset, family, rng):
    n = dataset.train.n
    prior = dataset.label_prior
    soft = np.full(n, prior)
    return SessionState(
        dataset=dataset,
        family=family,
        iteration=0,
        lfs=[],
        L_train=np.zeros((n, 0), dtype=np.int8),
        soft_labels=soft,
        entropies=posterior_entropy(soft),
        proxy_labels=np.where(rng.random(n) < prior, 1, -1),
        proxy_proba=np.full(n, prior),
        selected=set(),
        rng=rng,
    )


def _figure7():
    """Example 4.5/4.6 on the paper's 2-D toy geometry (Eq. 4 by hand)."""
    from repro.data.synthetic import make_toy_clusters
    from repro.text.distance import euclidean_distances_to_point

    X, y, clusters = make_toy_clusters(n_docs=800, n_clusters=4, separation=4.0,
                                       noise=1.1, seed=2)
    # Development points: one from a +1 cluster, one from a -1 cluster.
    dev_pos = int(np.flatnonzero((clusters == 0) & (y == 1))[0])
    dev_neg = int(np.flatnonzero((clusters == 1) & (y == -1))[0])
    # Over-generalized LFs: vote their label within a too-large radius.
    votes = np.zeros((len(y), 2), dtype=np.int8)
    dist_pos = euclidean_distances_to_point(X, X[dev_pos])
    dist_neg = euclidean_distances_to_point(X, X[dev_neg])
    votes[dist_pos < 5.5, 0] = 1
    votes[dist_neg < 5.5, 1] = -1
    conflict = (votes[:, 0] != 0) & (votes[:, 1] != 0)

    def resolve(L):
        total = L.sum(axis=1)
        return np.sign(total)

    standard_preds = resolve(votes)  # ties in the conflict region stay 0
    # Eq. 4: keep each LF only within the p-th percentile of its distances.
    refined = votes.copy()
    for j, dists in enumerate((dist_pos, dist_neg)):
        radius = np.percentile(dists, 25.0)
        refined[dists > radius, j] = 0
    refined_preds = resolve(refined)

    def acc(preds, mask):
        decided = mask & (preds != 0)
        if not decided.any():
            return None
        return float((preds[decided] == y[decided]).mean())

    covered = (votes != 0).any(axis=1)
    return {
        "accuracy on covered": [acc(standard_preds, covered), acc(refined_preds, covered)],
        "conflict points decided correctly": [
            acc(standard_preds, conflict),
            acc(refined_preds, conflict),
        ],
        "n conflict points": [float(conflict.sum()), float(conflict.sum())],
    }


def test_figure6_selection_mechanics(benchmark):
    rows = benchmark.pedantic(_figure6, rounds=1, iterations=1)
    print()
    print(format_table("Figure 6 - where selection looks after big clusters are covered",
                       ["rate"], rows, highlight_max=False))
    assert (
        rows["SEU top-50 in small clusters"][0]
        >= rows["small-cluster population mass (= random hit rate)"][0]
    )


def test_figure7_contextualizer_mechanics(benchmark):
    rows = benchmark.pedantic(_figure7, rounds=1, iterations=1)
    print()
    print(format_table("Figure 7 - standard vs contextualized on two conflicting LFs",
                       ["standard", "contextualized"], rows, highlight_max=False))
    std, ctx = rows["accuracy on covered"]
    assert ctx is not None and std is not None
    assert ctx >= std - 0.05
