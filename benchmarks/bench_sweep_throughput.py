"""Sweep-throughput benchmark: serial vs parallel experiment grids.

The ``repro.sweep`` subsystem exists to turn the embarrassing parallelism
of seeds × methods × datasets grids into wall-clock: this benchmark runs
the *same* sweep spec twice — once serially (``jobs=1``) and once on a
worker pool — into two fresh result stores, records both wall clocks, and
verifies the parallel store's per-job scores are **bit-identical** to the
serial ones (scheduling must never leak into results).

The committed ``BENCH_sweep_throughput.json`` is the performance ledger
for the sweep path; ``tests/test_bench_sweep_record.py`` asserts its
schema.  The ≥2.5× speedup target is only meaningful on a machine with
enough cores to parallelize on — the record therefore carries
``machine.cpu_count``, and :func:`check_record` enforces the target only
when at least :data:`MIN_CPUS_FOR_TARGET` CPUs were available (a 1-CPU CI
container records an honest ~1× and still passes the schema check).

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep_throughput.py           # full grid
    PYTHONPATH=src python benchmarks/bench_sweep_throughput.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import numpy as np  # noqa: E402

from repro.sweep import ResultStore, SweepSpec, run_sweep  # noqa: E402

SCHEMA_VERSION = 1

#: The acceptance target: parallel wall clock ≥ this multiple better than
#: serial for the default 4-method × 5-seed grid ...
SPEEDUP_TARGET = 2.5
#: ... enforced only on machines with at least this many CPUs (a pool
#: cannot beat the serial path on a single core).
MIN_CPUS_FOR_TARGET = 4

#: The default grid: the paper's Table-5 selection strategies — 4 methods
#: × 5 seeds = 20 independent jobs on one dataset.
DEFAULT_METHODS = ("seu", "random", "abstain", "disagree")
DEFAULT_SEEDS = 5


def check_record(record: dict) -> list[str]:
    """Validate the record's shape; returns problems (empty = OK).

    Run by the tier-1 test against the committed record and by the CI
    smoke after a ``--quick`` regeneration.
    """
    problems = []
    for key in (
        "benchmark",
        "schema_version",
        "machine",
        "spec",
        "target",
        "serial",
        "parallel",
        "speedup",
        "bit_identical",
        "cells",
    ):
        if key not in record:
            problems.append(f"record missing key {key!r}")
    if problems:
        return problems
    if record["benchmark"] != "sweep_throughput":
        problems.append(f"unexpected benchmark tag {record['benchmark']!r}")
    if record["schema_version"] != SCHEMA_VERSION:
        problems.append(
            f"schema_version {record['schema_version']!r} != {SCHEMA_VERSION}"
        )
    machine = record["machine"]
    for key in ("platform", "python", "cpu_count"):
        if key not in machine:
            problems.append(f"machine missing key {key!r}")
    for mode in ("serial", "parallel"):
        entry = record[mode]
        if not isinstance(entry.get("wall_seconds"), (int, float)) or entry[
            "wall_seconds"
        ] <= 0:
            problems.append(f"{mode}.wall_seconds must be a positive number")
        if not isinstance(entry.get("jobs"), int) or entry["jobs"] < 1:
            problems.append(f"{mode}.jobs must be a positive int")
    spec = record["spec"]
    for key in ("methods", "datasets", "n_seeds", "n_iterations"):
        if key not in spec:
            problems.append(f"spec missing key {key!r}")
    if record["bit_identical"] is not True:
        problems.append("parallel results are not bit-identical to serial")
    if not record["cells"]:
        problems.append("record has no per-cell summaries")
    cpu_count = machine.get("cpu_count", 0)
    if (
        isinstance(cpu_count, int)
        and cpu_count >= MIN_CPUS_FOR_TARGET
        and record["speedup"] < SPEEDUP_TARGET
    ):
        problems.append(
            f"speedup {record['speedup']} < target {SPEEDUP_TARGET} on a "
            f"{cpu_count}-CPU machine"
        )
    return problems


def _compare_stores(spec: SweepSpec, serial_dir: Path, parallel_dir: Path) -> bool:
    """Whether every job's scores/iterations match exactly across stores."""
    serial_store = ResultStore(serial_dir)
    parallel_store = ResultStore(parallel_dir)
    for job in spec.jobs():
        a = serial_store.read_result(job.key)
        b = parallel_store.read_result(job.key)
        if a is None or b is None:
            return False
        if a["iterations"] != b["iterations"] or a["scores"] != b["scores"]:
            return False
    return True


def run_benchmark(args) -> dict:
    spec = SweepSpec(
        methods=tuple(args.methods),
        datasets=tuple(args.datasets),
        n_seeds=args.seeds,
        base_seed=args.seed,
        n_iterations=args.iterations,
        eval_every=args.eval_every,
        scale=args.scale,
    )
    n_jobs_grid = len(spec.jobs())
    work_root = Path(tempfile.mkdtemp(prefix="bench_sweep_"))
    try:
        print(
            f"[bench] grid: {len(spec.methods)} methods x {len(spec.datasets)} "
            f"datasets x {args.seeds} seeds = {n_jobs_grid} jobs "
            f"({args.iterations} iterations each)",
            flush=True,
        )
        serial_dir = work_root / "serial"
        parallel_dir = work_root / "parallel"

        print("[bench] serial pass (jobs=1) ...", flush=True)
        t0 = time.perf_counter()
        serial_report = run_sweep(spec, serial_dir, jobs=1)
        serial_seconds = time.perf_counter() - t0
        print(f"[bench]   serial: {serial_seconds:.2f}s", flush=True)

        print(f"[bench] parallel pass (jobs={args.jobs}) ...", flush=True)
        t0 = time.perf_counter()
        parallel_report = run_sweep(spec, parallel_dir, jobs=args.jobs)
        parallel_seconds = time.perf_counter() - t0
        print(f"[bench]   parallel: {parallel_seconds:.2f}s", flush=True)

        if not (serial_report.complete and parallel_report.complete):
            raise RuntimeError("benchmark sweeps did not complete")

        bit_identical = _compare_stores(spec, serial_dir, parallel_dir)
        speedup = round(serial_seconds / parallel_seconds, 3)
        print(
            f"[bench] speedup {speedup}x, bit-identical={bit_identical}", flush=True
        )

        cells = {}
        for (dataset, method), result in sorted(serial_report.results.items()):
            cells[f"{dataset}/{method}"] = {
                "summary_mean": round(result.summary_mean, 4),
                "summary_std": round(result.summary_std, 4),
                "final_mean": round(result.final_mean, 4),
                "final_std": round(result.final_std, 4),
            }
    finally:
        shutil.rmtree(work_root, ignore_errors=True)

    return {
        "benchmark": "sweep_throughput",
        "schema_version": SCHEMA_VERSION,
        "quick": bool(args.quick),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count() or 1,
        },
        "target": {"speedup": SPEEDUP_TARGET, "min_cpus": MIN_CPUS_FOR_TARGET},
        "spec": spec.to_dict(),
        "n_jobs_grid": n_jobs_grid,
        "serial": {"wall_seconds": round(serial_seconds, 3), "jobs": 1},
        "parallel": {"wall_seconds": round(parallel_seconds, 3), "jobs": args.jobs},
        "speedup": speedup,
        "bit_identical": bit_identical,
        "cells": cells,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--methods",
        nargs="+",
        default=list(DEFAULT_METHODS),
        help="registry names of the grid (default: the Table-5 selectors)",
    )
    parser.add_argument("--datasets", nargs="+", default=["youtube"])
    parser.add_argument("--seeds", type=int, default=DEFAULT_SEEDS)
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument("--iterations", type=int, default=30)
    parser.add_argument("--eval-every", type=int, default=5)
    parser.add_argument("--scale", default="tiny", help="dataset scale preset")
    parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="worker processes for the parallel pass (default 4, the target's grid)",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_sweep_throughput.json"),
        help="where to write the JSON record",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "CI smoke: a 2-method x 2-seed grid of 8 iterations; writes next to "
            "the committed record (never over it) and asserts the committed "
            "record's schema"
        ),
    )
    args = parser.parse_args(argv)
    default_output = str(REPO_ROOT / "BENCH_sweep_throughput.json")
    if args.quick:
        args.methods = ["random", "abstain"]
        args.seeds = 2
        args.iterations = 8
        args.jobs = 2
        if args.output == default_output:
            # A smoke run must not overwrite the committed full-grid record.
            args.output = str(REPO_ROOT / "BENCH_sweep_throughput.quick.json")

    record = run_benchmark(args)
    out = Path(args.output)
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"[bench] wrote {out}")

    if args.quick:
        committed = Path(default_output)
        problems = (
            check_record(json.loads(committed.read_text()))
            if committed.exists()
            else [f"committed record {committed} missing"]
        )
        if problems:
            for problem in problems:
                print(f"[bench] committed record FAILED check: {problem}")
            return 1
        print(f"[bench] committed record {committed.name} OK (schema + targets)")
        return 0

    problems = check_record(record)
    for problem in problems:
        print(f"[bench] record FAILED check: {problem}")
    if record["machine"]["cpu_count"] < MIN_CPUS_FOR_TARGET:
        print(
            f"[bench] note: only {record['machine']['cpu_count']} CPU(s) available — "
            f"the {SPEEDUP_TARGET}x target needs >= {MIN_CPUS_FOR_TARGET} cores and "
            "is not enforced on this machine"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
