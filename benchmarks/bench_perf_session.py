"""Session-step throughput benchmark: incremental engine vs from-scratch.

Unlike the ``bench_table*``/``bench_figure*`` modules (which reproduce the
paper's *results*), this benchmark records the *performance trajectory* of
the interactive loop itself: iterations/second of the full
select → develop → refit step at several training-set sizes, for

* the **scratch** path (``warm_start=False, full_refit_every=1``) — the
  from-scratch refit semantics of the seed implementation, recorded as the
  baseline; and
* the **incremental** path (the engine defaults: warm-started label/end
  model refits with capped inner iterations, k-step cold backstops,
  sparse-native LF application, refit-scoped SEU caching).

Both the binary pipeline (amazon recipe, SEU + simulated user) and the
multiclass one (4-topic recipe, MC-SEU + MC simulated user) are swept —
they share one engine, so both tasks ride the same incremental machinery.
Each timing additionally reports the engine's per-phase attribution
(select / develop / label_model / end_model, plus the contextualize slice
of the label-model phase), read from
``IncrementalSessionEngine.phase_timings``, so future optimizations can be
attributed to the phase they touch.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_session.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_perf_session.py --quick    # CI smoke

Writes ``BENCH_session_throughput.json`` (see ``--output``) with
iterations/sec per (task, size), the speedup, the per-phase seconds, the
process peak RSS after each row, and the end-of-session test scores of
both paths (the quality-parity sanity check).  Binary sizes beyond the
grow-base document count (the n=500k ceiling row) build their corpora by
sampled growth (``repro.data.growth``) instead of full token-level
generation.
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import numpy as np  # noqa: E402

from repro.core.session import DataProgrammingSession  # noqa: E402
from repro.core.seu import SEUSelector  # noqa: E402
from repro.data import load_dataset  # noqa: E402
from repro.interactive.simulated_user import SimulatedUser  # noqa: E402

#: The acceptance target this benchmark tracks: step throughput of the
#: incremental engine at n_train=10k (binary task) must be ≥ this multiple
#: of scratch.
TARGET_N_TRAIN = 10_000
TARGET_SPEEDUP = 3.0

#: The large-n acceptance row: the committed record must carry a binary
#: n_train=50k entry at ≥ this speedup (the 50k-scale ceiling item).
LARGE_N_TRAIN = 50_000
LARGE_N_SPEEDUP = 2.5

#: The raised ceiling: the committed record must carry a binary
#: n_train=500k row at ≥ this speedup (the sparse cold-backstop item —
#: the scratch baseline keeps its historical dense cold fits while the
#: incremental path's colds run the O(nnz) kernels).
XL_N_TRAIN = 500_000
XL_N_SPEEDUP = 8.0

#: Per-mode timing fields attributing the label-model phase: EM/SGD
#: iteration totals, fit wall seconds, and refit counts, each split by
#: warm/cold path (mirrors the engine's transient obs counters).
LABEL_MODEL_KEYS = ("em_iterations", "fit_seconds", "refits")

#: Base corpus size for sampled growth (``data/growth.py``): sizes whose
#: document count exceeds this are generated at the base size and grown by
#: document bootstrap, so the 500k row builds in seconds-per-100k instead
#: of minutes of token-level RNG churn.
GROW_BASE_DOCS = 62_500

TRAIN_FRACTION = 0.8  # the 80/10/10 split of featurize_corpus

#: Phase keys every timing entry must report (engine attribution).
PHASE_KEYS = ("select", "develop", "label_model", "end_model", "contextualize")


def peak_rss_mb() -> float:
    """Process-wide peak resident set size in MiB.

    ``ru_maxrss`` is a cumulative high-water mark, so per-row readings are
    monotone across a sweep: a row documents the footprint needed to reach
    it (dominated by its own dataset + sessions at the largest sizes).
    """
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    scale = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return maxrss / scale


def check_record(record: dict) -> list[str]:
    """Validate a throughput record's shape: per-phase timing keys plus
    per-mode ``label_model`` attribution (EM iterations / fit seconds /
    refits by path) and a peak-RSS reading on every row, incremental
    scores ≥ scratch at every size, the binary n_train=50k row at its
    speedup floor, and the binary n_train=500k row at the sparse-cold
    floor.  Returns the list of problems (empty = OK); the CI smoke and
    the tier-1 test both run this against the committed record."""
    problems = []
    results = record.get("results", [])
    if not results:
        problems.append("record has no results")
    for entry in results:
        for mode in ("scratch", "incremental"):
            phases = entry.get(mode, {}).get("phase_seconds", {})
            missing = [k for k in PHASE_KEYS if k not in phases]
            if missing:
                problems.append(
                    f"{entry.get('task')}/n={entry.get('n_train')}/{mode} "
                    f"missing phase keys {missing}"
                )
            label_model = entry.get(mode, {}).get("label_model", {})
            lm_missing = [k for k in LABEL_MODEL_KEYS if k not in label_model]
            if lm_missing:
                problems.append(
                    f"{entry.get('task')}/n={entry.get('n_train')}/{mode} "
                    f"missing label_model attribution {lm_missing}"
                )
        if not isinstance(entry.get("peak_rss_mb"), (int, float)):
            problems.append(
                f"{entry.get('task')}/n={entry.get('n_train')} missing peak_rss_mb"
            )
        if entry.get("score_gap", 0.0) < 0.0:
            problems.append(
                f"{entry.get('task')}/n={entry.get('n_train')} incremental "
                f"score below scratch (score_gap={entry.get('score_gap')})"
            )
    large = [
        r
        for r in results
        if r.get("task") == "binary" and r.get("n_train") == LARGE_N_TRAIN
    ]
    if not large:
        problems.append(f"no binary n_train={LARGE_N_TRAIN} entry")
    elif large[0].get("speedup", 0.0) < LARGE_N_SPEEDUP:
        problems.append(
            f"binary n_train={LARGE_N_TRAIN} speedup {large[0].get('speedup')} "
            f"< {LARGE_N_SPEEDUP}"
        )
    xl = [
        r
        for r in results
        if r.get("task") == "binary" and r.get("n_train") == XL_N_TRAIN
    ]
    if not xl:
        problems.append(f"no binary n_train={XL_N_TRAIN} entry")
    elif xl[0].get("speedup", 0.0) < XL_N_SPEEDUP:
        problems.append(
            f"binary n_train={XL_N_TRAIN} speedup {xl[0].get('speedup')} "
            f"< {XL_N_SPEEDUP}"
        )
    return problems


def build_binary_dataset(dataset: str, n_train: int, seed: int, grow_base: int = GROW_BASE_DOCS):
    n_docs = int(round(n_train / TRAIN_FRACTION))
    grow_from = grow_base if n_docs > grow_base else None
    return load_dataset(dataset, scale="bench", seed=seed, n_docs=n_docs, grow_from=grow_from)


def build_mc_dataset(n_train: int, seed: int):
    from repro.multiclass import make_topics_dataset

    n_docs = int(round(n_train / TRAIN_FRACTION))
    return make_topics_dataset(n_docs=n_docs, seed=seed)


ENGINE_MODES = {
    "scratch": {"warm_start": False, "full_refit_every": 1},
    "incremental": {},  # the engine defaults ARE the incremental config
}


def scratch_label_model_factory(ds, task: str):
    """The historical from-scratch label model: legacy dense cold fits.

    The scratch baseline documents the *seed implementation's* semantics,
    which predate the O(nnz) cold kernels — pinning ``cold_path="dense"``
    keeps the baseline honest as the default ``"auto"`` policy routes
    large-n cold fits to the sparse path (the incremental column measures
    the optimization; the scratch column must not silently inherit it).
    """
    if task == "binary":
        from repro.labelmodel.metal import MetalLabelModel

        prior = ds.label_prior
        return lambda: MetalLabelModel(class_prior=prior, cold_path="dense")
    from repro.multiclass.dawid_skene import MCDawidSkeneModel

    K = ds.n_classes
    priors = ds.class_priors
    return lambda: MCDawidSkeneModel(
        n_classes=K, class_priors=priors, cold_path="dense"
    )


def make_session(ds, task: str, mode: str, seed: int):
    engine_kwargs = dict(ENGINE_MODES[mode])
    if mode == "scratch":
        engine_kwargs["label_model_factory"] = scratch_label_model_factory(ds, task)
    if task == "binary":
        return DataProgrammingSession(
            ds,
            SEUSelector(),
            SimulatedUser(ds, seed=seed + 1),
            seed=seed,
            **engine_kwargs,
        )
    from repro.multiclass.session import MultiClassSession
    from repro.multiclass.seu import MCSEUSelector
    from repro.multiclass.simulated_user import MCSimulatedUser

    return MultiClassSession(
        ds,
        MCSEUSelector(),
        MCSimulatedUser(ds, seed=seed + 1),
        seed=seed,
        **engine_kwargs,
    )


def time_session(
    ds, task: str, mode: str, n_iterations: int, seed: int, repeats: int = 1
) -> dict:
    """Time ``repeats`` identical sessions and keep the fastest.

    Sessions are deterministic given the seed, so repeats share scores and
    differ only in scheduler noise; best-of-N keeps the recorded ratios
    from being artifacts of a busy machine.
    """
    best = None
    for _ in range(max(repeats, 1)):
        session = make_session(ds, task, mode, seed)
        start = time.perf_counter()
        session.run(n_iterations)
        elapsed = time.perf_counter() - start
        timing = {
            "mode": mode,
            "seconds": round(elapsed, 4),
            "iters_per_sec": round(n_iterations / elapsed, 4),
            "n_lfs": len(session.lfs),
            "test_score": round(session.test_score(), 4),
            "phase_seconds": {
                phase: round(seconds, 4)
                for phase, seconds in sorted(session.phase_timings.items())
            },
            "label_model": {
                "em_iterations": {
                    path: int(v)
                    for path, v in sorted(session.em_iteration_counts.items())
                },
                "fit_seconds": {
                    path: round(float(v), 4)
                    for path, v in sorted(session.label_fit_seconds.items())
                },
                "refits": {
                    path: int(v) for path, v in sorted(session.refit_counts.items())
                },
            },
        }
        if best is None or timing["seconds"] < best["seconds"]:
            best = timing
    return best


def sweep(task: str, sizes, args) -> list[dict]:
    results = []
    for n_train in sizes:
        print(f"[bench] building {task} dataset with n_train={n_train} ...", flush=True)
        t0 = time.perf_counter()
        if task == "binary":
            ds = build_binary_dataset(args.dataset, n_train, args.seed, args.grow_base)
        else:
            ds = build_mc_dataset(n_train, args.seed)
        build_s = time.perf_counter() - t0
        print(
            f"[bench]   built in {build_s:.1f}s "
            f"(n_train={ds.train.n}, |Z|={ds.n_primitives}, nnz(B)={ds.train.B.nnz})",
            flush=True,
        )
        entry = {"task": task, "n_train": ds.train.n, "n_primitives": ds.n_primitives}
        for mode in ("scratch", "incremental"):
            timing = time_session(ds, task, mode, args.iterations, args.seed, args.repeats)
            entry[mode] = timing
            phases = timing["phase_seconds"]
            dominant = max(phases, key=phases.get)
            print(
                f"[bench]   {mode:<12} {timing['seconds']:>8.2f}s "
                f"= {timing['iters_per_sec']:>7.2f} iters/sec "
                f"(score {timing['test_score']:.3f}, "
                f"dominant phase {dominant}={phases[dominant]:.2f}s)",
                flush=True,
            )
        entry["speedup"] = round(
            entry["incremental"]["iters_per_sec"] / entry["scratch"]["iters_per_sec"], 3
        )
        entry["score_gap"] = round(
            entry["incremental"]["test_score"] - entry["scratch"]["test_score"], 4
        )
        entry["peak_rss_mb"] = round(peak_rss_mb(), 1)
        print(
            f"[bench]   speedup {entry['speedup']}x  "
            f"peak RSS {entry['peak_rss_mb']:.0f} MiB",
            flush=True,
        )
        results.append(entry)
    return results


def run_benchmark(args) -> dict:
    results = sweep("binary", args.sizes, args)
    results += sweep("multiclass", args.mc_sizes, args)
    return {
        "benchmark": "session_throughput",
        "dataset": args.dataset,
        "mc_dataset": "topics",
        "iterations_per_session": args.iterations,
        "timing_repeats": args.repeats,
        "seed": args.seed,
        "quick": bool(args.quick),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "target": {
            "n_train": TARGET_N_TRAIN,
            "min_speedup": TARGET_SPEEDUP,
            "xl_n_train": XL_N_TRAIN,
        },
        "results": results,
    }


def apply_quick_mode(args) -> None:
    """Clamp sweep parameters for the CI smoke and redirect the output.

    Quick runs must never clobber the committed full-sweep record: even an
    explicit ``--output`` pointing at it is redirected to the
    ``.quick.json`` sibling.  Tier-1 tests pin this invariant.
    """
    args.sizes = [1_000]
    args.mc_sizes = [1_000]
    args.iterations = 10
    args.repeats = 1
    committed = REPO_ROOT / "BENCH_session_throughput.json"
    try:
        clobbers = Path(args.output).resolve() == committed.resolve()
    except OSError:
        clobbers = False
    if clobbers:
        args.output = str(committed.with_suffix("")) + ".quick.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[1_000, 10_000, 50_000, 500_000],
        help="binary training-set sizes to sweep (default: 1k 10k 50k 500k)",
    )
    parser.add_argument(
        "--mc-sizes",
        type=int,
        nargs="+",
        default=[1_000, 10_000],
        help="multiclass training-set sizes to sweep (default: 1k 10k)",
    )
    parser.add_argument(
        "--iterations", type=int, default=30, help="session iterations per timing run"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help=(
            "timing repeats per (size, mode); the fastest is recorded "
            "(sessions are seed-deterministic, so repeats only shave "
            "scheduler noise)"
        ),
    )
    parser.add_argument("--dataset", default="amazon", help="binary recipe dataset name")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--grow-base",
        type=int,
        default=GROW_BASE_DOCS,
        help=(
            "base corpus size for sampled growth; binary sizes needing more "
            "documents are generated at this size then grown by bootstrap"
        ),
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_session_throughput.json"),
        help="where to write the JSON record",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "CI smoke: n_train=1000 only (both tasks), 10 iterations; writes "
            "next to the committed record (never over it) and asserts the "
            "committed record still carries the phase keys, per-row "
            "label_model attribution, peak-RSS readings, and the n=50k and "
            "n=500k rows at their speedup floors"
        ),
    )
    args = parser.parse_args(argv)
    default_output = str(REPO_ROOT / "BENCH_session_throughput.json")
    if args.quick:
        apply_quick_mode(args)

    record = run_benchmark(args)
    out = Path(args.output)
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"[bench] wrote {out}")

    if args.quick:
        committed = Path(default_output)
        problems = (
            check_record(json.loads(committed.read_text()))
            if committed.exists()
            else [f"committed record {committed} missing"]
        )
        if problems:
            for problem in problems:
                print(f"[bench] committed record FAILED check: {problem}")
            return 1
        print(
            f"[bench] committed record {committed.name} OK "
            "(phase keys + label_model attribution + RSS + 50k/500k floors)"
        )
        return 0

    at_target = [
        r
        for r in record["results"]
        if r["task"] == "binary"
        and abs(r["n_train"] - TARGET_N_TRAIN) <= TARGET_N_TRAIN * 0.05
    ]
    if at_target and not args.quick:
        speedup = at_target[0]["speedup"]
        status = "OK" if speedup >= TARGET_SPEEDUP else "BELOW TARGET"
        print(
            f"[bench] speedup at n_train={TARGET_N_TRAIN}: "
            f"{speedup}x (target {TARGET_SPEEDUP}x) -> {status}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
