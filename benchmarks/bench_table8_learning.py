"""Table 8: learning approaches under random selection.

Paper reference (Table 8): the contextualized pipeline (Eq. 4 + MeTaL)
beats both the standard pipeline and the specialized ImplyLoss model.

    dataset  Contextualized  Standard  ImplyLoss
    amazon   0.7244          0.6774    0.6822
    yelp     0.7360          0.6556    0.7009
    imdb     0.7557          0.7107    0.6766
    youtube  0.8407          0.8235    0.6811
    sms      0.6092          0.4789    0.5065
    vg       0.6253          0.6152    0.6270
"""

import numpy as np

from benchmarks.conftest import ALL_DATASETS, run_table
from repro.experiments.reporting import format_table

METHODS = ("contextualized", "standard", "implyloss-l")


def test_table8_learning_approaches(benchmark, scale):
    rows = benchmark.pedantic(run_table, args=(METHODS, ALL_DATASETS), rounds=1, iterations=1)
    print()
    print(
        format_table(
            f"Table 8 - learning approaches under random selection (scale={scale.name})",
            list(METHODS),
            rows,
        )
    )
    if scale.name == "tiny":
        return
    ctx = np.array([rows[ds][0] for ds in rows])
    std = np.array([rows[ds][1] for ds in rows])
    assert ctx.mean() > std.mean() - 1e-6, "contextualized must beat standard on average"
    wins = int((ctx >= std - 0.01).sum())
    assert wins >= len(rows) - 1
