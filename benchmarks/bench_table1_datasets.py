"""Table 1: dataset statistics (#Train / #Valid / #Test per dataset).

Paper reference (Table 1):

    Amazon 14,400/1,800/1,800 - Yelp 20,000/2,500/2,500 -
    IMDB 20,000/2,500/2,500 - Youtube 1,566/195/195 -
    SMS 4,458/557/557 - VG 5,084/635/635

At ``REPRO_SCALE=paper`` the regenerated splits match those sizes exactly
(the corpora are synthetic substitutes — see DESIGN.md); the default bench
scale is a ~10x reduction.
"""

from benchmarks.conftest import ALL_DATASETS, get_dataset
from repro.experiments.reporting import format_table


def _collect():
    rows = {}
    for name in ALL_DATASETS:
        ds = get_dataset(name)
        rows[name] = [
            float(ds.train.n),
            float(ds.valid.n),
            float(ds.test.n),
            float(ds.n_primitives),
            ds.metric,
        ]
    return rows


def test_table1_dataset_statistics(benchmark, scale):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    print()
    print(
        format_table(
            f"Table 1 - dataset statistics (scale={scale.name})",
            ["#train", "#valid", "#test", "|Z|", "metric"],
            rows,
            highlight_max=False,
            precision=0,
        )
    )
    for name, (n_train, n_valid, n_test, n_prims, metric) in rows.items():
        assert n_train > n_valid and n_train > n_test
        assert n_prims > 100
        assert metric == ("f1" if name == "sms" else "accuracy")
