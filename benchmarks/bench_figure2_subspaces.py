"""Figure 2: LF coverage and accuracy by distance-to-development-data.

Paper claim (Fig. 2, averaged over 100 LFs on Amazon): both the coverage
and the accuracy of an LF decay as examples get further from the LF's
development data — the premise of the contextualizer (Eq. 4).
"""

import numpy as np

from benchmarks.conftest import current_scale, get_dataset
from repro.experiments.reporting import format_table
from repro.experiments.subspace import lf_subspace_profile


def _run():
    scale = current_scale()
    dataset = get_dataset("amazon")
    n_lfs = 100 if scale.name != "tiny" else 30
    return lf_subspace_profile(dataset, n_lfs=n_lfs, n_bins=4, seed=0)


def test_figure2_lf_subspace_decay(benchmark, scale):
    profile = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = {
        label: [cov, acc if not np.isnan(acc) else None]
        for label, cov, acc in profile.rows()
    }
    print()
    print(
        format_table(
            f"Figure 2 - LF coverage/accuracy by distance percentile bin "
            f"(amazon, {profile.n_lfs} simulated-user LFs, scale={scale.name})",
            ["coverage", "accuracy"],
            rows,
            highlight_max=False,
        )
    )
    # Shape assertions: both quantities decay with distance.
    assert profile.coverage[0] > profile.coverage[-1]
    accs = profile.accuracy
    finite = accs[~np.isnan(accs)]
    assert accs[0] >= finite.min()
    assert accs[0] > finite[-1] - 0.02  # near bin at least matches the far bin
