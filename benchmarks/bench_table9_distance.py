"""Table 9: contextualized learning with different distance functions.

Paper reference (Table 9): cosine distance generally brings larger lift
than euclidean; both beat the standard pipeline.

    dataset  Cosine  Euclidean  Standard
    amazon   0.7244  0.6913     0.6774
    yelp     0.7360  0.6991     0.6556
    imdb     0.7557  0.7200     0.7107
    youtube  0.8407  0.8181     0.8235
    sms      0.6092  0.6174     0.4789
    vg       0.6253  0.6332     0.6152
"""

import numpy as np

from benchmarks.conftest import ALL_DATASETS, run_table
from repro.experiments.reporting import format_table

METHODS = ("ctx-cosine", "ctx-euclidean", "standard")


def test_table9_distance_functions(benchmark, scale):
    rows = benchmark.pedantic(run_table, args=(METHODS, ALL_DATASETS), rounds=1, iterations=1)
    print()
    print(
        format_table(
            f"Table 9 - contextualizer distance functions (scale={scale.name})",
            ["cosine", "euclidean", "standard"],
            rows,
        )
    )
    if scale.name == "tiny":
        return
    cosine = np.array([rows[ds][0] for ds in rows])
    euclid = np.array([rows[ds][1] for ds in rows])
    std = np.array([rows[ds][2] for ds in rows])
    assert cosine.mean() > std.mean() - 1e-6
    assert euclid.mean() > std.mean() - 0.02
