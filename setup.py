"""Legacy setup shim.

The environment ships setuptools without the ``wheel`` package, so PEP-517
editable installs (which require ``bdist_wheel``) fail offline.  This shim
lets ``pip install -e .`` fall back to the classic ``setup.py develop``
path.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
