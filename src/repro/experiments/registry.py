"""Cardinality-dispatching method-factory resolution.

Both registries address methods by name — the binary one
(:func:`repro.experiments.runners.make_method`) and the multiclass one
(:func:`repro.multiclass.experiments.make_mc_method`) — and which registry
applies is decided by the *dataset*.  This module is the single home of
that dispatch rule, shared by the sweep workers, the serve-layer session
manager, and the CLI, so a ``(method, dataset)`` pair resolves to the
identical factory everywhere.

Kept import-light deliberately: the registries themselves (and the
interactive baselines they pull in) are imported lazily inside the
resolver, so neutral consumers pay nothing until they actually resolve.
"""

from __future__ import annotations

from repro.data.named import is_mc_dataset


def resolve_factory(method: str, dataset_name: str, user_threshold: float):
    """The ``(dataset, seed) -> method`` factory for a registry cell.

    Multiclass datasets dispatch to the MC registry, everything else to the
    binary one — the same rule as the CLI.  Raises ``ValueError`` for
    unknown names, which callers surface *before* any work starts.
    """
    if is_mc_dataset(dataset_name):
        from repro.multiclass.experiments import make_mc_method

        return make_mc_method(method, user_threshold=user_threshold)
    from repro.experiments import make_method

    return make_method(method, user_threshold=user_threshold)
