"""Named method registry: every row of the paper's tables as a factory.

``make_method(name)(dataset, seed)`` returns a ready-to-run
:class:`~repro.core.session.InteractiveMethod`.  The registry covers the
full IDP system (Nemo), its ablations (Tables 4–9), and every baseline of
Table 2 — so each bench is just "evaluate these registry names on these
datasets".
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from functools import partial

from repro.core.config import NemoConfig
from repro.core.session import InteractiveMethod
from repro.data.dataset import FeaturizedDataset
from repro.interactive.active_weasul import ActiveWeaSuLMethod
from repro.interactive.implyloss_session import ImplyLossSession
from repro.interactive.iws import IWSLSEMethod
from repro.interactive.simulated_user import SimulatedUser
from repro.interactive.uncertainty import BALD, UncertaintySampling
from repro.utils.rng import stable_hash_seed

MethodFactory = Callable[[FeaturizedDataset, int], InteractiveMethod]

#: Default simulated-user accuracy threshold (paper Sec. 5.1: t = 0.5).
DEFAULT_USER_THRESHOLD = 0.5


def _make_user(dataset: FeaturizedDataset, seed, threshold: float) -> SimulatedUser:
    user_seed = stable_hash_seed("user", dataset.name, seed)
    return SimulatedUser(dataset, accuracy_threshold=threshold, seed=user_seed)


# Every factory below is a module-level callable (a dataclass instance or a
# ``functools.partial`` of a module-level function) rather than a closure:
# the parallel experiment runner ships factories to worker processes, and
# closures do not pickle.
@dataclass
class _ConfigSessionFactory:
    """Picklable ``(dataset, seed) -> session`` factory for a NemoConfig."""

    config: NemoConfig
    threshold: float

    def __call__(self, dataset: FeaturizedDataset, seed) -> InteractiveMethod:
        user = _make_user(dataset, seed, self.threshold)
        return self.config.create_session(dataset, user, seed=seed)


def _session_factory(config: NemoConfig, threshold: float) -> MethodFactory:
    return _ConfigSessionFactory(config, threshold)


def _construct_plain(cls, dataset: FeaturizedDataset, seed) -> InteractiveMethod:
    return cls(dataset, seed=seed)


def _construct_iws(threshold: float, dataset: FeaturizedDataset, seed) -> InteractiveMethod:
    return IWSLSEMethod(dataset, usefulness_threshold=threshold, seed=seed)


def _construct_implyloss(
    threshold: float, dataset: FeaturizedDataset, seed
) -> InteractiveMethod:
    user = _make_user(dataset, seed, threshold)
    return ImplyLossSession(dataset, user, seed=seed)


def _construct_active_weasul(
    threshold: float, dataset: FeaturizedDataset, seed
) -> InteractiveMethod:
    user = _make_user(dataset, seed, threshold)
    return ActiveWeaSuLMethod(dataset, user, seed=seed)


def make_method(name: str, user_threshold: float = DEFAULT_USER_THRESHOLD) -> MethodFactory:
    """Resolve a method name to a ``(dataset, seed) -> InteractiveMethod`` factory.

    Recognized names (paper Sec. 5.2–5.4):

    ==================  =====================================================
    ``nemo``            Full IDP: SEU + contextualized learning.
    ``snorkel``         Random selection + standard pipeline (vanilla IDP).
    ``snorkel-abs``     Abstain-based selection, standard pipeline [9].
    ``snorkel-dis``     Disagreement-based selection, standard pipeline [9].
    ``implyloss-l``     Random selection + ImplyLoss joint model [3].
    ``us``              Uncertainty sampling (active learning) [20].
    ``bald``            BALD committee active learning [12, 17].
    ``iws-lse``         Interactive weak supervision with LSE acquisition [6].
    ``active-weasul``   maxKL hand-labeling over a warm-started LF set [5].
    ``seu``             SEU selection only (standard pipeline) — Table 5.
    ``random``/``abstain``/``disagree``  Selection-only rows of Table 5.
    ``nemo-no-selector``        Table 4: random selection + contextualizer.
    ``nemo-no-contextualizer``  Table 4: SEU + standard pipeline.
    ``seu-uniform``             Table 6: uniform user model.
    ``seu-no-informativeness``  Table 7 ablation.
    ``seu-no-correctness``      Table 7 ablation.
    ``contextualized``          Table 8: random + contextualized pipeline.
    ``standard``                Table 8: random + standard pipeline.
    ``ctx-cosine``/``ctx-euclidean``  Table 9 distance ablations.
    ==================  =====================================================
    """
    configs: dict[str, NemoConfig] = {
        "nemo": NemoConfig(),
        "snorkel": NemoConfig(selector="random", contextualize=False),
        "snorkel-abs": NemoConfig(selector="abstain", contextualize=False),
        "snorkel-dis": NemoConfig(selector="disagree", contextualize=False),
        "seu": NemoConfig(selector="seu", contextualize=False),
        "random": NemoConfig(selector="random", contextualize=False),
        "abstain": NemoConfig(selector="abstain", contextualize=False),
        "disagree": NemoConfig(selector="disagree", contextualize=False),
        "nemo-no-selector": NemoConfig(selector="random", contextualize=True),
        "nemo-no-contextualizer": NemoConfig(selector="seu", contextualize=False),
        "seu-uniform": NemoConfig(
            selector="seu", user_model="uniform", contextualize=False
        ),
        "seu-no-informativeness": NemoConfig(
            selector="seu", utility="no-informativeness", contextualize=False
        ),
        "seu-no-correctness": NemoConfig(
            selector="seu", utility="no-correctness", contextualize=False
        ),
        "contextualized": NemoConfig(selector="random", contextualize=True),
        "standard": NemoConfig(selector="random", contextualize=False),
        "ctx-cosine": NemoConfig(
            selector="random", contextualize=True, distance_metric="cosine"
        ),
        "ctx-euclidean": NemoConfig(
            selector="random", contextualize=True, distance_metric="euclidean"
        ),
    }
    if name in configs:
        return _session_factory(configs[name], user_threshold)

    if name == "implyloss-l":
        return partial(_construct_implyloss, user_threshold)
    if name == "us":
        return partial(_construct_plain, UncertaintySampling)
    if name == "bald":
        return partial(_construct_plain, BALD)
    if name == "iws-lse":
        return partial(_construct_iws, user_threshold)
    if name == "active-weasul":
        return partial(_construct_active_weasul, user_threshold)
    raise ValueError(f"unknown method {name!r}")


#: Method columns of Table 2, in the paper's order.
TABLE2_METHODS = (
    "nemo",
    "snorkel",
    "snorkel-abs",
    "snorkel-dis",
    "implyloss-l",
    "us",
    "iws-lse",
    "bald",
    "active-weasul",
)

#: Selection strategies of Table 5.
TABLE5_METHODS = ("seu", "random", "abstain", "disagree")
