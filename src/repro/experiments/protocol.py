"""The paper's evaluation protocol (Sec. 5.1).

Each method runs for ``n_iterations`` interactions; the end model's test
performance is recorded every ``eval_every`` iterations; a learning curve
is summarized by the mean of its evaluated points ("average performance on
the learning curve ... essentially its area under curve"); results are
averaged over several seeded runs.

The protocol drives methods exclusively through the
:class:`~repro.core.session.InteractiveMethod` contract
(``step()``/``test_score()``).  For the engine-backed IDP sessions,
``step()`` is itself a :class:`~repro.core.protocol.SimulatedDriver` over
the propose/submit command protocol (ENGINE.md §6) — so every evaluated
transcript, including the sweep runner's checkpoint-resumed ones (the
``start_iteration``/``curve``/``after_iteration`` seams below), exercises
the same command path a live served session uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.session import InteractiveMethod
from repro.endmodel.metrics import learning_curve_summary
from repro.utils.rng import stable_hash_seed


@dataclass
class LearningCurve:
    """One run's evaluation trace."""

    iterations: list[int]
    scores: list[float]

    @property
    def summary(self) -> float:
        """Curve average — the paper's headline number per run."""
        return learning_curve_summary(self.scores)

    @property
    def final(self) -> float:
        """Score at the last evaluation point."""
        return self.scores[-1]


@dataclass
class RunResult:
    """Aggregated multi-seed result for one (method, dataset) cell."""

    method: str
    dataset: str
    curves: list[LearningCurve] = field(default_factory=list)

    def _common_grid(self) -> list[int]:
        """The shared evaluation grid, validated across all curves.

        Aggregating curves evaluated on different grids (mixed
        ``eval_every`` cadences or iteration counts) silently compares
        scores at different amounts of supervision — or dies inside numpy
        on ragged input.  Fail with a clear message instead.
        """
        if not self.curves:
            raise ValueError(
                f"RunResult({self.method!r}, {self.dataset!r}) has no curves to aggregate"
            )
        grid = self.curves[0].iterations
        for i, curve in enumerate(self.curves[1:], start=1):
            if list(curve.iterations) != list(grid):
                raise ValueError(
                    "cannot aggregate curves with different evaluation grids: "
                    f"curve 0 evaluated at {list(grid)}, curve {i} at "
                    f"{list(curve.iterations)} — rerun with a common "
                    "n_iterations/eval_every"
                )
        return list(grid)

    @property
    def summary_mean(self) -> float:
        self._common_grid()
        return float(np.mean([c.summary for c in self.curves]))

    @property
    def summary_std(self) -> float:
        """Sample standard deviation (``ddof=1``) of the curve averages.

        The seeds are a *sample* of the method's run distribution, and the
        ± column of a results table is an estimate of that distribution's
        spread — the population formula (``ddof=0``) systematically
        understates it at the 3–5 seeds the protocol actually runs.  A
        single curve has no spread estimate; report 0.0 rather than NaN.
        """
        self._common_grid()
        if len(self.curves) < 2:
            return 0.0
        return float(np.std([c.summary for c in self.curves], ddof=1))

    @property
    def final_mean(self) -> float:
        self._common_grid()
        return float(np.mean([c.final for c in self.curves]))

    @property
    def final_std(self) -> float:
        """Sample std of the final-iteration scores (``ddof=1``; 0.0 for one curve)."""
        self._common_grid()
        if len(self.curves) < 2:
            return 0.0
        return float(np.std([c.final for c in self.curves], ddof=1))

    def mean_curve(self) -> LearningCurve:
        """Pointwise mean across seeds (for plotting-style output)."""
        iterations = self._common_grid()
        scores = np.mean([c.scores for c in self.curves], axis=0)
        return LearningCurve(iterations=list(iterations), scores=[float(s) for s in scores])


def run_learning_curve(
    method: InteractiveMethod,
    n_iterations: int = 50,
    eval_every: int = 5,
    *,
    start_iteration: int = 0,
    curve: LearningCurve | None = None,
    after_iteration=None,
) -> LearningCurve:
    """Drive one method through the interactive protocol.

    The curve always ends with an evaluation at iteration ``n_iterations``:
    when the cadence does not divide the iteration count (e.g. 50
    iterations, ``eval_every=7``), the final model — the one every summary
    statistic is supposed to reflect — would otherwise never be scored and
    the curve tail silently dropped.

    Resume support (used by the sweep runner's crash-resume,
    :mod:`repro.sweep`): ``start_iteration`` says how many protocol
    iterations ``method`` has *already* run — e.g. after a
    checkpoint restore — and ``curve`` carries the evaluations recorded up
    to that point (it is extended in place and returned).  ``after_iteration``
    is an optional ``(iteration, curve) -> None`` hook called after every
    step-and-evaluate — the checkpoint-writing seam.  The default arguments
    reproduce the historical fresh-run behaviour exactly.
    """
    if n_iterations < 1:
        raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
    if eval_every < 1:
        raise ValueError(f"eval_every must be >= 1, got {eval_every}")
    if not 0 <= start_iteration <= n_iterations:
        raise ValueError(
            f"start_iteration must be in [0, {n_iterations}], got {start_iteration}"
        )
    if curve is None:
        if start_iteration > 0:
            raise ValueError(
                "resuming (start_iteration > 0) requires the curve recorded so far"
            )
        curve = LearningCurve(iterations=[], scores=[])
    for it in range(start_iteration + 1, n_iterations + 1):
        method.step()
        if it % eval_every == 0:
            curve.iterations.append(it)
            curve.scores.append(method.test_score())
        if after_iteration is not None:
            after_iteration(it, curve)
    if not curve.iterations or curve.iterations[-1] != n_iterations:
        curve.iterations.append(n_iterations)
        curve.scores.append(method.test_score())
    return curve


def evaluate_method(
    method_factory,
    method_name: str,
    dataset,
    n_iterations: int = 50,
    eval_every: int = 5,
    n_seeds: int = 5,
    base_seed: int = 0,
    jobs: int = 1,
) -> RunResult:
    """Run ``method_factory(dataset, seed)`` across seeds and aggregate.

    Seeds are derived stably from ``(method, dataset, run index, base)`` so
    any cell of any table can be reproduced in isolation.

    ``jobs > 1`` runs the per-seed sessions in a worker-process pool
    (:mod:`repro.sweep`): every run is seeded independently and shares no
    state, so the aggregated result is bit-identical to the serial path —
    only the wall clock changes.  The factory and dataset must be picklable
    (every registry factory is); a non-picklable custom factory fails with
    a clear error rather than silently running serially.
    """
    if n_seeds < 1:
        raise ValueError(f"n_seeds must be >= 1, got {n_seeds}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    result = RunResult(method=method_name, dataset=dataset.name)
    seeds = [
        stable_hash_seed(method_name, dataset.name, run_idx, base_seed)
        for run_idx in range(n_seeds)
    ]
    if jobs > 1 and n_seeds > 1:
        from repro.sweep.worker import parallel_learning_curves

        result.curves.extend(
            parallel_learning_curves(
                method_factory,
                dataset,
                seeds,
                n_iterations=n_iterations,
                eval_every=eval_every,
                jobs=jobs,
            )
        )
        return result
    for seed in seeds:
        method = method_factory(dataset, seed)
        result.curves.append(
            run_learning_curve(method, n_iterations=n_iterations, eval_every=eval_every)
        )
    return result
