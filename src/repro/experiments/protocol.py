"""The paper's evaluation protocol (Sec. 5.1).

Each method runs for ``n_iterations`` interactions; the end model's test
performance is recorded every ``eval_every`` iterations; a learning curve
is summarized by the mean of its evaluated points ("average performance on
the learning curve ... essentially its area under curve"); results are
averaged over several seeded runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.session import InteractiveMethod
from repro.endmodel.metrics import learning_curve_summary
from repro.utils.rng import stable_hash_seed


@dataclass
class LearningCurve:
    """One run's evaluation trace."""

    iterations: list[int]
    scores: list[float]

    @property
    def summary(self) -> float:
        """Curve average — the paper's headline number per run."""
        return learning_curve_summary(self.scores)

    @property
    def final(self) -> float:
        """Score at the last evaluation point."""
        return self.scores[-1]


@dataclass
class RunResult:
    """Aggregated multi-seed result for one (method, dataset) cell."""

    method: str
    dataset: str
    curves: list[LearningCurve] = field(default_factory=list)

    def _common_grid(self) -> list[int]:
        """The shared evaluation grid, validated across all curves.

        Aggregating curves evaluated on different grids (mixed
        ``eval_every`` cadences or iteration counts) silently compares
        scores at different amounts of supervision — or dies inside numpy
        on ragged input.  Fail with a clear message instead.
        """
        if not self.curves:
            raise ValueError(
                f"RunResult({self.method!r}, {self.dataset!r}) has no curves to aggregate"
            )
        grid = self.curves[0].iterations
        for i, curve in enumerate(self.curves[1:], start=1):
            if list(curve.iterations) != list(grid):
                raise ValueError(
                    "cannot aggregate curves with different evaluation grids: "
                    f"curve 0 evaluated at {list(grid)}, curve {i} at "
                    f"{list(curve.iterations)} — rerun with a common "
                    "n_iterations/eval_every"
                )
        return list(grid)

    @property
    def summary_mean(self) -> float:
        self._common_grid()
        return float(np.mean([c.summary for c in self.curves]))

    @property
    def summary_std(self) -> float:
        self._common_grid()
        return float(np.std([c.summary for c in self.curves]))

    @property
    def final_mean(self) -> float:
        self._common_grid()
        return float(np.mean([c.final for c in self.curves]))

    def mean_curve(self) -> LearningCurve:
        """Pointwise mean across seeds (for plotting-style output)."""
        iterations = self._common_grid()
        scores = np.mean([c.scores for c in self.curves], axis=0)
        return LearningCurve(iterations=list(iterations), scores=[float(s) for s in scores])


def run_learning_curve(
    method: InteractiveMethod,
    n_iterations: int = 50,
    eval_every: int = 5,
) -> LearningCurve:
    """Drive one method through the interactive protocol.

    The curve always ends with an evaluation at iteration ``n_iterations``:
    when the cadence does not divide the iteration count (e.g. 50
    iterations, ``eval_every=7``), the final model — the one every summary
    statistic is supposed to reflect — would otherwise never be scored and
    the curve tail silently dropped.
    """
    if n_iterations < 1:
        raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
    if eval_every < 1:
        raise ValueError(f"eval_every must be >= 1, got {eval_every}")
    iterations: list[int] = []
    scores: list[float] = []
    for it in range(1, n_iterations + 1):
        method.step()
        if it % eval_every == 0:
            iterations.append(it)
            scores.append(method.test_score())
    if not iterations or iterations[-1] != n_iterations:
        iterations.append(n_iterations)
        scores.append(method.test_score())
    return LearningCurve(iterations=iterations, scores=scores)


def evaluate_method(
    method_factory,
    method_name: str,
    dataset,
    n_iterations: int = 50,
    eval_every: int = 5,
    n_seeds: int = 5,
    base_seed: int = 0,
) -> RunResult:
    """Run ``method_factory(dataset, seed)`` across seeds and aggregate.

    Seeds are derived stably from ``(method, dataset, run index, base)`` so
    any cell of any table can be reproduced in isolation.
    """
    if n_seeds < 1:
        raise ValueError(f"n_seeds must be >= 1, got {n_seeds}")
    result = RunResult(method=method_name, dataset=dataset.name)
    for run_idx in range(n_seeds):
        seed = stable_hash_seed(method_name, dataset.name, run_idx, base_seed)
        method = method_factory(dataset, seed)
        result.curves.append(
            run_learning_curve(method, n_iterations=n_iterations, eval_every=eval_every)
        )
    return result
