"""Table formatting for benchmark output.

Benches print paper-style tables; these helpers keep the formatting
consistent (aligned columns, bold-free plain text, winner marking).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(
    title: str,
    column_names: Sequence[str],
    rows: Mapping[str, Sequence[float | str | None]],
    highlight_max: bool = True,
    precision: int = 4,
) -> str:
    """Render a results table as aligned plain text.

    Parameters
    ----------
    title:
        Header line (e.g. ``"Table 2: end-to-end performance"``).
    column_names:
        Column headers (method names).
    rows:
        Mapping of row label (dataset) to per-column values; ``None``
        renders as ``"n/a"``; strings pass through.
    highlight_max:
        Mark the best numeric value in each row with ``*``.
    precision:
        Decimal places for floats.
    """
    headers = ["dataset", *column_names]
    body: list[list[str]] = []
    for label, values in rows.items():
        if len(values) != len(column_names):
            raise ValueError(
                f"row {label!r} has {len(values)} values for {len(column_names)} columns"
            )
        numeric = [v for v in values if isinstance(v, (int, float))]
        best = max(numeric) if (numeric and highlight_max) else None
        rendered = [label]
        for value in values:
            if value is None:
                rendered.append("n/a")
            elif isinstance(value, str):
                rendered.append(value)
            else:
                mark = "*" if (best is not None and value >= best - 1e-12) else ""
                rendered.append(f"{value:.{precision}f}{mark}")
        body.append(rendered)
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in body)) if body else len(headers[c])
        for c in range(len(headers))
    ]
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for rendered in body:
        lines.append("  ".join(v.ljust(w) for v, w in zip(rendered, widths)))
    return "\n".join(lines)


def format_series(title: str, xs: Sequence[float], ys: Sequence[float], x_name: str = "x", y_name: str = "y") -> str:
    """Render a figure-style (x, y) series as two aligned text rows."""
    if len(xs) != len(ys):
        raise ValueError(f"series lengths differ: {len(xs)} vs {len(ys)}")
    x_cells = [f"{x:g}" for x in xs]
    y_cells = [f"{y:.4f}" for y in ys]
    widths = [max(len(a), len(b)) for a, b in zip(x_cells, y_cells)]
    lines = [title]
    lines.append(f"{x_name:>12s}  " + "  ".join(c.rjust(w) for c, w in zip(x_cells, widths)))
    lines.append(f"{y_name:>12s}  " + "  ".join(c.rjust(w) for c, w in zip(y_cells, widths)))
    return "\n".join(lines)


def relative_lift(new: float, baseline: float) -> float:
    """The paper's "X% improvement" convention: ``(new - base) / base``."""
    if baseline == 0:
        raise ValueError("baseline is zero; relative lift is undefined")
    return (new - baseline) / abs(baseline)
