"""Figure-2 analysis: LF coverage/accuracy by distance-to-development-data.

Reproduces the paper's motivating measurement: generate many LFs with the
simulated user from random development examples, split all examples into
subspaces by percentile of their distance to each LF's development point,
and average per-subspace coverage and accuracy over the LFs.  The paper's
claim — both quantities decay with distance — is what the contextualizer
(Eq. 4) exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.lf import LFFamily
from repro.core.selection import SessionState
from repro.data.dataset import FeaturizedDataset
from repro.interactive.simulated_user import SimulatedUser
from repro.labelmodel.base import posterior_entropy
from repro.text.distance import get_distance_fn
from repro.utils.rng import ensure_rng


@dataclass
class SubspaceProfile:
    """Averaged per-subspace statistics over many LFs."""

    n_lfs: int
    n_bins: int
    coverage: np.ndarray  # (n_bins,) mean coverage fraction per subspace
    accuracy: np.ndarray  # (n_bins,) mean accuracy per subspace (NaN-safe mean)

    def rows(self) -> list[tuple[str, float, float]]:
        """(bin label, coverage, accuracy) rows for reporting."""
        labels = [
            f"{int(100 * b / self.n_bins)}-{int(100 * (b + 1) / self.n_bins)}%"
            for b in range(self.n_bins)
        ]
        return [
            (label, float(c), float(a))
            for label, c, a in zip(labels, self.coverage, self.accuracy)
        ]


def lf_subspace_profile(
    dataset: FeaturizedDataset,
    n_lfs: int = 100,
    n_bins: int = 4,
    metric: str = "cosine",
    user_threshold: float = 0.5,
    seed=None,
) -> SubspaceProfile:
    """Measure Figure 2: LF coverage/accuracy vs distance percentile bins.

    LFs are created by the oracle simulated user from uniformly-sampled
    development examples (the paper averages over 100 LFs on Amazon).
    """
    if n_lfs < 1:
        raise ValueError(f"n_lfs must be >= 1, got {n_lfs}")
    if n_bins < 2:
        raise ValueError(f"n_bins must be >= 2, got {n_bins}")
    rng = ensure_rng(seed)
    user = SimulatedUser(dataset, accuracy_threshold=user_threshold, seed=rng)
    family = LFFamily(dataset.primitive_names, dataset.train.B)
    train = dataset.train
    distance_fn = get_distance_fn(metric)
    state = _analysis_state(dataset, family, rng)

    coverage = np.zeros((n_lfs, n_bins))
    accuracy = np.full((n_lfs, n_bins), np.nan)
    eligible = np.flatnonzero(np.asarray(train.B.sum(axis=1)).ravel() > 0)
    count = 0
    attempts = 0
    while count < n_lfs and attempts < 20 * n_lfs:
        attempts += 1
        dev_index = int(rng.choice(eligible))
        lf = user.create_lf(dev_index, state)
        if lf is None:
            continue
        votes = lf.apply(train.B)
        dists = distance_fn(train.X, train.X[dev_index])
        edges = np.quantile(dists, np.linspace(0, 1, n_bins + 1))
        edges[0] -= 1e-9
        for b in range(n_bins):
            in_bin = (dists > edges[b]) & (dists <= edges[b + 1])
            n_in = int(in_bin.sum())
            if n_in == 0:
                continue
            fired = in_bin & (votes != 0)
            coverage[count, b] = fired.sum() / n_in
            if fired.any():
                accuracy[count, b] = float((votes[fired] == train.y[fired]).mean())
        count += 1
    if count == 0:
        raise RuntimeError("simulated user produced no LFs; lower user_threshold")
    acc_matrix = accuracy[:count]
    mean_accuracy = np.full(n_bins, np.nan)
    for b in range(n_bins):
        column = acc_matrix[:, b]
        finite = column[~np.isnan(column)]
        if finite.size:  # an all-NaN bin (no LF ever fires that far) stays NaN
            mean_accuracy[b] = float(finite.mean())
    return SubspaceProfile(
        n_lfs=count,
        n_bins=n_bins,
        coverage=coverage[:count].mean(axis=0),
        accuracy=mean_accuracy,
    )


def _analysis_state(dataset, family, rng) -> SessionState:
    """A minimal no-LF session state for driving the simulated user."""
    n = dataset.train.n
    prior = dataset.label_prior
    soft = np.full(n, prior)
    return SessionState(
        dataset=dataset,
        family=family,
        iteration=0,
        lfs=[],
        L_train=np.zeros((n, 0), dtype=np.int8),
        soft_labels=soft,
        entropies=posterior_entropy(soft),
        proxy_labels=np.where(rng.random(n) < prior, 1, -1),
        proxy_proba=np.full(n, prior),
        selected=set(),
        rng=rng,
    )
