"""Experiment harness: protocol, method registry, analysis, reporting."""

from repro.experiments.protocol import (
    LearningCurve,
    RunResult,
    evaluate_method,
    run_learning_curve,
)
from repro.experiments.reporting import format_series, format_table, relative_lift
from repro.experiments.runners import (
    TABLE2_METHODS,
    TABLE5_METHODS,
    make_method,
)
from repro.experiments.subspace import SubspaceProfile, lf_subspace_profile

__all__ = [
    "LearningCurve",
    "RunResult",
    "run_learning_curve",
    "evaluate_method",
    "make_method",
    "TABLE2_METHODS",
    "TABLE5_METHODS",
    "format_table",
    "format_series",
    "relative_lift",
    "SubspaceProfile",
    "lf_subspace_profile",
]
