"""Majority-vote label model — the simplest aggregator.

Serves both as a baseline and as the fallback whenever parametric models
lack the signal to fit (e.g. a single LF).
"""

from __future__ import annotations

import numpy as np

from repro.labelmodel.base import LabelModel


class MajorityVote(LabelModel):
    """Smoothed majority vote.

    Posterior for a covered example with ``p`` positive and ``q`` negative
    votes is ``(p + α·π) / (p + q + α)`` where ``π`` is the class prior and
    ``α`` a smoothing pseudo-count; uncovered examples get the prior.

    Parameters
    ----------
    class_prior:
        ``P(y = +1)``.
    smoothing:
        Pseudo-count ``α``; 1.0 gives a mild prior pull on thin votes.
    """

    def __init__(self, class_prior: float = 0.5, smoothing: float = 1.0) -> None:
        super().__init__(class_prior)
        if smoothing < 0:
            raise ValueError(f"smoothing must be >= 0, got {smoothing}")
        self.smoothing = smoothing

    def fit(self, L: np.ndarray) -> "MajorityVote":
        """No parameters to estimate; validates ``L`` and returns self."""
        self._validated(L)
        return self

    def predict_proba(self, L: np.ndarray) -> np.ndarray:
        L = self._validated(L)
        pos = (L == 1).sum(axis=1).astype(float)
        neg = (L == -1).sum(axis=1).astype(float)
        total = pos + neg
        proba = np.full(L.shape[0], self.class_prior, dtype=float)
        covered = total > 0
        alpha = self.smoothing
        proba[covered] = (pos[covered] + alpha * self.class_prior) / (
            total[covered] + alpha
        )
        return proba
