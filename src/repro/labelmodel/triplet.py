"""Triplet-method label model (FlyingSquid-style closed form).

Implements the method-of-moments aggregator of Fu et al. [11] ("Fast and
Three-rious"): under conditional independence, for any triplet of LFs
``(i, j, k)`` the class-conditional mean parameters ``μ_j = E[λ_j · y]``
satisfy ``|μ_i| = sqrt(E[λ_i λ_j] · E[λ_i λ_k] / E[λ_j λ_k])``, which gives
closed-form (training-free) accuracy estimates.  Included because the
paper's contextualized pipeline is label-model agnostic — swapping this in
for MeTaL is a one-line change, exercised in the ablation benches.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.labelmodel.base import LabelModel

_MU_CLIP = 0.90  # keep implied accuracies away from 0/1
_MIN_MOMENT = 1e-3


class TripletLabelModel(LabelModel):
    """Closed-form accuracy estimation from second-moment agreement rates.

    Parameters
    ----------
    class_prior:
        Fixed ``P(y = +1)``.
    max_triplets:
        Cap on the number of triplets averaged per LF (all combinations up
        to this budget, deterministic order) — keeps m³ growth in check.
    fallback_accuracy:
        Accuracy assigned when fewer than three LFs exist or moments are
        degenerate (e.g. two LFs never co-fire).

    Notes
    -----
    Signs of ``μ`` are resolved with the standard better-than-random
    assumption (majority of LFs have positive correlation with the truth).
    Abstains are handled by conditioning each pairwise moment on joint
    coverage, and converting conditional means back through per-LF
    propensities.
    """

    def __init__(
        self,
        class_prior: float = 0.5,
        max_triplets: int = 5000,
        fallback_accuracy: float = 0.7,
    ) -> None:
        super().__init__(class_prior)
        if max_triplets < 1:
            raise ValueError(f"max_triplets must be >= 1, got {max_triplets}")
        if not 0.5 < fallback_accuracy < 1.0:
            raise ValueError(
                f"fallback_accuracy must be in (0.5, 1), got {fallback_accuracy}"
            )
        self.max_triplets = max_triplets
        self.fallback_accuracy = fallback_accuracy
        self.accuracies_: np.ndarray | None = None

    _FITTED_ATTRS = ("accuracies_",)

    def fit(self, L: np.ndarray) -> "TripletLabelModel":
        L = self._validated(L).astype(float)
        n, m = L.shape
        if m == 0:
            self.accuracies_ = np.zeros(0)
            return self
        if m < 3 or n == 0:
            self.accuracies_ = np.full(m, self.fallback_accuracy)
            return self
        cond_mu = self._conditional_means(L)
        acc = np.where(
            np.isnan(cond_mu),
            self.fallback_accuracy,
            (1.0 + np.clip(cond_mu, -_MU_CLIP, _MU_CLIP)) / 2.0,
        )
        self.accuracies_ = np.clip(acc, 0.05, 0.95)
        return self

    def predict_proba(self, L: np.ndarray) -> np.ndarray:
        if self.accuracies_ is None:
            raise RuntimeError("TripletLabelModel.predict_proba called before fit")
        L = self._validated(L)
        if L.shape[1] != len(self.accuracies_):
            raise ValueError(
                f"label matrix has {L.shape[1]} LFs but model was fitted with "
                f"{len(self.accuracies_)}"
            )
        if L.shape[1] == 0:
            return np.full(L.shape[0], self.class_prior)
        acc = self.accuracies_
        weights = np.log(acc / (1 - acc))
        scores = np.log(self.class_prior / (1 - self.class_prior)) + L.astype(float) @ weights
        return 1.0 / (1.0 + np.exp(-np.clip(scores, -500, 500)))

    # ------------------------------------------------------------------ #
    # moment computations
    # ------------------------------------------------------------------ #
    def _conditional_means(self, L: np.ndarray) -> np.ndarray:
        """Per-LF ``E[λ_j y | λ_j ≠ 0]`` averaged over solvable triplets."""
        m = L.shape[1]
        covered = L != 0
        # Conditional pairwise agreement: E[λ_i λ_j | both vote].
        pair_mom = np.full((m, m), np.nan)
        for i in range(m):
            for j in range(i + 1, m):
                both = covered[:, i] & covered[:, j]
                if both.sum() >= 3:
                    mom = float(np.mean(L[both, i] * L[both, j]))
                    pair_mom[i, j] = pair_mom[j, i] = mom
        estimates: list[list[float]] = [[] for _ in range(m)]
        n_done = 0
        for i, j, k in itertools.combinations(range(m), 3):
            if n_done >= self.max_triplets:
                break
            mij, mik, mjk = pair_mom[i, j], pair_mom[i, k], pair_mom[j, k]
            if any(np.isnan(v) or abs(v) < _MIN_MOMENT for v in (mij, mik, mjk)):
                continue
            n_done += 1
            for target, a, b, c in ((i, mij, mik, mjk), (j, mij, mjk, mik), (k, mik, mjk, mij)):
                val = abs(a) * abs(b) / abs(c)
                if val > 0:
                    estimates[target].append(np.sqrt(min(val, 1.0)))
        mu = np.full(m, np.nan)
        for j in range(m):
            if estimates[j]:
                mu[j] = float(np.mean(estimates[j]))
        return mu
