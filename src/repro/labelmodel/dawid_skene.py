"""Dawid–Skene label model with abstain-aware confusion matrices.

A classical EM aggregator included as an alternative to the MeTaL-style
model: each LF gets a full class-conditional outcome distribution
``P(λ_j = l | y)`` over ``l ∈ {-1, 0, +1}``, so even *abstains* can be
informative (e.g. an LF that almost never abstains on the positive class).
The contextualized pipeline is label-model agnostic (paper Sec. 4.3), and
this model exercises that claim in tests and ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.labelmodel.base import LabelModel
from repro.labelmodel.matrix import (
    COLD_PATHS,
    ColumnStats,
    column_stats_from_dense,
    resolve_cold_path,
    validated_or_stats,
)

_OUTCOMES = (-1, 0, 1)
_SMOOTH = 0.1


class DawidSkene(LabelModel):
    """EM-fitted per-LF confusion model.

    Parameters
    ----------
    class_prior:
        Initial ``P(y = +1)``; re-estimated during EM when
        ``learn_prior=True``.
    n_iter / tol:
        EM budget and convergence threshold (max parameter change).
    learn_prior:
        Whether the class prior is updated in the M-step.
    cold_path:
        Cold-fit kernel policy (``"auto"`` / ``"stats"`` / ``"dense"``):
        same contract as
        :class:`~repro.labelmodel.metal.MetalLabelModel` — ``"auto"``
        picks the O(nnz) path at ``n >= COLD_STATS_MIN_ROWS``, ``"dense"``
        is the bit-for-bit legacy defeat switch / parity oracle.

    Attributes
    ----------
    confusion_:
        ``(m, 2, 3)`` array: ``confusion_[j, c, o] = P(λ_j = outcome o | y = class c)``
        with classes ordered ``(-1, +1)`` and outcomes ``(-1, 0, +1)``.
    prior_:
        Final ``P(y = +1)``.
    em_iterations_:
        EM iterations the last fit actually ran (obs attribution).
    """

    _FITTED_ATTRS = ("confusion_", "prior_", "converged_", "em_iterations_")

    def __init__(
        self,
        class_prior: float = 0.5,
        n_iter: int = 100,
        tol: float = 1e-5,
        learn_prior: bool = True,
        cold_path: str = "auto",
    ) -> None:
        super().__init__(class_prior)
        if n_iter < 1:
            raise ValueError(f"n_iter must be >= 1, got {n_iter}")
        if cold_path not in COLD_PATHS:
            raise ValueError(f"cold_path must be one of {COLD_PATHS}, got {cold_path!r}")
        self.n_iter = n_iter
        self.tol = tol
        self.learn_prior = learn_prior
        self.cold_path = cold_path
        self.confusion_: np.ndarray | None = None
        self.prior_: float = class_prior
        self.converged_: bool = False
        self.em_iterations_: int = 0

    def fit(self, L: np.ndarray, stats: ColumnStats | None = None) -> "DawidSkene":
        """Cold EM fit from the smoothed majority-vote posterior.

        ``stats`` (a matching :class:`~repro.labelmodel.matrix.ColumnStats`
        handle) skips the dense re-validation scan.  Under the resolved
        ``cold_path`` the full EM runs either on the O(nnz)
        sufficient-statistics kernels (a missing handle is built here by
        one dense scan; fits are bit-identical whichever way the handle
        was obtained) or on the legacy dense arithmetic
        (``cold_path="dense"``, bit-for-bit the historical semantics).
        """
        L = self._validated_or_stats(L, stats)
        n, m = L.shape
        if m == 0:
            self.confusion_ = np.zeros((0, 2, 3))
            self.prior_ = self.class_prior
            self.converged_ = True
            self.em_iterations_ = 0
            return self
        if resolve_cold_path(self.cold_path, n) == "stats":
            if stats is None:
                stats = column_stats_from_dense(L, abstain=0)
            masses = self._outcome_masses(stats)
            pos = stats.row_value_counts(1)
            neg = stats.row_value_counts(-1)
            q = np.where(
                pos + neg > 0, (pos + 0.5) / (pos + neg + 1.0), self.class_prior
            )
            self._em_loop(
                q,
                self.n_iter,
                m_step=lambda q: self._m_step_stats(masses, q),
                e_step=lambda conf, prior: self._e_step_stats(stats, conf, prior),
            )
            return self
        outcome_onehot = self._outcome_onehot_dense(L)  # (n, m, 3)
        # Initialize from smoothed majority vote.
        pos, neg = self._vote_tallies_dense(L)
        q = np.where(pos + neg > 0, (pos + 0.5) / (pos + neg + 1.0), self.class_prior)
        self._em_loop(
            q,
            self.n_iter,
            m_step=lambda q: self._m_step_dense(outcome_onehot, q),
            e_step=lambda conf, prior: self._e_step_dense(L, conf, prior),
        )
        return self

    def fit_warm(
        self,
        L: np.ndarray,
        previous: "DawidSkene | None" = None,
        max_iter: int | None = None,
        stats: ColumnStats | None = None,
    ) -> "DawidSkene":
        """Fit seeded from a previous fit's posterior (incremental refits).

        Same contract as :meth:`repro.labelmodel.metal.MetalLabelModel.fit_warm`:
        EM continues from the posterior of the previous parameters over the
        columns they were fitted on, ``max_iter`` caps this call's EM
        iterations, and the loop runs on the O(nnz) sufficient-statistics
        path (the ``stats`` handle threaded from the engine, or one built
        here by a single dense scan — bit-identical either way).  Falls
        back to a cold :meth:`fit` whenever the previous model is unusable.
        """
        usable = (
            type(previous) is type(self)
            and getattr(previous, "confusion_", None) is not None
            and previous.confusion_.shape[0] > 0
        )
        if not usable:
            return self.fit(L, stats=stats)
        L = self._validated_or_stats(L, stats)
        m_prev = previous.confusion_.shape[0]
        if L.shape[0] == 0 or L.shape[1] == 0 or L.shape[1] < m_prev:
            return self.fit(L, stats=stats)
        if stats is None:
            stats = column_stats_from_dense(L, abstain=0)
        q = self._e_step_stats(stats, previous.confusion_, previous.prior_)
        n_iter = self.n_iter if max_iter is None else max(1, min(self.n_iter, int(max_iter)))
        masses = self._outcome_masses(stats)
        # As in the other models' warm fits, the *initial* class-balance
        # estimate must mirror the cold seeding (smoothed majority
        # posterior) — estimating it from the previous converged posterior
        # lets a one-sided LF set drag the prior further every refit.
        pos = stats.row_value_counts(1)
        neg = stats.row_value_counts(-1)
        q_majority = np.where(
            pos + neg > 0, (pos + 0.5) / (pos + neg + 1.0), self.class_prior
        )
        self._em_loop(
            q,
            n_iter,
            m_step=lambda q: self._m_step_stats(masses, q),
            e_step=lambda conf, prior: self._e_step_stats(stats, conf, prior),
            q_prior=q_majority,
        )
        return self

    def _em_loop(
        self, q: np.ndarray, n_iter: int, m_step, e_step, q_prior: np.ndarray | None = None
    ) -> None:
        """The shared EM alternation (cold and warm paths differ only in
        how the sufficient statistics and posteriors are computed).

        ``q_prior`` optionally supplies a different posterior for the
        *first* class-balance update (warm fits pass the majority
        posterior to mirror the cold seeding); subsequent updates use the
        evolving E-step posterior in both paths.
        """
        prior = self.class_prior
        confusion = None
        self.converged_ = False
        iterations = 0
        for it in range(n_iter):
            iterations = it + 1
            confusion_new = m_step(q)
            balance_q = q_prior if (it == 0 and q_prior is not None) else q
            prior_new = (
                float(np.clip(balance_q.mean(), 0.01, 0.99)) if self.learn_prior else prior
            )
            q_new = e_step(confusion_new, prior_new)
            if confusion is not None:
                delta = max(
                    float(np.max(np.abs(confusion_new - confusion))),
                    abs(prior_new - prior),
                )
                if delta < self.tol:
                    confusion, prior, q = confusion_new, prior_new, q_new
                    self.converged_ = True
                    break
            confusion, prior, q = confusion_new, prior_new, q_new
        self.confusion_ = confusion
        self.prior_ = prior
        self.em_iterations_ = iterations

    def _validated_or_stats(self, L: np.ndarray, stats: ColumnStats | None) -> np.ndarray:
        return validated_or_stats(L, stats, self._validated)

    def predict_proba(
        self, L: np.ndarray, stats: ColumnStats | None = None
    ) -> np.ndarray:
        """``P(y=+1 | L_i)`` under the fitted confusions.

        ``stats`` skips the dense re-validation scan; the posterior runs
        on the kernel the ``cold_path`` policy resolves to at this ``n``
        (a missing handle is built by one scan on the stats path, so the
        result is byte-equal with or without ``stats``).
        """
        if self.confusion_ is None:
            raise RuntimeError("DawidSkene.predict_proba called before fit")
        L = self._validated_or_stats(L, stats)
        if L.shape[1] != self.confusion_.shape[0]:
            raise ValueError(
                f"label matrix has {L.shape[1]} LFs but model was fitted with "
                f"{self.confusion_.shape[0]}"
            )
        if L.shape[1] == 0:
            return np.full(L.shape[0], self.prior_)
        if resolve_cold_path(self.cold_path, L.shape[0]) == "stats":
            if stats is None:
                stats = column_stats_from_dense(L, abstain=0)
            return self._e_step_stats(stats, self.confusion_, self.prior_)
        return self._e_step_dense(L, self.confusion_, self.prior_)

    # ------------------------------------------------------------------ #
    # EM internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _vote_tallies_dense(L: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-row (positive, negative) vote counts by dense scan."""
        return (L == 1).sum(axis=1), (L == -1).sum(axis=1)

    @staticmethod
    def _outcome_onehot_dense(L: np.ndarray) -> np.ndarray:
        onehot = np.zeros((*L.shape, 3), dtype=float)
        for o_idx, outcome in enumerate(_OUTCOMES):
            onehot[..., o_idx] = L == outcome
        return onehot

    @staticmethod
    def _m_step_dense(outcome_onehot: np.ndarray, q: np.ndarray) -> np.ndarray:
        """Update confusion matrices from posterior responsibilities ``q``."""
        weights = np.stack([1 - q, q], axis=1)  # (n, 2): P(y=-1), P(y=+1)
        # counts[j, c, o] = Σ_i weights[i, c] * onehot[i, j, o]
        counts = np.einsum("ic,ijo->jco", weights, outcome_onehot)
        counts += _SMOOTH
        return counts / counts.sum(axis=2, keepdims=True)

    # -- O(nnz) twins used by the warm and sparse-cold paths ----------- #
    @staticmethod
    def _outcome_masses(stats: ColumnStats) -> dict[str, object]:
        """Per-outcome sparse indicator structure, shared by all EM steps."""
        return {"Fn": stats.value_csc(-1), "Fp": stats.value_csc(1)}

    @staticmethod
    def _m_step_stats(masses: dict, q: np.ndarray) -> np.ndarray:
        """O(nnz) confusion update: the fired-outcome masses come from two
        sparse mat-vecs; the abstain column is the remaining class mass."""
        weights = np.stack([1 - q, q], axis=1)  # (n, 2)
        cn = np.asarray(masses["Fn"].T @ weights)  # (m, 2) mass voting -1
        cp = np.asarray(masses["Fp"].T @ weights)  # (m, 2) mass voting +1
        total = weights.sum(axis=0)  # (2,)
        counts = np.empty((cn.shape[0], 2, 3))
        counts[:, :, 0] = cn
        counts[:, :, 1] = total[None, :] - cn - cp
        counts[:, :, 2] = cp
        counts += _SMOOTH
        return counts / counts.sum(axis=2, keepdims=True)

    @staticmethod
    def _e_step_stats(
        stats: ColumnStats, confusion: np.ndarray, prior: float
    ) -> np.ndarray:
        """O(nnz) table-driven posterior.

        Every row starts from the all-abstain log-likelihood
        (``Σ_j log P(λ_j = 0 | y)`` per class); fired entries contribute a
        correction looked up in one of two per-column tables built once
        per call — ``Tn[j, c] = log conf[j, c, -1] − log conf[j, c, 0]``
        for a −1 vote and ``Tp`` likewise for +1.  The tables are gathered
        through the flat entry arrays (:meth:`ColumnStats.entries`) and
        segment-summed into rows with one ``np.bincount`` per class —
        replacing the per-column sparse mat-vec passes.  Column-sliced to
        the confusion prefix (``indptr[m]``) when warm-seeding from a
        smaller previous fit.
        """
        m = confusion.shape[0]
        log_conf = np.log(np.clip(confusion, 1e-12, None))  # (m, 2, 3)
        indptr, rows, cols, values = stats.entries()
        if m != stats.m:
            end = int(indptr[m])
            rows, cols, values = rows[:end], cols[:end], values[:end]
        table_neg = log_conf[:, :, 0] - log_conf[:, :, 1]  # (m, 2)
        table_pos = log_conf[:, :, 2] - log_conf[:, :, 1]
        contrib = np.where((values == -1)[:, None], table_neg[cols], table_pos[cols])
        ll = np.empty((stats.n_rows, 2))
        base = log_conf[:, :, 1].sum(axis=0)  # (2,)
        for c in range(2):
            ll[:, c] = base[c] + np.bincount(
                rows, weights=contrib[:, c], minlength=stats.n_rows
            )
        ll[:, 0] += np.log(1 - prior)
        ll[:, 1] += np.log(prior)
        ll -= ll.max(axis=1, keepdims=True)
        probs = np.exp(ll)
        return probs[:, 1] / probs.sum(axis=1)

    @staticmethod
    def _e_step_dense(L: np.ndarray, confusion: np.ndarray, prior: float) -> np.ndarray:
        log_conf = np.log(np.clip(confusion, 1e-12, None))  # (m, 2, 3)
        n = L.shape[0]
        ll = np.zeros((n, 2))
        for o_idx, outcome in enumerate(_OUTCOMES):
            mask = (L == outcome).astype(float)  # (n, m)
            ll += mask @ log_conf[:, :, o_idx]  # accumulate per-class log-lik
        ll[:, 0] += np.log(1 - prior)
        ll[:, 1] += np.log(prior)
        ll -= ll.max(axis=1, keepdims=True)
        probs = np.exp(ll)
        return probs[:, 1] / probs.sum(axis=1)
