"""Dawid–Skene label model with abstain-aware confusion matrices.

A classical EM aggregator included as an alternative to the MeTaL-style
model: each LF gets a full class-conditional outcome distribution
``P(λ_j = l | y)`` over ``l ∈ {-1, 0, +1}``, so even *abstains* can be
informative (e.g. an LF that almost never abstains on the positive class).
The contextualized pipeline is label-model agnostic (paper Sec. 4.3), and
this model exercises that claim in tests and ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.labelmodel.base import LabelModel
from repro.labelmodel.matrix import (
    ColumnStats,
    column_stats_from_dense,
    validated_or_stats,
)

_OUTCOMES = (-1, 0, 1)
_SMOOTH = 0.1


class DawidSkene(LabelModel):
    """EM-fitted per-LF confusion model.

    Parameters
    ----------
    class_prior:
        Initial ``P(y = +1)``; re-estimated during EM when
        ``learn_prior=True``.
    n_iter / tol:
        EM budget and convergence threshold (max parameter change).
    learn_prior:
        Whether the class prior is updated in the M-step.

    Attributes
    ----------
    confusion_:
        ``(m, 2, 3)`` array: ``confusion_[j, c, o] = P(λ_j = outcome o | y = class c)``
        with classes ordered ``(-1, +1)`` and outcomes ``(-1, 0, +1)``.
    prior_:
        Final ``P(y = +1)``.
    """

    _FITTED_ATTRS = ("confusion_", "prior_", "converged_")

    def __init__(
        self,
        class_prior: float = 0.5,
        n_iter: int = 100,
        tol: float = 1e-5,
        learn_prior: bool = True,
    ) -> None:
        super().__init__(class_prior)
        if n_iter < 1:
            raise ValueError(f"n_iter must be >= 1, got {n_iter}")
        self.n_iter = n_iter
        self.tol = tol
        self.learn_prior = learn_prior
        self.confusion_: np.ndarray | None = None
        self.prior_: float = class_prior
        self.converged_: bool = False

    def fit(self, L: np.ndarray, stats: ColumnStats | None = None) -> "DawidSkene":
        """Cold EM fit from the smoothed majority-vote posterior.

        ``stats`` (a matching :class:`~repro.labelmodel.matrix.ColumnStats`
        handle) only skips the dense re-validation scan; the cold
        arithmetic is unchanged.
        """
        L = self._validated_or_stats(L, stats)
        n, m = L.shape
        if m == 0:
            self.confusion_ = np.zeros((0, 2, 3))
            self.prior_ = self.class_prior
            self.converged_ = True
            return self
        outcome_onehot = self._outcome_onehot(L)  # (n, m, 3)
        # Initialize from smoothed majority vote.
        pos = (L == 1).sum(axis=1)
        neg = (L == -1).sum(axis=1)
        q = np.where(pos + neg > 0, (pos + 0.5) / (pos + neg + 1.0), self.class_prior)
        self._em_loop(
            q,
            self.n_iter,
            m_step=lambda q: self._m_step(outcome_onehot, q),
            e_step=lambda conf, prior: self._e_step(L, conf, prior),
        )
        return self

    def fit_warm(
        self,
        L: np.ndarray,
        previous: "DawidSkene | None" = None,
        max_iter: int | None = None,
        stats: ColumnStats | None = None,
    ) -> "DawidSkene":
        """Fit seeded from a previous fit's posterior (incremental refits).

        Same contract as :meth:`repro.labelmodel.metal.MetalLabelModel.fit_warm`:
        EM continues from the posterior of the previous parameters over the
        columns they were fitted on, ``max_iter`` caps this call's EM
        iterations, and the loop runs on the O(nnz) sufficient-statistics
        path (the ``stats`` handle threaded from the engine, or one built
        here by a single dense scan — bit-identical either way).  Falls
        back to a cold :meth:`fit` whenever the previous model is unusable.
        """
        usable = (
            type(previous) is type(self)
            and getattr(previous, "confusion_", None) is not None
            and previous.confusion_.shape[0] > 0
        )
        if not usable:
            return self.fit(L, stats=stats)
        L = self._validated_or_stats(L, stats)
        m_prev = previous.confusion_.shape[0]
        if L.shape[0] == 0 or L.shape[1] == 0 or L.shape[1] < m_prev:
            return self.fit(L, stats=stats)
        if stats is None:
            stats = column_stats_from_dense(L, abstain=0)
        q = self._e_step_stats(stats, previous.confusion_, previous.prior_)
        n_iter = self.n_iter if max_iter is None else max(1, min(self.n_iter, int(max_iter)))
        masses = self._outcome_masses(stats)
        # As in the other models' warm fits, the *initial* class-balance
        # estimate must mirror the cold seeding (smoothed majority
        # posterior) — estimating it from the previous converged posterior
        # lets a one-sided LF set drag the prior further every refit.
        pos = stats.row_value_counts(1)
        neg = stats.row_value_counts(-1)
        q_majority = np.where(
            pos + neg > 0, (pos + 0.5) / (pos + neg + 1.0), self.class_prior
        )
        self._em_loop(
            q,
            n_iter,
            m_step=lambda q: self._m_step_stats(masses, q),
            e_step=lambda conf, prior: self._e_step_stats(stats, conf, prior),
            q_prior=q_majority,
        )
        return self

    def _em_loop(
        self, q: np.ndarray, n_iter: int, m_step, e_step, q_prior: np.ndarray | None = None
    ) -> None:
        """The shared EM alternation (cold and warm paths differ only in
        how the sufficient statistics and posteriors are computed).

        ``q_prior`` optionally supplies a different posterior for the
        *first* class-balance update (warm fits pass the majority
        posterior to mirror the cold seeding); subsequent updates use the
        evolving E-step posterior in both paths.
        """
        prior = self.class_prior
        confusion = None
        self.converged_ = False
        for it in range(n_iter):
            confusion_new = m_step(q)
            balance_q = q_prior if (it == 0 and q_prior is not None) else q
            prior_new = (
                float(np.clip(balance_q.mean(), 0.01, 0.99)) if self.learn_prior else prior
            )
            q_new = e_step(confusion_new, prior_new)
            if confusion is not None:
                delta = max(
                    float(np.max(np.abs(confusion_new - confusion))),
                    abs(prior_new - prior),
                )
                if delta < self.tol:
                    confusion, prior, q = confusion_new, prior_new, q_new
                    self.converged_ = True
                    break
            confusion, prior, q = confusion_new, prior_new, q_new
        self.confusion_ = confusion
        self.prior_ = prior

    def _validated_or_stats(self, L: np.ndarray, stats: ColumnStats | None) -> np.ndarray:
        return validated_or_stats(L, stats, self._validated)

    def predict_proba(
        self, L: np.ndarray, stats: ColumnStats | None = None
    ) -> np.ndarray:
        if self.confusion_ is None:
            raise RuntimeError("DawidSkene.predict_proba called before fit")
        L = self._validated_or_stats(L, stats)
        if L.shape[1] != self.confusion_.shape[0]:
            raise ValueError(
                f"label matrix has {L.shape[1]} LFs but model was fitted with "
                f"{self.confusion_.shape[0]}"
            )
        if L.shape[1] == 0:
            return np.full(L.shape[0], self.prior_)
        return self._e_step(L, self.confusion_, self.prior_)

    # ------------------------------------------------------------------ #
    # EM internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _outcome_onehot(L: np.ndarray) -> np.ndarray:
        onehot = np.zeros((*L.shape, 3), dtype=float)
        for o_idx, outcome in enumerate(_OUTCOMES):
            onehot[..., o_idx] = L == outcome
        return onehot

    @staticmethod
    def _m_step(outcome_onehot: np.ndarray, q: np.ndarray) -> np.ndarray:
        """Update confusion matrices from posterior responsibilities ``q``."""
        weights = np.stack([1 - q, q], axis=1)  # (n, 2): P(y=-1), P(y=+1)
        # counts[j, c, o] = Σ_i weights[i, c] * onehot[i, j, o]
        counts = np.einsum("ic,ijo->jco", weights, outcome_onehot)
        counts += _SMOOTH
        return counts / counts.sum(axis=2, keepdims=True)

    # -- O(nnz) twins used by the warm path ---------------------------- #
    @staticmethod
    def _outcome_masses(stats: ColumnStats) -> dict[str, object]:
        """Per-outcome sparse indicator structure, shared by all EM steps."""
        return {"Fn": stats.value_csc(-1), "Fp": stats.value_csc(1)}

    @staticmethod
    def _m_step_stats(masses: dict, q: np.ndarray) -> np.ndarray:
        """O(nnz) confusion update: the fired-outcome masses come from two
        sparse mat-vecs; the abstain column is the remaining class mass."""
        weights = np.stack([1 - q, q], axis=1)  # (n, 2)
        cn = np.asarray(masses["Fn"].T @ weights)  # (m, 2) mass voting -1
        cp = np.asarray(masses["Fp"].T @ weights)  # (m, 2) mass voting +1
        total = weights.sum(axis=0)  # (2,)
        counts = np.empty((cn.shape[0], 2, 3))
        counts[:, :, 0] = cn
        counts[:, :, 1] = total[None, :] - cn - cp
        counts[:, :, 2] = cp
        counts += _SMOOTH
        return counts / counts.sum(axis=2, keepdims=True)

    @staticmethod
    def _e_step_stats(
        stats: ColumnStats, confusion: np.ndarray, prior: float
    ) -> np.ndarray:
        """O(nnz) posterior: start every row from the all-abstain log-lik
        and correct only the fired entries (column-sliced to the confusion
        prefix when warm-seeding from a smaller previous fit)."""
        m = confusion.shape[0]
        log_conf = np.log(np.clip(confusion, 1e-12, None))  # (m, 2, 3)
        Fn, Fp = stats.value_csc(-1), stats.value_csc(1)
        if m != stats.m:
            Fn, Fp = Fn[:, :m], Fp[:, :m]
        ll = (
            log_conf[:, :, 1].sum(axis=0)[None, :]
            + np.asarray(Fn @ (log_conf[:, :, 0] - log_conf[:, :, 1]))
            + np.asarray(Fp @ (log_conf[:, :, 2] - log_conf[:, :, 1]))
        )
        ll[:, 0] += np.log(1 - prior)
        ll[:, 1] += np.log(prior)
        ll -= ll.max(axis=1, keepdims=True)
        probs = np.exp(ll)
        return probs[:, 1] / probs.sum(axis=1)

    @staticmethod
    def _e_step(L: np.ndarray, confusion: np.ndarray, prior: float) -> np.ndarray:
        log_conf = np.log(np.clip(confusion, 1e-12, None))  # (m, 2, 3)
        n = L.shape[0]
        ll = np.zeros((n, 2))
        for o_idx, outcome in enumerate(_OUTCOMES):
            mask = (L == outcome).astype(float)  # (n, m)
            ll += mask @ log_conf[:, :, o_idx]  # accumulate per-class log-lik
        ll[:, 0] += np.log(1 - prior)
        ll[:, 1] += np.log(prior)
        ll -= ll.max(axis=1, keepdims=True)
        probs = np.exp(ll)
        return probs[:, 1] / probs.sum(axis=1)
