"""Dawid–Skene label model with abstain-aware confusion matrices.

A classical EM aggregator included as an alternative to the MeTaL-style
model: each LF gets a full class-conditional outcome distribution
``P(λ_j = l | y)`` over ``l ∈ {-1, 0, +1}``, so even *abstains* can be
informative (e.g. an LF that almost never abstains on the positive class).
The contextualized pipeline is label-model agnostic (paper Sec. 4.3), and
this model exercises that claim in tests and ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.labelmodel.base import LabelModel

_OUTCOMES = (-1, 0, 1)
_SMOOTH = 0.1


class DawidSkene(LabelModel):
    """EM-fitted per-LF confusion model.

    Parameters
    ----------
    class_prior:
        Initial ``P(y = +1)``; re-estimated during EM when
        ``learn_prior=True``.
    n_iter / tol:
        EM budget and convergence threshold (max parameter change).
    learn_prior:
        Whether the class prior is updated in the M-step.

    Attributes
    ----------
    confusion_:
        ``(m, 2, 3)`` array: ``confusion_[j, c, o] = P(λ_j = outcome o | y = class c)``
        with classes ordered ``(-1, +1)`` and outcomes ``(-1, 0, +1)``.
    prior_:
        Final ``P(y = +1)``.
    """

    def __init__(
        self,
        class_prior: float = 0.5,
        n_iter: int = 100,
        tol: float = 1e-5,
        learn_prior: bool = True,
    ) -> None:
        super().__init__(class_prior)
        if n_iter < 1:
            raise ValueError(f"n_iter must be >= 1, got {n_iter}")
        self.n_iter = n_iter
        self.tol = tol
        self.learn_prior = learn_prior
        self.confusion_: np.ndarray | None = None
        self.prior_: float = class_prior
        self.converged_: bool = False

    def fit(self, L: np.ndarray) -> "DawidSkene":
        L = self._validated(L)
        n, m = L.shape
        if m == 0:
            self.confusion_ = np.zeros((0, 2, 3))
            self.prior_ = self.class_prior
            self.converged_ = True
            return self
        outcome_onehot = self._outcome_onehot(L)  # (n, m, 3)
        # Initialize from smoothed majority vote.
        pos = (L == 1).sum(axis=1)
        neg = (L == -1).sum(axis=1)
        q = np.where(pos + neg > 0, (pos + 0.5) / (pos + neg + 1.0), self.class_prior)
        prior = self.class_prior
        confusion = None
        self.converged_ = False
        for _ in range(self.n_iter):
            confusion_new = self._m_step(outcome_onehot, q)
            prior_new = float(np.clip(q.mean(), 0.01, 0.99)) if self.learn_prior else prior
            q_new = self._e_step(L, confusion_new, prior_new)
            if confusion is not None:
                delta = max(
                    float(np.max(np.abs(confusion_new - confusion))),
                    abs(prior_new - prior),
                )
                if delta < self.tol:
                    confusion, prior, q = confusion_new, prior_new, q_new
                    self.converged_ = True
                    break
            confusion, prior, q = confusion_new, prior_new, q_new
        self.confusion_ = confusion
        self.prior_ = prior
        return self

    def predict_proba(self, L: np.ndarray) -> np.ndarray:
        if self.confusion_ is None:
            raise RuntimeError("DawidSkene.predict_proba called before fit")
        L = self._validated(L)
        if L.shape[1] != self.confusion_.shape[0]:
            raise ValueError(
                f"label matrix has {L.shape[1]} LFs but model was fitted with "
                f"{self.confusion_.shape[0]}"
            )
        if L.shape[1] == 0:
            return np.full(L.shape[0], self.prior_)
        return self._e_step(L, self.confusion_, self.prior_)

    # ------------------------------------------------------------------ #
    # EM internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _outcome_onehot(L: np.ndarray) -> np.ndarray:
        onehot = np.zeros((*L.shape, 3), dtype=float)
        for o_idx, outcome in enumerate(_OUTCOMES):
            onehot[..., o_idx] = L == outcome
        return onehot

    @staticmethod
    def _m_step(outcome_onehot: np.ndarray, q: np.ndarray) -> np.ndarray:
        """Update confusion matrices from posterior responsibilities ``q``."""
        weights = np.stack([1 - q, q], axis=1)  # (n, 2): P(y=-1), P(y=+1)
        # counts[j, c, o] = Σ_i weights[i, c] * onehot[i, j, o]
        counts = np.einsum("ic,ijo->jco", weights, outcome_onehot)
        counts += _SMOOTH
        return counts / counts.sum(axis=2, keepdims=True)

    @staticmethod
    def _e_step(L: np.ndarray, confusion: np.ndarray, prior: float) -> np.ndarray:
        log_conf = np.log(np.clip(confusion, 1e-12, None))  # (m, 2, 3)
        n = L.shape[0]
        ll = np.zeros((n, 2))
        for o_idx, outcome in enumerate(_OUTCOMES):
            mask = (L == outcome).astype(float)  # (n, m)
            ll += mask @ log_conf[:, :, o_idx]  # accumulate per-class log-lik
        ll[:, 0] += np.log(1 - prior)
        ll[:, 1] += np.log(prior)
        ll -= ll.max(axis=1, keepdims=True)
        probs = np.exp(ll)
        return probs[:, 1] / probs.sum(axis=1)
