"""Label-matrix construction and diagnostics.

The label matrix ``L`` is the central artifact of data programming
(paper Sec. 2): ``L[i, j] = λ_j(x_i) ∈ {-1, 0, +1}`` with 0 meaning
*abstain*.  This module builds ``L`` from primitive-based LFs and computes
the standard weak-supervision diagnostics (coverage, overlap, conflict) that
both the literature and our selectors/tests rely on.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

ABSTAIN = 0

#: Row-count floor for the sparse cold path under ``cold_path="auto"``.
#: Below it, cold fits keep the legacy dense arithmetic bit-for-bit — the
#: historical transcripts (golden sessions, the 1k exact-parity bench row)
#: were recorded on the dense kernels, and at small n the dense EM is
#: already interactive-fast, so "auto" only flips where it pays.
COLD_STATS_MIN_ROWS = 2048

#: The accepted ``cold_path`` policies of the stats-aware label models.
COLD_PATHS = ("auto", "stats", "dense")


def resolve_cold_path(cold_path: str, n_rows: int) -> str:
    """Resolve a model's ``cold_path`` policy to ``"stats"`` or ``"dense"``.

    ``"auto"`` picks the sparse path iff ``n_rows >= COLD_STATS_MIN_ROWS``;
    ``"stats"`` and ``"dense"`` are explicit overrides (the latter is the
    defeat switch that preserves the pre-sparse arithmetic verbatim and
    serves as the parity oracle in the tests).
    """
    if cold_path not in COLD_PATHS:
        raise ValueError(f"cold_path must be one of {COLD_PATHS}, got {cold_path!r}")
    if cold_path == "auto":
        return "stats" if n_rows >= COLD_STATS_MIN_ROWS else "dense"
    return cold_path


def column_nonzero_rows(B: sp.spmatrix, j: int) -> np.ndarray:
    """Row indices with a nonzero in column ``j`` of a sparse matrix.

    CSC input hits the O(nnz_col) fast path (a direct ``indptr`` slice);
    other formats fall back to a generic column extraction.  This is the
    primitive behind sparse-native LF application: a keyword LF's vote
    vector is fully described by the rows its primitive covers.
    """
    j = int(j)
    if sp.issparse(B) and B.format == "csc":
        return B.indices[B.indptr[j] : B.indptr[j + 1]]
    return sp.csc_matrix(B.getcol(j)).indices


class VoteMatrix:
    """Append-only vote matrix that grows by column without re-copies.

    The interactive loop adds one LF (= one column) per iteration; building
    each new matrix with ``np.column_stack`` copies all previous votes every
    time, O(n·m) per step and O(n·m²) per session.  ``VoteMatrix``
    pre-allocates capacity with doubling (amortized O(1) column appends into
    an int8 buffer) and maintains running per-example vote tallies so
    coverage/conflict diagnostics are O(n) reads instead of O(n·m) scans.

    Works for both vote conventions: binary (``abstain=0``, votes ±1) and
    multiclass (``abstain=-1``, votes in {0..K-1}).

    Parameters
    ----------
    n_rows:
        Number of examples (rows are fixed; only columns grow).
    abstain:
        The abstain sentinel value (0 binary, -1 multiclass).
    capacity:
        Initial column capacity.
    """

    def __init__(self, n_rows: int, abstain: int = ABSTAIN, capacity: int = 16) -> None:
        if n_rows < 0:
            raise ValueError(f"n_rows must be >= 0, got {n_rows}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.n_rows = int(n_rows)
        self.abstain = int(abstain)
        self._buf = np.full((self.n_rows, capacity), self.abstain, dtype=np.int8)
        self.m = 0
        self._nonabstain = np.zeros(self.n_rows, dtype=np.int64)
        # Running per-vote-value tallies; values appear lazily as LFs vote.
        self._value_counts: dict[int, np.ndarray] = {}
        # Per-column sparse structure (row indices + vote values of the
        # non-abstain entries), appended in O(nnz_col) alongside the dense
        # buffer — the backing store of the :class:`ColumnStats` handle.
        self._col_rows: list[np.ndarray] = []
        self._col_values: list[np.ndarray] = []
        self._stats: ColumnStats | None = None

    # -- construction -------------------------------------------------- #
    @classmethod
    def from_dense(cls, L: np.ndarray, abstain: int = ABSTAIN) -> "VoteMatrix":
        """Build a :class:`VoteMatrix` from an existing ``(n, m)`` array."""
        L = np.asarray(L)
        if L.ndim != 2:
            raise ValueError(f"vote matrix must be 2-D, got shape {L.shape}")
        vm = cls(L.shape[0], abstain=abstain, capacity=max(1, L.shape[1]))
        for j in range(L.shape[1]):
            vm.append_column(L[:, j])
        return vm

    # -- views --------------------------------------------------------- #
    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.m)

    @property
    def values(self) -> np.ndarray:
        """The ``(n, m)`` int8 vote matrix — a *view*, never a copy."""
        return self._buf[:, : self.m]

    def __len__(self) -> int:
        return self.m

    # -- growth -------------------------------------------------------- #
    def _ensure_capacity(self) -> None:
        if self.m < self._buf.shape[1]:
            return
        grown = np.full(
            (self.n_rows, max(4, 2 * self._buf.shape[1])), self.abstain, dtype=np.int8
        )
        grown[:, : self.m] = self._buf[:, : self.m]
        self._buf = grown

    def stage_rows(self, rows: np.ndarray, value: int) -> np.ndarray:
        """Validate a prospective :meth:`append_rows`; mutate nothing.

        Returns the canonical (ascending, ``intp``) row array the append
        would store.  Callers that must apply several appends atomically —
        the engine's develop commit stages the train *and* valid columns
        before touching either matrix — stage everything fallible first,
        after which the actual appends cannot fail.
        """
        value = int(value)
        if value == self.abstain:
            raise ValueError(f"vote value {value} equals the abstain sentinel")
        rows = np.asarray(rows)
        if rows.ndim != 1:
            raise ValueError(f"rows must be 1-D, got shape {rows.shape}")
        if rows.size and not np.issubdtype(rows.dtype, np.integer):
            raise ValueError(f"rows must be integer indices, got dtype {rows.dtype}")
        rows = rows.astype(np.intp, copy=True)
        if rows.size:
            lo, hi = int(rows.min()), int(rows.max())
            if lo < 0 or hi >= self.n_rows:
                raise ValueError(
                    f"row indices must lie in [0, {self.n_rows}), got range [{lo}, {hi}]"
                )
            unique_rows = np.unique(rows)  # sorted as a side effect
            if unique_rows.size != rows.size:
                # Duplicates would write the dense vote once but count it
                # twice in every running tally and in the ColumnStats fire
                # structure — a silent dense/sparse divergence.
                raise ValueError("row indices must be unique")
            # Store ascending so the ColumnStats CSC assemblies are
            # canonical and structure-identical to a from-dense scan
            # regardless of caller ordering (dense writes and tallies are
            # order-independent).
            rows = unique_rows
        return rows

    def append_rows(self, rows: np.ndarray, value: int) -> None:
        """Append a column voting ``value`` on ``rows``, abstain elsewhere.

        This is the sparse-native append: a primitive LF is one vote value
        on its covered rows, so only O(nnz_col) work is done (plus the
        running-stat updates).  ``rows`` must be in-range indices — negative
        or out-of-range values would silently wrap (corrupting votes and
        every running tally) or crash deep inside numpy, so they are
        rejected up front (see :meth:`stage_rows`); the validation happens
        entirely before the first mutation, so a rejected append leaves
        the matrix untouched.
        """
        self.append_staged(self.stage_rows(rows, value), value)

    def append_staged(self, rows: np.ndarray, value: int) -> None:
        """Apply a column append whose ``rows`` came from :meth:`stage_rows`.

        The mutation half of :meth:`append_rows`, with no re-validation:
        ``rows`` MUST be the canonical array a prior ``stage_rows(rows,
        value)`` call on this matrix returned (ascending, unique,
        in-range, ``intp``) — anything else corrupts the buffer and every
        running tally.  This is what lets the engine's develop commit
        stage both split columns first and then apply them infallibly
        (and only once): validate twice, pay once.
        """
        value = int(value)
        self._ensure_capacity()
        column = self._buf[:, self.m]
        column[rows] = value
        self.m += 1
        self._nonabstain[rows] += 1
        counts = self._value_counts.get(value)
        if counts is None:
            counts = self._value_counts.setdefault(value, np.zeros(self.n_rows, dtype=np.int64))
        counts[rows] += 1
        self._col_rows.append(rows)
        self._col_values.append(np.full(rows.size, value, dtype=np.int8))

    def append_sparse(self, rows: np.ndarray, values: np.ndarray) -> None:
        """Append one column from its sparse ``(rows, values)`` structure.

        The general-alphabet sibling of :meth:`append_rows` (which votes a
        single value): ``values[k]`` is the vote at ``rows[k]``, everything
        else abstains.  O(nnz_col), and the stored per-column structure is
        identical to what :meth:`append_column` would have derived from the
        equivalent dense column — this is the restore path of
        checkpointed vote matrices (see :meth:`state_arrays`).
        """
        rows = np.asarray(rows)
        values = np.asarray(values)
        if rows.ndim != 1 or values.ndim != 1:
            raise ValueError(
                f"rows and values must be 1-D, got shapes {rows.shape}, {values.shape}"
            )
        if rows.shape != values.shape:
            raise ValueError(
                f"rows and values must have the same length, got {rows.size} rows "
                f"for {values.size} values"
            )
        if rows.size and not np.issubdtype(rows.dtype, np.integer):
            raise ValueError(f"rows must be integer indices, got dtype {rows.dtype}")
        if np.any(values == self.abstain):
            raise ValueError(
                f"sparse column values must not contain the abstain sentinel "
                f"({self.abstain})"
            )
        rows = rows.astype(np.intp, copy=True)
        values = values.astype(np.int8, copy=True)
        if rows.size:
            lo, hi = int(rows.min()), int(rows.max())
            if lo < 0 or hi >= self.n_rows:
                raise ValueError(
                    f"row indices must lie in [0, {self.n_rows}), got range [{lo}, {hi}]"
                )
            order = np.argsort(rows, kind="stable")
            rows = rows[order]
            values = values[order]
            if np.any(np.diff(rows) == 0):
                raise ValueError("row indices must be unique")
        self._ensure_capacity()
        column = self._buf[:, self.m]
        column[rows] = values
        self.m += 1
        self._nonabstain[rows] += 1
        for value in np.unique(values):
            value = int(value)
            counts = self._value_counts.get(value)
            if counts is None:
                counts = self._value_counts.setdefault(
                    value, np.zeros(self.n_rows, dtype=np.int64)
                )
            counts[rows[values == value]] += 1
        self._col_rows.append(rows)
        self._col_values.append(values)

    def append_column(self, votes: np.ndarray) -> None:
        """Append one dense ``(n,)`` vote column (may contain several values)."""
        votes = np.asarray(votes)
        if votes.shape != (self.n_rows,):
            raise ValueError(f"column must have shape ({self.n_rows},), got {votes.shape}")
        self._ensure_capacity()
        self._buf[:, self.m] = votes.astype(np.int8)
        self.m += 1
        fired = votes != self.abstain
        self._nonabstain[fired] += 1
        for value in np.unique(votes[fired]):
            value = int(value)
            counts = self._value_counts.get(value)
            if counts is None:
                counts = self._value_counts.setdefault(
                    value, np.zeros(self.n_rows, dtype=np.int64)
                )
            counts[votes == value] += 1
        fired_rows = np.flatnonzero(fired).astype(np.intp)
        self._col_rows.append(fired_rows)
        self._col_values.append(votes[fired_rows].astype(np.int8))

    # -- durable state -------------------------------------------------- #
    def state_arrays(self) -> dict[str, np.ndarray]:
        """The matrix's sparse column structure as three flat arrays.

        ``indptr`` (``(m+1,)`` int64 column offsets), ``rows`` (concatenated
        non-abstain row indices) and ``values`` (the votes at those rows) —
        the CSC-style serialization a checkpoint stores.  Round-tripping
        through :meth:`from_state_arrays` reproduces the dense buffer, the
        running tallies, *and* the per-column :class:`ColumnStats` structure
        bit-for-bit.
        """
        nnz = np.fromiter((r.size for r in self._col_rows), dtype=np.int64, count=self.m)
        indptr = np.zeros(self.m + 1, dtype=np.int64)
        np.cumsum(nnz, out=indptr[1:])
        rows = (
            np.concatenate(self._col_rows) if self.m else np.zeros(0, dtype=np.intp)
        ).astype(np.int64, copy=False)
        values = (
            np.concatenate(self._col_values) if self.m else np.zeros(0, dtype=np.int8)
        )
        return {"indptr": indptr, "rows": rows, "values": values}

    @classmethod
    def from_state_arrays(
        cls, n_rows: int, abstain: int, state: dict[str, np.ndarray]
    ) -> "VoteMatrix":
        """Rebuild a matrix from :meth:`state_arrays` output (fail-closed)."""
        try:
            indptr = np.asarray(state["indptr"], dtype=np.int64)
            rows = np.asarray(state["rows"])
            values = np.asarray(state["values"])
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed vote-matrix state: {exc}") from exc
        if indptr.ndim != 1 or indptr.size < 1:
            raise ValueError(f"indptr must be a non-empty 1-D array, got {indptr.shape}")
        if int(indptr[0]) != 0 or np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must start at 0 and be non-decreasing")
        if int(indptr[-1]) != rows.size or rows.size != values.size:
            raise ValueError(
                f"indptr describes {int(indptr[-1])} entries but got "
                f"{rows.size} rows / {values.size} values"
            )
        m = indptr.size - 1
        vm = cls(n_rows, abstain=abstain, capacity=max(1, m))
        for j in range(m):
            sl = slice(int(indptr[j]), int(indptr[j + 1]))
            vm.append_sparse(rows[sl], values[sl])
        return vm

    # -- sufficient statistics ----------------------------------------- #
    @property
    def stats(self) -> "ColumnStats":
        """The matrix's incremental sufficient-statistics handle.

        One handle per matrix, created lazily and kept keyed to the buffer:
        it reads the per-column sparse structure and the running tallies
        live, so it is always current after appends.  Label models accept it
        (``fit``/``fit_warm``/``predict_proba`` ``stats=`` kwarg) to skip
        re-validating/re-scanning the dense matrix and to run their EM
        sufficient statistics in O(nnz) instead of O(n·m).
        """
        if self._stats is None:
            self._stats = ColumnStats(self)
        return self._stats

    # -- running diagnostics ------------------------------------------- #
    def coverage_mask(self) -> np.ndarray:
        """Boolean ``(n,)`` mask of examples with ≥1 non-abstain vote — O(n)."""
        return self._nonabstain > 0

    def coverage(self) -> float:
        """Fraction of examples covered by at least one LF."""
        if self.m == 0:
            return 0.0
        return float(self.coverage_mask().mean())

    def vote_counts(self, value: int) -> np.ndarray:
        """Per-example count of votes equal to ``value``, shape ``(n,)``."""
        counts = self._value_counts.get(int(value))
        if counts is None:
            return np.zeros(self.n_rows, dtype=np.int64)
        return counts.copy()

    def abstain_counts(self) -> np.ndarray:
        """Per-example number of abstaining LFs."""
        return self.m - self._nonabstain

    def conflict_counts(self) -> np.ndarray:
        """Per-example number of conflicting vote *pairs* (running, O(n·V)).

        With per-value counts ``c_v`` on an example, the number of
        unordered pairs of votes naming different values is
        ``(T² - Σ c_v²) / 2`` with ``T = Σ c_v`` — the multiclass
        generalization of the binary ``p · q``.
        """
        total = self._nonabstain.astype(np.int64)
        same = np.zeros(self.n_rows, dtype=np.int64)
        for counts in self._value_counts.values():
            same += counts * counts
        return (total * total - same) // 2


class ColumnStats:
    """Sparse per-column sufficient statistics keyed to a :class:`VoteMatrix`.

    The EM label models repeatedly need, per iteration, quantities of the
    form "sum of a posterior over the rows where column ``j`` voted value
    ``v``" — computing them from the dense matrix re-scans ``(L != 0)``
    every time, O(n·m) per EM step.  This handle exposes the vote matrix's
    per-column fire structure (appended in O(nnz_col) as columns arrive)
    as cached CSC matrices, so those sums become O(nnz) sparse mat-vecs
    reused across all EM/SGD iterations of a fit *and* across the label
    fit, the posterior prediction, and the selection-view fit of one
    engine refit.

    The handle reads the owning matrix live: after a column append it is
    automatically current (cached CSC assemblies are invalidated by the
    column-count key).  ``matches(L)`` ties it to a concrete dense view so
    a model can fail loudly rather than fit against a stale handle.
    """

    def __init__(self, matrix: VoteMatrix) -> None:
        self._vm = matrix
        self._csc_cache: dict[object, tuple[int, sp.csc_matrix]] = {}
        self._nnz_cache: tuple[int, np.ndarray] | None = None
        self._count_cache: dict[int, tuple[int, np.ndarray]] = {}
        self._entries_cache: (
            tuple[int, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] | None
        ) = None

    # -- identity ------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        return self._vm.n_rows

    @property
    def m(self) -> int:
        return self._vm.m

    @property
    def abstain(self) -> int:
        return self._vm.abstain

    def matches(self, L: np.ndarray) -> bool:
        """Whether ``L`` is the live dense view of this handle's matrix."""
        return (
            isinstance(L, np.ndarray)
            and L.shape == (self._vm.n_rows, self._vm.m)
            and np.shares_memory(L, self._vm._buf)
        )

    # -- per-column structure ------------------------------------------ #
    def rows(self, j: int) -> np.ndarray:
        """Row indices of column ``j``'s non-abstain votes (ascending)."""
        return self._vm._col_rows[j]

    def values(self, j: int) -> np.ndarray:
        """Vote values at :meth:`rows`, int8, same length."""
        return self._vm._col_values[j]

    def col_nnz(self) -> np.ndarray:
        """Per-column non-abstain vote counts, shape ``(m,)``, int64."""
        if self._nnz_cache is None or self._nnz_cache[0] != self.m:
            nnz = np.fromiter(
                (r.size for r in self._vm._col_rows), dtype=np.int64, count=self.m
            )
            self._nnz_cache = (self.m, nnz)
        return self._nnz_cache[1]

    def value_col_counts(self, value: int) -> np.ndarray:
        """Per-column count of votes equal to ``value``, shape ``(m,)``."""
        value = int(value)
        cached = self._count_cache.get(value)
        if cached is None or cached[0] != self.m:
            counts = np.fromiter(
                ((v == value).sum() for v in self._vm._col_values),
                dtype=np.int64,
                count=self.m,
            )
            self._count_cache[value] = (self.m, counts)
            return counts
        return cached[1]

    # -- row-wise running tallies (exact integer reads) ---------------- #
    def coverage_mask(self) -> np.ndarray:
        return self._vm.coverage_mask()

    def row_value_counts(self, value: int) -> np.ndarray:
        """Per-row count of votes equal to ``value`` (the running tally)."""
        return self._vm.vote_counts(value)

    # -- CSC assemblies (cached per column count) ---------------------- #
    def _assemble(self, key: object, data_fn) -> sp.csc_matrix:
        cached = self._csc_cache.get(key)
        if cached is not None and cached[0] == self.m:
            return cached[1]
        vm = self._vm
        nnz = self.col_nnz()
        indptr = np.zeros(self.m + 1, dtype=np.int64)
        np.cumsum(nnz, out=indptr[1:])
        indices = (
            np.concatenate(vm._col_rows) if self.m else np.zeros(0, dtype=np.intp)
        ).astype(np.int32, copy=False)
        data = data_fn(vm)
        mat = sp.csc_matrix(
            (data, indices, indptr), shape=(self.n_rows, self.m), copy=False
        )
        self._csc_cache[key] = (self.m, mat)
        return mat

    def fires_csc(self) -> sp.csc_matrix:
        """``(n, m)`` CSC fire-indicator matrix (data all 1.0)."""
        return self._assemble(
            "fires", lambda vm: np.ones(int(self.col_nnz().sum()), dtype=float)
        )

    def signed_csc(self) -> sp.csc_matrix:
        """``(n, m)`` CSC of the vote values as floats (binary: ±1)."""
        return self._assemble(
            "signed",
            lambda vm: (
                np.concatenate(vm._col_values).astype(float)
                if self.m
                else np.zeros(0)
            ),
        )

    def value_csc(self, value: int) -> sp.csc_matrix:
        """``(n, m)`` CSC indicator of votes equal to ``value``."""
        value = int(value)
        cached = self._csc_cache.get(("value", value))
        if cached is not None and cached[0] == self.m:
            return cached[1]
        vm = self._vm
        rows, nnz = [], np.zeros(self.m, dtype=np.int64)
        for j in range(self.m):
            hit = vm._col_rows[j][vm._col_values[j] == value]
            rows.append(hit)
            nnz[j] = hit.size
        indptr = np.zeros(self.m + 1, dtype=np.int64)
        np.cumsum(nnz, out=indptr[1:])
        indices = (
            np.concatenate(rows) if self.m else np.zeros(0, dtype=np.intp)
        ).astype(np.int32, copy=False)
        mat = sp.csc_matrix(
            (np.ones(int(nnz.sum()), dtype=float), indices, indptr),
            shape=(self.n_rows, self.m),
            copy=False,
        )
        self._csc_cache[("value", value)] = (self.m, mat)
        return mat

    # -- flat entry arrays (the table-kernel gather layout) ------------- #
    def entries(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Column-major flat arrays of the non-abstain entries.

        Returns ``(indptr, rows, cols, values)``: ``indptr`` is the
        ``(m+1,)`` int64 per-column offset vector, and ``rows``/``cols``/
        ``values`` are the ``(nnz,)`` row index, column index, and int8
        vote value of every entry, concatenated column by column with rows
        ascending within each column — the canonical structure both the
        live appends and a :func:`column_stats_from_dense` scan produce,
        so kernels gathering from these arrays are bit-identical whichever
        way the handle was obtained.

        This is the layout of the table-driven E-step kernels: a per-
        iteration ``(m, values, classes)`` log-likelihood lookup table is
        gathered through ``cols``/``values`` and segment-summed into rows
        with ``np.bincount`` (a deterministic sequential C loop).  A warm
        fit over the first ``m' < m`` columns takes the ``indptr[m']``
        prefix of each flat array — column-major order makes the prefix
        exactly the old columns.

        Cached per column count and shared across all EM iterations of a
        fit (and across fits between appends).
        """
        if self._entries_cache is None or self._entries_cache[0] != self.m:
            vm = self._vm
            nnz = self.col_nnz()
            indptr = np.zeros(self.m + 1, dtype=np.int64)
            np.cumsum(nnz, out=indptr[1:])
            rows = (
                np.concatenate(vm._col_rows) if self.m else np.zeros(0, dtype=np.intp)
            ).astype(np.intp, copy=False)
            cols = np.repeat(np.arange(self.m, dtype=np.intp), nnz)
            values = (
                np.concatenate(vm._col_values) if self.m else np.zeros(0, dtype=np.int8)
            )
            self._entries_cache = (self.m, (indptr, rows, cols, values))
        return self._entries_cache[1]


def validated_or_stats(L: np.ndarray, stats: "ColumnStats | None", validator):
    """Validate ``L`` with ``validator``, or accept it under a matching handle.

    The shared guard of every stats-aware label model: a
    :class:`VoteMatrix` validates each vote on append, so its live view
    needs no re-scan; a handle that does not describe the matrix it is
    paired with is a caller bug and fails loudly rather than silently
    fitting stale statistics.
    """
    if stats is None:
        return validator(L)
    if not stats.matches(L):
        raise ValueError(
            "stats handle does not describe the given label matrix "
            f"(handle shape {(stats.n_rows, stats.m)}, L shape "
            f"{np.asarray(L).shape})"
        )
    return L


def column_stats_from_dense(L: np.ndarray, abstain: int = ABSTAIN) -> ColumnStats:
    """A detached :class:`ColumnStats` built by scanning a dense matrix once.

    The fallback for warm fits reached without an engine-threaded handle
    (hand-built matrices, contextualizer-refined votes): one O(n·m) scan,
    after which all EM iterations run on the O(nnz) path.  The structure
    (ascending row order per column) is identical to what the live
    :class:`VoteMatrix` maintains, so fits are bit-identical either way.
    """
    return VoteMatrix.from_dense(L, abstain=abstain).stats


def apply_lfs(lfs, B: sp.csr_matrix) -> np.ndarray:
    """Apply primitive-based LFs to a primitive-incidence matrix.

    Parameters
    ----------
    lfs:
        Iterable of objects with ``primitive_id`` (column of ``B``) and
        ``label`` (±1) attributes — see
        :class:`repro.core.lf.PrimitiveLF`.
    B:
        Binary ``(n, |Z|)`` incidence matrix.

    Returns
    -------
    ``(n, m)`` int8 array with entries in {-1, 0, +1}.
    """
    lfs = list(lfs)
    n = B.shape[0]
    L = np.zeros((n, len(lfs)), dtype=np.int8)
    Bc = B.tocsc() if sp.issparse(B) else sp.csc_matrix(B)
    for j, lf in enumerate(lfs):
        L[column_nonzero_rows(Bc, lf.primitive_id), j] = lf.label
    return L


def validate_label_matrix(L: np.ndarray) -> np.ndarray:
    """Check that ``L`` is 2-D with entries in {-1, 0, +1}; return as int8."""
    arr = np.asarray(L)
    if arr.ndim != 2:
        raise ValueError(f"label matrix must be 2-D, got shape {arr.shape}")
    bad = set(np.unique(arr)) - {-1, 0, 1}
    if bad:
        raise ValueError(f"label matrix entries must be in {{-1,0,+1}}, found {sorted(bad)}")
    return arr.astype(np.int8)


def coverage_mask(L: np.ndarray) -> np.ndarray:
    """Boolean ``(n,)`` mask of examples with at least one non-abstain vote."""
    return (np.asarray(L) != ABSTAIN).any(axis=1)


def coverage(L: np.ndarray) -> float:
    """Fraction of examples covered by at least one LF."""
    L = np.asarray(L)
    if L.size == 0:
        return 0.0
    return float(coverage_mask(L).mean())


def lf_coverages(L: np.ndarray) -> np.ndarray:
    """Per-LF coverage fractions, shape ``(m,)``."""
    L = np.asarray(L)
    if L.shape[0] == 0:
        return np.zeros(L.shape[1])
    return (L != ABSTAIN).mean(axis=0)


def lf_accuracies(L: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Per-LF empirical accuracy on covered examples (NaN if uncovered)."""
    L = np.asarray(L)
    y = np.asarray(y)
    votes = L != ABSTAIN
    correct = (L == y[:, None]) & votes
    n_votes = votes.sum(axis=0).astype(float)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(n_votes > 0, correct.sum(axis=0) / n_votes, np.nan)


def conflict_counts(L: np.ndarray) -> np.ndarray:
    """Per-example number of conflicting vote *pairs*.

    An example with ``p`` positive and ``q`` negative votes contributes
    ``p * q`` conflicts; this is the quantity the Disagree selector
    maximizes.
    """
    L = np.asarray(L)
    pos = (L == 1).sum(axis=1)
    neg = (L == -1).sum(axis=1)
    return pos * neg


def abstain_counts(L: np.ndarray) -> np.ndarray:
    """Per-example number of abstaining LFs (the Abstain selector's score)."""
    L = np.asarray(L)
    return (L == ABSTAIN).sum(axis=1)


def overlap_fraction(L: np.ndarray) -> float:
    """Fraction of examples covered by two or more LFs."""
    L = np.asarray(L)
    if L.size == 0:
        return 0.0
    return float(((L != ABSTAIN).sum(axis=1) >= 2).mean())


def conflict_fraction(L: np.ndarray) -> float:
    """Fraction of examples with at least one conflicting vote pair."""
    L = np.asarray(L)
    if L.size == 0:
        return 0.0
    return float((conflict_counts(L) > 0).mean())


def vote_tallies(L: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return per-example (positive, negative) vote counts."""
    L = np.asarray(L)
    return (L == 1).sum(axis=1), (L == -1).sum(axis=1)


def summary(L: np.ndarray, y: np.ndarray | None = None) -> dict[str, float]:
    """Aggregate diagnostics dict (coverage/overlap/conflict [+ accuracy])."""
    stats = {
        "n_examples": float(np.asarray(L).shape[0]),
        "n_lfs": float(np.asarray(L).shape[1]),
        "coverage": coverage(L),
        "overlap": overlap_fraction(L),
        "conflict": conflict_fraction(L),
    }
    if y is not None and np.asarray(L).shape[1] > 0:
        accs = lf_accuracies(L, y)
        if np.any(~np.isnan(accs)):
            stats["mean_lf_accuracy"] = float(np.nanmean(accs))
    return stats
