"""Label-matrix construction and diagnostics.

The label matrix ``L`` is the central artifact of data programming
(paper Sec. 2): ``L[i, j] = λ_j(x_i) ∈ {-1, 0, +1}`` with 0 meaning
*abstain*.  This module builds ``L`` from primitive-based LFs and computes
the standard weak-supervision diagnostics (coverage, overlap, conflict) that
both the literature and our selectors/tests rely on.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

ABSTAIN = 0


def apply_lfs(lfs, B: sp.csr_matrix) -> np.ndarray:
    """Apply primitive-based LFs to a primitive-incidence matrix.

    Parameters
    ----------
    lfs:
        Iterable of objects with ``primitive_id`` (column of ``B``) and
        ``label`` (±1) attributes — see
        :class:`repro.core.lf.PrimitiveLF`.
    B:
        Binary ``(n, |Z|)`` incidence matrix.

    Returns
    -------
    ``(n, m)`` int8 array with entries in {-1, 0, +1}.
    """
    lfs = list(lfs)
    n = B.shape[0]
    L = np.zeros((n, len(lfs)), dtype=np.int8)
    for j, lf in enumerate(lfs):
        col = np.asarray(B[:, lf.primitive_id].todense()).ravel()
        L[:, j] = np.where(col > 0, lf.label, ABSTAIN).astype(np.int8)
    return L


def validate_label_matrix(L: np.ndarray) -> np.ndarray:
    """Check that ``L`` is 2-D with entries in {-1, 0, +1}; return as int8."""
    arr = np.asarray(L)
    if arr.ndim != 2:
        raise ValueError(f"label matrix must be 2-D, got shape {arr.shape}")
    bad = set(np.unique(arr)) - {-1, 0, 1}
    if bad:
        raise ValueError(f"label matrix entries must be in {{-1,0,+1}}, found {sorted(bad)}")
    return arr.astype(np.int8)


def coverage_mask(L: np.ndarray) -> np.ndarray:
    """Boolean ``(n,)`` mask of examples with at least one non-abstain vote."""
    return (np.asarray(L) != ABSTAIN).any(axis=1)


def coverage(L: np.ndarray) -> float:
    """Fraction of examples covered by at least one LF."""
    L = np.asarray(L)
    if L.size == 0:
        return 0.0
    return float(coverage_mask(L).mean())


def lf_coverages(L: np.ndarray) -> np.ndarray:
    """Per-LF coverage fractions, shape ``(m,)``."""
    L = np.asarray(L)
    if L.shape[0] == 0:
        return np.zeros(L.shape[1])
    return (L != ABSTAIN).mean(axis=0)


def lf_accuracies(L: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Per-LF empirical accuracy on covered examples (NaN if uncovered)."""
    L = np.asarray(L)
    y = np.asarray(y)
    votes = L != ABSTAIN
    correct = (L == y[:, None]) & votes
    n_votes = votes.sum(axis=0).astype(float)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(n_votes > 0, correct.sum(axis=0) / n_votes, np.nan)


def conflict_counts(L: np.ndarray) -> np.ndarray:
    """Per-example number of conflicting vote *pairs*.

    An example with ``p`` positive and ``q`` negative votes contributes
    ``p * q`` conflicts; this is the quantity the Disagree selector
    maximizes.
    """
    L = np.asarray(L)
    pos = (L == 1).sum(axis=1)
    neg = (L == -1).sum(axis=1)
    return pos * neg


def abstain_counts(L: np.ndarray) -> np.ndarray:
    """Per-example number of abstaining LFs (the Abstain selector's score)."""
    L = np.asarray(L)
    return (L == ABSTAIN).sum(axis=1)


def overlap_fraction(L: np.ndarray) -> float:
    """Fraction of examples covered by two or more LFs."""
    L = np.asarray(L)
    if L.size == 0:
        return 0.0
    return float(((L != ABSTAIN).sum(axis=1) >= 2).mean())


def conflict_fraction(L: np.ndarray) -> float:
    """Fraction of examples with at least one conflicting vote pair."""
    L = np.asarray(L)
    if L.size == 0:
        return 0.0
    return float((conflict_counts(L) > 0).mean())


def vote_tallies(L: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return per-example (positive, negative) vote counts."""
    L = np.asarray(L)
    return (L == 1).sum(axis=1), (L == -1).sum(axis=1)


def summary(L: np.ndarray, y: np.ndarray | None = None) -> dict[str, float]:
    """Aggregate diagnostics dict (coverage/overlap/conflict [+ accuracy])."""
    stats = {
        "n_examples": float(np.asarray(L).shape[0]),
        "n_lfs": float(np.asarray(L).shape[1]),
        "coverage": coverage(L),
        "overlap": overlap_fraction(L),
        "conflict": conflict_fraction(L),
    }
    if y is not None and np.asarray(L).shape[1] > 0:
        accs = lf_accuracies(L, y)
        if np.any(~np.isnan(accs)):
            stats["mean_lf_accuracy"] = float(np.nanmean(accs))
    return stats
