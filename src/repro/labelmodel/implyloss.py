"""ImplyLoss-L: learning from rules generalizing labeled exemplars.

Reimplements the model of Awasthi et al. [3] — the paper's
"contextualized-learning-only" baseline — with a *linear* discriminative
part (the ``-L`` suffix, Sec. 5.2 footnote 2).  Each rule (LF) ``j`` comes
with the labeled exemplar it was created from; the model jointly trains

* a classification network ``P_θ(y | x) = σ(w·x + b)`` and
* a per-rule *rule network* ``g_φ(x, j) = σ(u_j·x + c_j)`` estimating the
  probability that rule ``j`` applies **correctly** on ``x``,

with three loss terms:

1. cross-entropy of ``P_θ`` on the labeled exemplars;
2. supervision for ``g``: each rule should fire correctly on its own
   exemplar, and incorrectly on other rules' exemplars it covers with the
   wrong label;
3. the **implication loss** on unlabeled covered pairs ``(i, j)``:
   ``-log(1 - g(x_i, j) · (1 - P_θ(y_j | x_i)))`` — "if the rule applies
   correctly, the classifier should predict the rule's label".

Optimization is full-batch Adam on manually-derived gradients (numpy only).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.labelmodel.matrix import validate_label_matrix
from repro.utils.rng import ensure_rng

_EPS = 1e-9


def _sigmoid(x):
    return 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))


class ImplyLossModel:
    """Joint rule/classification model trained with implication loss.

    Parameters
    ----------
    class_prior:
        ``P(y = +1)`` used only for the uncovered/no-rule fallback.
    gamma:
        Weight of the implication loss (their γ; 0.1 in the reference
        implementation's default range).
    l2:
        L2 regularization strength on both networks' weights.
    learning_rate / n_epochs:
        Adam step size and full-batch epoch count.
    seed:
        Controls weight initialization.

    Notes
    -----
    :meth:`fit` takes the *train* features ``X``, label matrix ``L``, and
    per-rule exemplar indices/labels (the LF lineage — this baseline also
    consumes development context, which is why the paper files it under
    "CL-only IDP").
    """

    def __init__(
        self,
        class_prior: float = 0.5,
        gamma: float = 0.1,
        l2: float = 1e-4,
        learning_rate: float = 0.1,
        n_epochs: int = 150,
        seed=None,
    ) -> None:
        if not 0.0 < class_prior < 1.0:
            raise ValueError(f"class_prior must be in (0, 1), got {class_prior}")
        if gamma < 0:
            raise ValueError(f"gamma must be >= 0, got {gamma}")
        if n_epochs < 1:
            raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
        self.class_prior = class_prior
        self.gamma = gamma
        self.l2 = l2
        self.learning_rate = learning_rate
        self.n_epochs = n_epochs
        self.seed = seed
        self.w_: np.ndarray | None = None
        self.b_: float = 0.0
        self.u_: np.ndarray | None = None
        self.c_: np.ndarray | None = None
        self.loss_history_: list[float] = []

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def fit(
        self,
        X,
        L: np.ndarray,
        exemplar_indices: np.ndarray,
        exemplar_labels: np.ndarray,
    ) -> "ImplyLossModel":
        """Train on features ``X``, votes ``L``, and rule exemplars.

        Parameters
        ----------
        X:
            ``(n, d)`` train features (dense or CSR).
        L:
            ``(n, m)`` label matrix from the rules.
        exemplar_indices:
            ``(m,)`` row index into ``X`` of each rule's development example.
        exemplar_labels:
            ``(m,)`` ±1 label of each exemplar (the rule's output label in
            the primitive-LF setting).
        """
        L = validate_label_matrix(L)
        X = sp.csr_matrix(X) if not sp.issparse(X) else X.tocsr()
        n, d = X.shape
        m = L.shape[1]
        if L.shape[0] != n:
            raise ValueError(f"X has {n} rows but L has {L.shape[0]}")
        exemplar_indices = np.asarray(exemplar_indices, dtype=int)
        exemplar_labels = np.asarray(exemplar_labels, dtype=int)
        if len(exemplar_indices) != m or len(exemplar_labels) != m:
            raise ValueError("need exactly one exemplar (index, label) per rule")
        rng = ensure_rng(self.seed)

        rule_labels = self._rule_labels(L, exemplar_labels)
        w = 0.01 * rng.standard_normal(d)
        b = 0.0
        u = 0.01 * rng.standard_normal((m, d)) if m else np.zeros((0, d))
        c = np.zeros(m)

        # Precompute structures reused every epoch.
        exemplar_X = X[exemplar_indices] if m else sp.csr_matrix((0, d))
        covered = L != 0
        unlabeled_mask = np.ones(n, dtype=bool)
        unlabeled_mask[exemplar_indices] = False
        impl_cov = covered & unlabeled_mask[:, None]  # implication applies off-exemplar
        cross = self._cross_exemplar_pairs(L, exemplar_indices, exemplar_labels, rule_labels)

        adam = _AdamState([w, np.array([b]), u, c])
        self.loss_history_ = []
        for _ in range(self.n_epochs):
            loss, grads = self._loss_and_grads(
                X, L, w, b, u, c,
                exemplar_X, exemplar_indices, exemplar_labels,
                rule_labels, impl_cov, cross,
            )
            self.loss_history_.append(loss)
            w, b_arr, u, c = adam.step(grads, self.learning_rate)
            b = float(b_arr[0])
        self.w_, self.b_, self.u_, self.c_ = w, b, u, c
        return self

    def predict_proba(self, X) -> np.ndarray:
        """``P(y = +1 | x)`` from the classification network."""
        if self.w_ is None:
            raise RuntimeError("ImplyLossModel.predict_proba called before fit")
        scores = np.asarray(X @ self.w_).ravel() + self.b_
        return _sigmoid(scores)

    def predict(self, X) -> np.ndarray:
        """Hard ±1 predictions."""
        return np.where(self.predict_proba(X) >= 0.5, 1, -1).astype(int)

    def rule_reliability(self, X) -> np.ndarray:
        """``g_φ(x, j)`` for every (example, rule) pair, shape ``(n, m)``."""
        if self.u_ is None:
            raise RuntimeError("ImplyLossModel.rule_reliability called before fit")
        return _sigmoid(np.asarray(X @ self.u_.T) + self.c_[None, :])

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _rule_labels(L: np.ndarray, exemplar_labels: np.ndarray) -> np.ndarray:
        """The single label each (uni-polar) rule outputs when it fires."""
        m = L.shape[1]
        labels = np.zeros(m, dtype=int)
        for j in range(m):
            fired = L[:, j][L[:, j] != 0]
            labels[j] = int(fired[0]) if fired.size else int(exemplar_labels[j])
        return labels

    @staticmethod
    def _cross_exemplar_pairs(L, exemplar_indices, exemplar_labels, rule_labels):
        """Pairs (exemplar row e_k, rule j) where j fires on e_k with a wrong label."""
        pairs_rows: list[int] = []
        pairs_rules: list[int] = []
        m = L.shape[1]
        for k in range(m):
            e_k = exemplar_indices[k]
            for j in range(m):
                if j == k or L[e_k, j] == 0:
                    continue
                if rule_labels[j] != exemplar_labels[k]:
                    pairs_rows.append(e_k)
                    pairs_rules.append(j)
        return np.asarray(pairs_rows, dtype=int), np.asarray(pairs_rules, dtype=int)

    def _loss_and_grads(
        self, X, L, w, b, u, c,
        exemplar_X, exemplar_indices, exemplar_labels,
        rule_labels, impl_cov, cross,
    ):
        n, d = X.shape
        m = L.shape[1]
        scores = np.asarray(X @ w).ravel() + b  # (n,)
        grad_s = np.zeros(n)
        grad_glogit = np.zeros((n, m))
        loss = 0.0

        # (1) exemplar cross-entropy for the classifier
        if m:
            s_e = scores[exemplar_indices]
            margins = exemplar_labels * s_e
            loss += float(np.sum(np.logaddexp(0.0, -margins)))
            np.add.at(grad_s, exemplar_indices, -exemplar_labels * _sigmoid(-margins))

        # (2) rule-network supervision
        g_logits = np.asarray(X @ u.T) + c[None, :] if m else np.zeros((n, 0))
        g = _sigmoid(g_logits)
        if m:
            own = (exemplar_indices, np.arange(m))
            g_own = np.clip(g[own], _EPS, 1 - _EPS)
            loss += float(-np.log(g_own).sum())
            grad_glogit[own] += g_own - 1.0  # d(-log σ)/dlogit = σ - 1
            rows, rules = cross
            if rows.size:
                g_cross = np.clip(g[rows, rules], _EPS, 1 - _EPS)
                loss += float(-np.log(1.0 - g_cross).sum())
                np.add.at(grad_glogit, (rows, rules), g_cross)

        # (3) implication loss on unlabeled covered pairs
        if m and impl_cov.any():
            p_rule = _sigmoid(rule_labels[None, :] * scores[:, None])  # P(y_j | x_i)
            denom = np.clip(1.0 - g * (1.0 - p_rule), _EPS, None)
            pair_loss = -np.log(denom)
            loss += self.gamma * float(pair_loss[impl_cov].sum())
            dL_dg = np.where(impl_cov, (1.0 - p_rule) / denom, 0.0)
            grad_glogit += self.gamma * dL_dg * g * (1.0 - g)
            dL_dp = np.where(impl_cov, -g / denom, 0.0)
            dp_ds = rule_labels[None, :] * p_rule * (1.0 - p_rule)
            grad_s += self.gamma * (dL_dp * dp_ds).sum(axis=1)

        # L2 regularization
        loss += 0.5 * self.l2 * (float(w @ w) + float((u * u).sum()))
        grad_w = np.asarray(X.T @ grad_s).ravel() + self.l2 * w
        grad_b = np.array([grad_s.sum()])
        grad_u = (grad_glogit.T @ X) + self.l2 * u if m else np.zeros_like(u)
        grad_u = np.asarray(grad_u)
        grad_c = grad_glogit.sum(axis=0)
        return loss, [grad_w, grad_b, grad_u, grad_c]


class _AdamState:
    """Minimal Adam optimizer over a list of numpy parameter arrays."""

    def __init__(self, params, beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8):
        self.params = [np.array(p, dtype=float) for p in params]
        self.m = [np.zeros_like(p) for p in self.params]
        self.v = [np.zeros_like(p) for p in self.params]
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self.t = 0

    def step(self, grads, lr: float):
        self.t += 1
        out = []
        for idx, (p, g) in enumerate(zip(self.params, grads)):
            g = np.asarray(g, dtype=float)
            self.m[idx] = self.beta1 * self.m[idx] + (1 - self.beta1) * g
            self.v[idx] = self.beta2 * self.v[idx] + (1 - self.beta2) * g**2
            m_hat = self.m[idx] / (1 - self.beta1**self.t)
            v_hat = self.v[idx] / (1 - self.beta2**self.t)
            p = p - lr * m_hat / (np.sqrt(v_hat) + self.eps)
            self.params[idx] = p
            out.append(p)
        return out
