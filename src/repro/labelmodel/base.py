"""Label-model interface.

A label model consumes the label matrix ``L`` and produces probabilistic
training labels ``P(y_i = +1 | L_i)`` (paper Sec. 2, stage 2).  All models
here are binary (Y = {-1, +1}) with abstains, matching the paper's scope.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.labelmodel.matrix import validate_label_matrix
from repro.utils.state import FittedStateMixin


class LabelModel(FittedStateMixin, ABC):
    """Abstract denoiser/aggregator of weak-supervision votes.

    Subclasses implement :meth:`fit` (estimate source parameters from ``L``)
    and :meth:`predict_proba` (posterior ``P(y=+1|L_i)`` per example).  The
    contextualized pipeline (paper Sec. 4.3) is deliberately *model-agnostic*:
    any subclass can be dropped into Nemo.

    All subclasses inherit declarative fitted-state capture
    (:class:`~repro.utils.state.FittedStateMixin`): the attributes listed
    in ``_FITTED_ATTRS`` are what a session checkpoint persists for the
    model (hyperparameters are reconstructed by the session's factory).

    Parameters
    ----------
    class_prior:
        ``P(y = +1)``.  Fixed (not learned) unless a subclass says
        otherwise, mirroring how class balance is supplied to MeTaL.
    """

    def __init__(self, class_prior: float = 0.5) -> None:
        if not 0.0 < class_prior < 1.0:
            raise ValueError(f"class_prior must be in (0, 1), got {class_prior}")
        self.class_prior = class_prior

    @abstractmethod
    def fit(self, L: np.ndarray) -> "LabelModel":
        """Estimate source parameters from the label matrix."""

    @abstractmethod
    def predict_proba(self, L: np.ndarray) -> np.ndarray:
        """Return ``(n,)`` posterior probabilities ``P(y=+1 | L_i)``.

        Uncovered examples receive the class prior.
        """

    # ------------------------------------------------------------------ #
    # shared conveniences
    # ------------------------------------------------------------------ #
    def fit_warm(
        self,
        L: np.ndarray,
        previous: "LabelModel | None" = None,
        max_iter: int | None = None,
    ) -> "LabelModel":
        """Fit, optionally warm-starting from a previously fitted model.

        ``previous`` is a model of the same class fitted on the first
        ``m_prev ≤ m`` columns of ``L`` (the incremental session grows the
        vote matrix one LF at a time); ``max_iter`` optionally caps the
        inner optimizer iterations for this call — from a warm seed a few
        steps absorb one new LF, and the engine's periodic cold refit
        bounds any accumulated drift.  The default implementation ignores
        both hints and performs a full fit; subclasses with iterative
        fitting override this to seed from the previous solution.
        """
        return self.fit(L)

    def fit_predict_proba(self, L: np.ndarray) -> np.ndarray:
        """``fit(L)`` then ``predict_proba(L)``."""
        return self.fit(L).predict_proba(L)

    def predict(self, L: np.ndarray) -> np.ndarray:
        """Hard ±1 labels from the posterior (prior-side ties)."""
        proba = self.predict_proba(L)
        return np.where(proba >= 0.5, 1, -1).astype(int)

    @staticmethod
    def _validated(L: np.ndarray) -> np.ndarray:
        return validate_label_matrix(L)


def posterior_entropy(proba: np.ndarray) -> np.ndarray:
    """Binary entropy (nats) of ``P(y=+1)`` — the ψ_uncertainty of Eq. 3.

    Uncovered examples, which get the prior, naturally score high when the
    prior is uninformative; fully-agreed examples score near zero.
    """
    p = np.clip(np.asarray(proba, dtype=float), 1e-12, 1 - 1e-12)
    return -(p * np.log(p) + (1 - p) * np.log(1 - p))
