"""Label models: denoising/aggregating weak-supervision votes.

The paper's pipeline is label-model agnostic (Sec. 4.3); this package ships
the MeTaL-style default plus majority vote, Dawid–Skene, the triplet method,
and the ImplyLoss-L joint baseline.
"""

from repro.labelmodel.base import LabelModel, posterior_entropy
from repro.labelmodel.dawid_skene import DawidSkene
from repro.labelmodel.implyloss import ImplyLossModel
from repro.labelmodel.majority import MajorityVote
from repro.labelmodel.matrix import (
    ABSTAIN,
    abstain_counts,
    apply_lfs,
    conflict_counts,
    conflict_fraction,
    coverage,
    coverage_mask,
    lf_accuracies,
    lf_coverages,
    overlap_fraction,
    summary,
    validate_label_matrix,
    vote_tallies,
)
from repro.labelmodel.metal import MetalLabelModel
from repro.labelmodel.triplet import TripletLabelModel

#: Registry of LabelModel factories (ImplyLoss has a different interface and
#: is intentionally excluded — it replaces label model *and* end model).
LABEL_MODELS = {
    "majority": MajorityVote,
    "metal": MetalLabelModel,
    "dawid-skene": DawidSkene,
    "triplet": TripletLabelModel,
}


def make_label_model(name: str, class_prior: float = 0.5, **kwargs) -> LabelModel:
    """Instantiate a registered label model by name."""
    try:
        cls = LABEL_MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown label model {name!r}; choose from {sorted(LABEL_MODELS)}"
        ) from None
    return cls(class_prior=class_prior, **kwargs)


__all__ = [
    "LabelModel",
    "posterior_entropy",
    "MajorityVote",
    "MetalLabelModel",
    "DawidSkene",
    "TripletLabelModel",
    "ImplyLossModel",
    "LABEL_MODELS",
    "make_label_model",
    "ABSTAIN",
    "apply_lfs",
    "validate_label_matrix",
    "coverage",
    "coverage_mask",
    "lf_coverages",
    "lf_accuracies",
    "conflict_counts",
    "abstain_counts",
    "overlap_fraction",
    "conflict_fraction",
    "vote_tallies",
    "summary",
]
