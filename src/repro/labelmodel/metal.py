"""MeTaL-style generative label model (the paper's default aggregator).

The paper adopts MeTaL [30] as its underlying label model.  For binary,
single-task weak supervision, MeTaL's model is a conditionally-independent
generative model over the *full* outcome space of each LF — crucially
including the abstain outcome:

    P(L_i, y) = π_y · Π_j  P(λ_j = L_ij | y),     L_ij ∈ {-1, 0, +1}

Each LF is parameterized by class-conditional fire propensities
``ρ_j(y) = P(λ_j ≠ 0 | y)`` and a symmetric accuracy-given-fire
``a_j = P(λ_j = y | λ_j ≠ 0, y)``.  Modelling the abstains is not a
nicety: the common uni-polar keyword LFs (paper Sec. 4) fire almost
exclusively on one class, and a model that ignores ``ρ`` (symmetric
accuracies only) has a *degenerate global optimum* in which one polarity
coalition is declared anti-perfect and every label collapses to a single
class.  The propensity terms penalize that mode because it cannot explain
why an LF's fire rate differs so strongly between the hypothesized classes.

Fitting is by EM (default) or Adam on the marginal likelihood via Fisher's
identity (``method="sgd"``, mirroring MeTaL's gradient training).  The
posterior weights each vote by its estimated log-odds accuracy — "the more
accurate an LF is, the larger the weight its vote receives" (Sec. 4.3) —
plus the fire/abstain evidence.
"""

from __future__ import annotations

import numpy as np

from repro.labelmodel.base import LabelModel
from repro.labelmodel.matrix import (
    COLD_PATHS,
    ColumnStats,
    column_stats_from_dense,
    resolve_cold_path,
    validated_or_stats,
)

_ACC_FLOOR = 0.05
_ACC_CEIL = 0.95
_RHO_FLOOR = 1e-4
_RHO_CEIL = 1.0 - 1e-4
_PRIOR_FLOOR = 0.02


def _sigmoid(x):
    return 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))


def _logit(p):
    p = np.clip(np.asarray(p, dtype=float), 1e-9, 1 - 1e-9)
    return np.log(p / (1 - p))


class MetalLabelModel(LabelModel):
    """EM/SGD-trained abstain-aware generative model.

    Parameters
    ----------
    class_prior:
        Initial ``P(y = +1)``; refined from the majority-vote posterior
        when ``learn_prior=True`` (default) — a fixed misspecified prior
        acts as persistent one-sided evidence during fitting.
    n_iter:
        Maximum EM iterations (or Adam epochs for ``method="sgd"``).
    tol:
        Convergence threshold on the max parameter change.
    init_accuracy:
        Initial accuracy-given-fire; 0.7 encodes the standard
        better-than-random prior belief about user-written LFs.
    anchor:
        Strength (in pseudo-votes) of the Beta anchor pulling each
        accuracy toward ``init_accuracy`` — Snorkel-style regularization
        that keeps thinly-covered LFs identifiable.
    method:
        ``"em"`` (closed-form M-steps, default) or ``"sgd"``.
    learn_prior:
        Whether to re-estimate the class balance during fitting (default).
        Supplied priors are estimates (the paper's pipeline estimates class
        balance from the validation split) and a *misspecified* fixed prior
        acts as persistent one-sided evidence.  Note the interaction with
        selection: under a one-sided LF set a learned prior drifts toward
        that side — the SEU selector's warm-up phase exists precisely to
        keep the LF set two-sided from the start.
    cold_path:
        Which arithmetic a cold :meth:`fit` (and an unfitted
        :meth:`predict_proba`'s posterior) runs on.  ``"auto"`` (default)
        picks the O(nnz) sufficient-statistics kernels at
        ``n >= COLD_STATS_MIN_ROWS`` and the legacy dense kernels below;
        ``"stats"`` / ``"dense"`` force one side.  ``"dense"`` is the
        defeat switch: it preserves the pre-sparse arithmetic bit-for-bit
        and is the parity oracle of the randomized tests.  Warm fits
        always run on the stats path (unchanged).
    abstain_evidence:
        Whether :meth:`predict_proba` includes the *abstain* propensity
        evidence.  Off by default, recovering MeTaL's posterior semantics:
        abstains are non-evidence, so uncovered examples score exactly the
        class prior — maximal uncertainty, the exploration signal Nemo's
        selectors use.  The term also overcounts badly when correlated LFs
        abstain together.  The *fire* evidence (propensity
        log-ratio of the LFs that actually voted) is always included — it
        is what lets a single minority-class vote overcome a skewed prior.
        Fitting always uses the full propensity-aware model (that is what
        keeps EM identifiable for uni-polar LFs).

    Attributes
    ----------
    accuracies_:
        ``(m,)`` fitted accuracies-given-fire.
    propensities_:
        ``(m, 2)`` fire rates per class, columns ordered ``(y=-1, y=+1)``.
    prior_:
        Final ``P(y = +1)``.
    converged_:
        Whether fitting reached ``tol`` before the iteration cap.
    em_iterations_:
        EM iterations (or Adam epochs) the last fit actually ran — the
        obs layer attributes label-model cost with it.
    """

    _FITTED_ATTRS = (
        "accuracies_",
        "propensities_",
        "prior_",
        "converged_",
        "em_iterations_",
    )

    def __init__(
        self,
        class_prior: float = 0.5,
        n_iter: int = 50,
        tol: float = 1e-4,
        init_accuracy: float = 0.7,
        anchor: float = 2.0,
        method: str = "em",
        learning_rate: float = 0.1,
        learn_prior: bool = True,
        abstain_evidence: bool = False,
        cold_path: str = "auto",
    ) -> None:
        super().__init__(class_prior)
        if n_iter < 1:
            raise ValueError(f"n_iter must be >= 1, got {n_iter}")
        if not _ACC_FLOOR < init_accuracy < _ACC_CEIL:
            raise ValueError(
                f"init_accuracy must be in ({_ACC_FLOOR}, {_ACC_CEIL}), got {init_accuracy}"
            )
        if anchor < 0:
            raise ValueError(f"anchor must be >= 0, got {anchor}")
        if method not in ("em", "sgd"):
            raise ValueError(f"method must be 'em' or 'sgd', got {method!r}")
        if cold_path not in COLD_PATHS:
            raise ValueError(f"cold_path must be one of {COLD_PATHS}, got {cold_path!r}")
        self.n_iter = n_iter
        self.tol = tol
        self.init_accuracy = init_accuracy
        self.anchor = anchor
        self.method = method
        self.learning_rate = learning_rate
        self.learn_prior = learn_prior
        self.abstain_evidence = abstain_evidence
        self.cold_path = cold_path
        self.accuracies_: np.ndarray | None = None
        self.propensities_: np.ndarray | None = None
        self.prior_: float = class_prior
        self.converged_: bool = False
        self.em_iterations_: int = 0

    # ------------------------------------------------------------------ #
    # fitting
    # ------------------------------------------------------------------ #
    def fit(self, L: np.ndarray, stats: ColumnStats | None = None) -> "MetalLabelModel":
        """Cold fit seeded from the majority-vote posterior.

        ``stats`` (an engine-threaded :class:`ColumnStats` handle matching
        ``L``) lets the fit skip the O(n·m) re-validation/densification
        scan — the vote matrix validated every entry on append.  Under the
        resolved ``cold_path`` the full EM (majority seeding, prior
        estimate, M-steps, convergence check) runs either on the O(nnz)
        sufficient-statistics kernels or on the legacy dense arithmetic
        (``cold_path="dense"``, bit-for-bit the historical from-scratch
        semantics).  On the stats path a missing handle is built here by
        one dense scan; fits are bit-identical whichever way the handle
        was obtained (the structure is canonical either way).
        """
        L = self._validated_or_stats(L, stats)
        self.prior_ = self.class_prior
        self.em_iterations_ = 0
        if L.shape[1] == 0 or L.shape[0] == 0:
            self.accuracies_ = np.zeros(0)
            self.propensities_ = np.zeros((0, 2))
            self.converged_ = True
            return self
        if resolve_cold_path(self.cold_path, L.shape[0]) == "stats":
            if stats is None:
                stats = column_stats_from_dense(L, abstain=0)
            self._fit_from_posterior(
                L, self._majority_posterior(L, stats), stats=stats
            )
        else:
            self._fit_from_posterior(L, self._majority_posterior(L))
        return self

    def fit_warm(
        self,
        L: np.ndarray,
        previous: "MetalLabelModel | None" = None,
        max_iter: int | None = None,
        stats: ColumnStats | None = None,
    ) -> "MetalLabelModel":
        """Fit seeded from a previous fit's posterior (incremental refits).

        The interactive loop grows ``L`` by one column per iteration, so the
        converged posterior of the previous refit is already near the new
        optimum.  Instead of re-seeding EM from the majority vote, compute
        the posterior of the previous parameters over the columns they were
        fitted on and continue EM from there — the same objective, anchors,
        and convergence tolerance as a cold :meth:`fit`.  ``max_iter``
        additionally caps the EM iterations of this call: each EM step
        monotonically improves the likelihood, so a short warm
        continuation absorbs the one new LF while the engine's periodic
        cold refit bounds accumulated drift.  Falls back to :meth:`fit`
        whenever the previous model is unusable (unfitted, different
        class, or the vote matrix shrank).

        Warm fits always run on the incremental sufficient-statistics path:
        every EM/SGD iteration reads the per-column fire structure (the
        ``stats`` handle threaded from the engine, or one built here by a
        single scan of ``L``) instead of re-deriving ``(L != 0)`` masks
        from the dense matrix — O(nnz) per iteration instead of O(n·m),
        and bit-identical whichever way the handle was obtained.
        """
        usable = (
            type(previous) is type(self)
            and getattr(previous, "accuracies_", None) is not None
            and previous.accuracies_.size > 0
        )
        if not usable:
            return self.fit(L, stats=stats)
        L = self._validated_or_stats(L, stats)
        m_prev = previous.accuracies_.shape[0]
        if L.shape[0] == 0 or L.shape[1] == 0 or L.shape[1] < m_prev:
            return self.fit(L, stats=stats)
        if stats is None:
            stats = column_stats_from_dense(L, abstain=0)
        self.prior_ = self.class_prior
        # The class balance must be estimated exactly as a cold fit does —
        # from the *smoothed majority* posterior, not the previous E-step
        # posterior.  `_fit_em` never revises `prior_`, so seeding it from
        # the (extreme) converged posterior creates a positive feedback
        # loop across refits: a one-sided LF set drags the prior toward
        # its side, which sharpens the next posterior, which drags it
        # further, until every label collapses to one class.
        q_seed = self._posterior_stats(
            stats, previous.accuracies_, previous.propensities_, with_abstain=True
        )
        full_n_iter = self.n_iter
        if max_iter is not None:
            self.n_iter = max(1, min(self.n_iter, int(max_iter)))
        try:
            self._fit_from_posterior(
                L, q_seed, q_prior=self._majority_posterior(L, stats), stats=stats
            )
        finally:
            self.n_iter = full_n_iter  # the cap is scoped to this call only
        return self

    def _validated_or_stats(
        self, L: np.ndarray, stats: ColumnStats | None
    ) -> np.ndarray:
        return validated_or_stats(L, stats, self._validated)

    def _fit_from_posterior(
        self,
        L: np.ndarray,
        q: np.ndarray,
        q_prior: np.ndarray | None = None,
        stats: ColumnStats | None = None,
    ) -> None:
        """Run the configured optimizer from an initial posterior ``q``.

        ``q_prior`` optionally supplies a different posterior for the class
        balance estimate (warm fits pass the majority posterior to mirror
        the cold seeding; see :meth:`fit_warm`).  With ``stats`` the EM/SGD
        iterations run on the O(nnz) sufficient-statistics path.
        """
        if self.learn_prior:
            covered = (
                stats.coverage_mask() if stats is not None else self._covered_dense(L)
            )
            if covered.any():
                balance_q = q if q_prior is None else q_prior
                self.prior_ = float(
                    np.clip(balance_q[covered].mean(), _PRIOR_FLOOR, 1 - _PRIOR_FLOOR)
                )
        acc, rho = self._m_step(L, q, stats)
        if self.method == "em":
            self._fit_em(L, acc, rho, stats)
        else:
            self._fit_sgd(L, acc, rho, stats)

    def _fit_em(
        self,
        L: np.ndarray,
        acc: np.ndarray,
        rho: np.ndarray,
        stats: ColumnStats | None = None,
    ) -> None:
        self.converged_ = False
        iterations = 0
        for _ in range(self.n_iter):
            iterations += 1
            if stats is not None:
                q = self._posterior_stats(stats, acc, rho, with_abstain=True)
            else:
                q = self._posterior_dense(L, acc, rho)
            new_acc, new_rho = self._m_step(L, q, stats)
            delta = max(
                float(np.max(np.abs(new_acc - acc))),
                float(np.max(np.abs(new_rho - rho))),
            )
            acc, rho = new_acc, new_rho
            if delta < self.tol:
                self.converged_ = True
                break
        self.em_iterations_ = iterations
        self._finalize(acc, rho)

    def _fit_sgd(
        self,
        L: np.ndarray,
        acc: np.ndarray,
        rho: np.ndarray,
        stats: ColumnStats | None = None,
    ) -> None:
        """Adam on the marginal log-likelihood (gradients via Fisher's identity).

        The expected-complete-data gradient at the current posterior equals
        the marginal-likelihood gradient, so each step computes the same
        sufficient statistics as EM but takes a damped gradient step in
        logit space instead of the closed-form jump.
        """
        theta = np.concatenate([_logit(acc), _logit(rho[:, 0]), _logit(rho[:, 1])])
        adam_m = np.zeros_like(theta)
        adam_v = np.zeros_like(theta)
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        m = L.shape[1]
        self.converged_ = False
        iterations = 0
        for t in range(1, self.n_iter + 1):
            iterations = t
            acc = _sigmoid(theta[:m])
            rho = np.stack([_sigmoid(theta[m : 2 * m]), _sigmoid(theta[2 * m :])], axis=1)
            if stats is not None:
                q = self._posterior_stats(stats, acc, rho, with_abstain=True)
            else:
                q = self._posterior_dense(L, acc, rho)
            suff = self._sufficient_stats(L, q, stats)
            # d ll / d logit(a) = (expected_correct - a * expected_fires) etc.
            grad_acc = suff["correct"] - acc * suff["fires"]
            grad_acc += self.anchor * (self.init_accuracy - acc)  # Beta anchor
            grad_rho_neg = suff["fires_neg"] - rho[:, 0] * suff["mass_neg"]
            grad_rho_pos = suff["fires_pos"] - rho[:, 1] * suff["mass_pos"]
            grad = np.concatenate([grad_acc, grad_rho_neg, grad_rho_pos])
            adam_m = beta1 * adam_m + (1 - beta1) * grad
            adam_v = beta2 * adam_v + (1 - beta2) * grad**2
            step = self.learning_rate * (adam_m / (1 - beta1**t)) / (
                np.sqrt(adam_v / (1 - beta2**t)) + eps
            )
            new_theta = theta + step
            if float(np.max(np.abs(new_theta - theta))) < self.tol:
                theta = new_theta
                self.converged_ = True
                break
            theta = new_theta
        acc = np.clip(_sigmoid(theta[:m]), _ACC_FLOOR, _ACC_CEIL)
        rho = np.clip(
            np.stack([_sigmoid(theta[m : 2 * m]), _sigmoid(theta[2 * m :])], axis=1),
            _RHO_FLOOR,
            _RHO_CEIL,
        )
        self.em_iterations_ = iterations
        self._finalize(acc, rho)

    def _finalize(self, acc: np.ndarray, rho: np.ndarray) -> None:
        # Better-than-random guard: resolve the global label-swap mode.
        if acc.size and float(np.mean(acc)) < 0.5:
            acc = 1.0 - acc
            rho = rho[:, ::-1].copy()
            self.prior_ = 1.0 - self.prior_
        self.accuracies_ = acc
        self.propensities_ = rho

    # ------------------------------------------------------------------ #
    # EM pieces
    # ------------------------------------------------------------------ #
    def _sufficient_stats(
        self, L: np.ndarray, q: np.ndarray, stats: ColumnStats | None = None
    ) -> dict[str, np.ndarray]:
        if stats is None:
            return self._sufficient_stats_dense(L, q)
        # O(nnz) path: two sparse mat-vecs against the per-column fire
        # structure replace every dense (L != 0) / (L == ±1) scan.
        # With t = Σ_fired q and s = Σ_fired v·q (v = ±1), the positive
        # and negative vote masses are (t ± s) / 2, and
        # correct = pos_mass + (n_neg − neg_mass).
        F = stats.fires_csc()
        S = stats.signed_csc()
        t = np.asarray(F.T @ q).ravel()
        s = np.asarray(S.T @ q).ravel()
        pos_mass = 0.5 * (t + s)
        neg_mass = 0.5 * (t - s)
        neg_counts = stats.value_col_counts(-1).astype(float)
        fires = stats.col_nnz().astype(float)
        return {
            "correct": pos_mass + (neg_counts - neg_mass),
            "fires": fires,
            "fires_pos": t,
            "fires_neg": fires - t,
            "mass_pos": np.full(stats.m, q.sum()),
            "mass_neg": np.full(stats.m, (1 - q).sum()),
        }

    def _sufficient_stats_dense(self, L: np.ndarray, q: np.ndarray) -> dict[str, np.ndarray]:
        """Dense twin of the stats branch (the ``cold_path="dense"`` oracle)."""
        fires = (L != 0).astype(float)
        correct = ((L == 1) * q[:, None] + (L == -1) * (1 - q)[:, None]).sum(axis=0)
        return {
            "correct": correct,
            "fires": fires.sum(axis=0),
            "fires_pos": (fires * q[:, None]).sum(axis=0),
            "fires_neg": (fires * (1 - q)[:, None]).sum(axis=0),
            "mass_pos": np.full(L.shape[1], q.sum()),
            "mass_neg": np.full(L.shape[1], (1 - q).sum()),
        }

    def _m_step(
        self, L: np.ndarray, q: np.ndarray, stats: ColumnStats | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        suff = self._sufficient_stats(L, q, stats)
        anchor = self.anchor
        acc = (suff["correct"] + anchor * self.init_accuracy) / (suff["fires"] + anchor)
        acc = np.clip(acc, _ACC_FLOOR, _ACC_CEIL)
        with np.errstate(invalid="ignore", divide="ignore"):
            rho_pos = np.where(
                suff["mass_pos"] > 0, suff["fires_pos"] / suff["mass_pos"], 0.5
            )
            rho_neg = np.where(
                suff["mass_neg"] > 0, suff["fires_neg"] / suff["mass_neg"], 0.5
            )
        rho = np.clip(np.stack([rho_neg, rho_pos], axis=1), _RHO_FLOOR, _RHO_CEIL)
        return acc, rho

    def _majority_posterior(
        self, L: np.ndarray, stats: ColumnStats | None = None
    ) -> np.ndarray:
        """Symmetrically-smoothed majority-vote posterior seeding EM.

        The per-row vote tallies are exact integers, so reading them from
        the stats handle's running counters (O(n)) is bit-identical to the
        dense O(n·m) scan.
        """
        if stats is not None:
            pos = stats.row_value_counts(1).astype(float)
            neg = stats.row_value_counts(-1).astype(float)
            n = stats.n_rows
        else:
            pos, neg = self._vote_tallies_dense(L)
            n = L.shape[0]
        total = pos + neg
        q = np.full(n, 0.5)
        covered = total > 0
        q[covered] = (pos[covered] + 0.5) / (total[covered] + 1.0)
        return q

    @staticmethod
    def _vote_tallies_dense(L: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-row (positive, negative) vote counts by dense scan."""
        return (
            (L == 1).sum(axis=1).astype(float),
            (L == -1).sum(axis=1).astype(float),
        )

    @staticmethod
    def _covered_dense(L: np.ndarray) -> np.ndarray:
        """Row coverage mask by dense scan (stats-less fallback)."""
        return (L != 0).any(axis=1)

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def predict_proba(
        self, L: np.ndarray, stats: ColumnStats | None = None
    ) -> np.ndarray:
        """``P(y=+1 | L_i)`` per example.

        ``stats`` (a matching handle) skips the dense re-validation scan.
        The posterior runs on the kernel the model's ``cold_path`` policy
        resolves to at this ``n``; on the stats path a missing handle is
        built by one dense scan, so ``predict_proba(L)`` and
        ``predict_proba(L, stats)`` are byte-equal at every size.
        """
        if self.accuracies_ is None or self.propensities_ is None:
            raise RuntimeError("MetalLabelModel.predict_proba called before fit")
        L = self._validated_or_stats(L, stats)
        if L.shape[1] != len(self.accuracies_):
            raise ValueError(
                f"label matrix has {L.shape[1]} LFs but model was fitted with "
                f"{len(self.accuracies_)}"
            )
        if L.shape[1] == 0:
            return np.full(L.shape[0], self.prior_)
        if resolve_cold_path(self.cold_path, L.shape[0]) == "stats":
            if stats is None:
                stats = column_stats_from_dense(L, abstain=0)
            return self._posterior_stats(
                stats,
                self.accuracies_,
                self.propensities_,
                with_abstain=self.abstain_evidence,
            )
        return self._posterior_dense(
            L,
            self.accuracies_,
            self.propensities_,
            with_abstain=self.abstain_evidence,
        )

    def _posterior_dense(
        self,
        L: np.ndarray,
        acc: np.ndarray,
        rho: np.ndarray,
        with_abstain: bool = True,
    ) -> np.ndarray:
        """``P(y=+1 | L_i)`` under parameters ``(acc, rho, prior_)``.

        Log-odds decompose into a vote term (accuracy log-odds per vote), a
        fire-evidence term (propensity log-ratio of firing LFs), and — when
        ``with_abstain`` — an abstain-evidence term.  The E-step always uses
        the full model; inference drops the abstain term by default (see the
        class docstring).
        """
        Lf = L.astype(float)
        fires = (L != 0).astype(float)
        vote_weight = np.log(acc / (1 - acc))
        rho_neg = rho[:, 0]
        rho_pos = rho[:, 1]
        fire_evidence = np.log(rho_pos / rho_neg)
        scores = _logit(self.prior_) + Lf @ vote_weight + fires @ fire_evidence
        if with_abstain:
            abstain_evidence = np.log((1 - rho_pos) / (1 - rho_neg))
            scores = scores + (1 - fires) @ abstain_evidence
        return _sigmoid(scores)

    def _posterior_stats(
        self,
        stats: ColumnStats,
        acc: np.ndarray,
        rho: np.ndarray,
        with_abstain: bool = True,
    ) -> np.ndarray:
        """The O(nnz) twin of :meth:`_posterior_dense` (table-driven E-step).

        Votes take two non-abstain values, so each entry's log-odds
        contribution collapses into one of two per-column table rows built
        once per call: ``T₊ = vw + fe [− ae]`` for a +1 vote and
        ``T₋ = −vw + fe [− ae]`` for a −1 vote (``vw`` the accuracy
        log-odds, ``fe`` the fire-propensity log-ratio, ``ae`` the abstain
        evidence — rewritten as a base offset ``Σ_j ae_j`` minus per-fire
        corrections so the uncovered majority of rows is never touched).
        The tables are gathered through the flat entry arrays
        (:meth:`ColumnStats.entries`) and segment-summed into rows with
        ``np.bincount`` — one deterministic C pass over the nnz entries,
        replacing the per-column exp/log mat-vec passes.  When ``acc`` has
        fewer columns than the handle (warm seeding over the previous
        fit's prefix), the column-major entry arrays are prefix-sliced at
        ``indptr[m]``.
        """
        m = acc.shape[0]
        indptr, rows, cols, values = stats.entries()
        if m != stats.m:
            end = int(indptr[m])
            rows, cols, values = rows[:end], cols[:end], values[:end]
        vote_weight = np.log(acc / (1 - acc))
        rho_neg = rho[:, 0]
        rho_pos = rho[:, 1]
        fire_evidence = np.log(rho_pos / rho_neg)
        base = _logit(self.prior_)
        table_plus = vote_weight + fire_evidence
        table_minus = -vote_weight + fire_evidence
        if with_abstain:
            abstain_evidence = np.log((1 - rho_pos) / (1 - rho_neg))
            base = base + float(abstain_evidence.sum())
            table_plus = table_plus - abstain_evidence
            table_minus = table_minus - abstain_evidence
        contrib = np.where(values == 1, table_plus[cols], table_minus[cols])
        scores = base + np.bincount(rows, weights=contrib, minlength=stats.n_rows)
        return _sigmoid(scores)

    def _marginal_ll(self, L: np.ndarray) -> float:
        """Marginal log-likelihood under the fitted parameters (diagnostics)."""
        if self.accuracies_ is None or self.propensities_ is None:
            raise RuntimeError("model is not fitted")
        acc = self.accuracies_
        rho = self.propensities_
        fires = L != 0
        log_p = np.zeros((L.shape[0], 2))
        for c_idx, y in enumerate((-1, 1)):
            r = rho[:, c_idx]
            p_vote_correct = r * acc
            p_vote_wrong = r * (1 - acc)
            p_correct_vote = np.where(np.sign(y) == 1, L == 1, L == -1)
            p_wrong_vote = np.where(np.sign(y) == 1, L == -1, L == 1)
            log_p[:, c_idx] = (
                p_correct_vote @ np.log(p_vote_correct)
                + p_wrong_vote @ np.log(p_vote_wrong)
                + (~fires) @ np.log(1 - r)
            )
        log_p[:, 0] += np.log(1 - self.prior_)
        log_p[:, 1] += np.log(self.prior_)
        return float(np.logaddexp(log_p[:, 0], log_p[:, 1]).sum())
