"""Sharded on-disk result sink for sweep jobs.

Layout under the store root::

    spec.json                      # the grid this store belongs to
    results/shard-NN/<job key>.json   # one streamed record per finished job
    checkpoints/<job key>.ckpt.npz    # periodic snapshot of an in-flight job

Results are *streamed*: each worker writes its record the moment its job
finishes (temp file + ``os.replace``, the same atomicity discipline as
``save_transcript``), so a killed sweep keeps everything already done.
Sharding by stable key hash keeps directory fan-out bounded for
thousand-job sweeps — shard membership is derived from the key alone, so
readers and writers agree without coordination.

The spec pin is the resume safety: :meth:`ResultStore.bind_spec` writes
``spec.json`` on first use and on every later use verifies the store was
built by the *same* grid, refusing to mix results from a different sweep
configuration into one directory (job keys already carry a config tag;
the pin catches the coarser operator mistake early, with a readable
error).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.io.atomic import atomic_write_text
from repro.sweep.spec import SweepSpec
from repro.utils.rng import stable_hash_seed


class ResultStore:
    """Per-job JSON results + in-flight checkpoints under one root dir.

    The shard count is part of the store's on-disk identity: result
    lookups compute ``shard_of(key)`` from ``n_shards``, so every handle
    on the same directory must agree on it.  The first writer pins its
    count to ``layout.json``; later handles **adopt** the pinned value,
    whatever their constructor argument said — a handle opened with a
    different default would otherwise report jobs complete (the
    completed-key scan is shard-agnostic) while reading their records
    back as missing.
    """

    def __init__(self, root: str | Path, n_shards: int = 16) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.root = Path(root)
        self.n_shards = int(n_shards)
        pinned = self._read_layout()
        if pinned is not None:
            self.n_shards = pinned

    # -- paths ---------------------------------------------------------- #
    @property
    def spec_path(self) -> Path:
        return self.root / "spec.json"

    @property
    def layout_path(self) -> Path:
        return self.root / "layout.json"

    def _read_layout(self) -> int | None:
        if not self.layout_path.exists():
            return None
        try:
            layout = json.loads(self.layout_path.read_text())
            n_shards = int(layout["n_shards"])
        except (ValueError, KeyError, TypeError) as exc:
            raise ValueError(
                f"{self.layout_path} is corrupted; refusing to guess the store's "
                f"shard layout: {exc}"
            ) from exc
        if n_shards < 1:
            raise ValueError(f"{self.layout_path} pins invalid n_shards={n_shards}")
        return n_shards

    def _pin_layout(self) -> None:
        if not self.layout_path.exists():
            atomic_write_text(
                self.layout_path, json.dumps({"n_shards": self.n_shards}) + "\n"
            )

    def shard_of(self, key: str) -> int:
        """Stable shard index of a job key (process-independent)."""
        return stable_hash_seed("shard", key) % self.n_shards

    def result_path(self, key: str) -> Path:
        return self.root / "results" / f"shard-{self.shard_of(key):02d}" / f"{key}.json"

    def checkpoint_path(self, key: str) -> Path:
        return self.root / "checkpoints" / f"{key}.ckpt.npz"

    # -- spec pinning ---------------------------------------------------- #
    def bind_spec(self, spec: SweepSpec) -> None:
        """Pin this store to ``spec`` (write on first use, verify after).

        Raises ``ValueError`` when the store already belongs to a
        different grid — resuming a sweep into a foreign result directory
        would silently mix incomparable records.
        """
        self._pin_layout()
        wanted = spec.to_dict()
        if self.spec_path.exists():
            try:
                existing = json.loads(self.spec_path.read_text())
            except ValueError as exc:
                raise ValueError(
                    f"{self.spec_path} is corrupted; refusing to reuse the store"
                ) from exc
            if existing != wanted:
                raise ValueError(
                    f"store {self.root} was created for a different sweep spec; "
                    "use a fresh output directory (or the original spec) — "
                    f"stored: {existing}, requested: {wanted}"
                )
            return
        atomic_write_text(self.spec_path, json.dumps(wanted, indent=2) + "\n")

    def load_spec(self) -> SweepSpec | None:
        """The pinned spec, or ``None`` for a fresh store."""
        if not self.spec_path.exists():
            return None
        return SweepSpec.from_dict(json.loads(self.spec_path.read_text()))

    # -- results --------------------------------------------------------- #
    def write_result(self, key: str, payload: dict) -> Path:
        """Atomically persist one finished job's record."""
        self._pin_layout()
        path = self.result_path(key)
        atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
        return path

    def read_result(self, key: str) -> dict | None:
        """The stored record for ``key``, or ``None`` if not completed."""
        path = self.result_path(key)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def completed_keys(self) -> set[str]:
        """Keys of every job with a streamed result on disk."""
        results_dir = self.root / "results"
        if not results_dir.exists():
            return set()
        return {p.stem for p in results_dir.glob("shard-*/*.json")}

    def summarize_obs(self) -> dict:
        """Aggregate the per-job ``obs`` sections across completed records.

        Sums phase wall-seconds, refit-path counts, end-fit mode counts,
        and the open-interval wall over every stored record that carries
        an ``obs`` section (engine jobs; baselines contribute nothing).
        Returns ``{"jobs", "phase_seconds", "refits", "end_fits",
        "open_interval_seconds"}`` — ``jobs`` is the number of records
        that contributed, so a caller can tell "no instrumented jobs"
        from "instrumented jobs that measured zero".
        """
        summary: dict = {
            "jobs": 0,
            "phase_seconds": {},
            "refits": {},
            "end_fits": {},
            "open_interval_seconds": 0.0,
        }
        for key in sorted(self.completed_keys()):
            record = self.read_result(key)
            obs = (record or {}).get("obs")
            if not isinstance(obs, dict):
                continue
            summary["jobs"] += 1
            for field in ("phase_seconds", "refits", "end_fits"):
                bucket = summary[field]
                for name, value in (obs.get(field) or {}).items():
                    bucket[name] = bucket.get(name, 0) + value
            summary["open_interval_seconds"] += float(obs.get("open_interval_seconds", 0.0))
        return summary

    # -- checkpoints ------------------------------------------------------ #
    def clear_checkpoint(self, key: str) -> None:
        """Drop the in-flight checkpoint once a job's result is durable."""
        try:
            self.checkpoint_path(key).unlink()
        except FileNotFoundError:
            pass

    def gc_checkpoints(
        self, keep_keys, max_age_seconds: float | None = None
    ) -> list[Path]:
        """Collect checkpoints no pending job will ever resume from.

        Deletes every ``*.ckpt.npz`` whose job key is not in ``keep_keys``
        — completed jobs (the crash window between ``write_result`` and
        ``clear_checkpoint``) and orphans from foreign or edited grids —
        then age-caps the survivors when ``max_age_seconds`` is given (an
        operator opt-in: *every* over-age pending checkpoint is treated
        as abandoned and its job restarts from scratch — unlike a
        session's snapshot directory there is no newest-file exemption
        here, because each file is a different job's only checkpoint and
        the contract must be uniform across jobs).  Returns the deleted
        paths.
        """
        ckpt_dir = self.root / "checkpoints"
        if not ckpt_dir.exists():
            return []
        keep_keys = set(keep_keys)
        suffix = ".ckpt.npz"
        deleted: list[Path] = []
        survivors: list[Path] = []
        for path in ckpt_dir.glob(f"*{suffix}"):
            key = path.name[: -len(suffix)]
            if key in keep_keys:
                survivors.append(path)
                continue
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            deleted.append(path)
        if max_age_seconds is not None:
            now = time.time()
            for path in survivors:
                try:
                    if now - path.stat().st_mtime <= max_age_seconds:
                        continue
                    path.unlink()
                except FileNotFoundError:
                    continue
                deleted.append(path)
        return deleted
