"""The sweep job model: a declarative grid and its deterministic expansion.

A :class:`SweepSpec` names *what* to run (methods × datasets × seeds plus
the shared protocol settings); :meth:`SweepSpec.jobs` expands it into
:class:`SweepJob` units in a fixed order.  Each job derives its session
seed with :func:`~repro.utils.rng.stable_hash_seed` over exactly the same
``(method, dataset, run_idx, base_seed)`` tuple the serial protocol uses —
the property that makes a sweep's results bit-identical to
``evaluate_method``'s regardless of scheduling, sharding, or resume
(pinned by ``tests/utils`` process-stability tests).

Job keys are filesystem-safe, collision-resistant identifiers: the grid
coordinates in clear text plus a short stable hash of the protocol
settings, so one result store can host several sweeps without a completed
job from an *older differently-configured* sweep masquerading as done.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.utils.rng import stable_hash_seed


@dataclass(frozen=True)
class SweepJob:
    """One independent (method, dataset, seed) cell of a sweep."""

    method: str
    dataset: str
    run_idx: int
    base_seed: int = 0
    n_iterations: int = 50
    eval_every: int = 5
    scale: str = "bench"
    dataset_seed: int = 0
    user_threshold: float = 0.5

    @property
    def seed(self) -> int:
        """The session seed — identical to the serial protocol's derivation."""
        return stable_hash_seed(self.method, self.dataset, self.run_idx, self.base_seed)

    @property
    def config_tag(self) -> str:
        """Short stable hash of the protocol settings shared by the grid."""
        return format(
            stable_hash_seed(
                self.base_seed,
                self.n_iterations,
                self.eval_every,
                self.scale,
                self.dataset_seed,
                self.user_threshold,
            ),
            "08x",
        )

    @property
    def key(self) -> str:
        """Filesystem-safe unique id (clear-text coordinates + config tag)."""
        return f"{self.dataset}--{self.method}--r{self.run_idx:03d}--{self.config_tag}"

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SweepJob":
        return cls(
            method=str(data["method"]),
            dataset=str(data["dataset"]),
            run_idx=int(data["run_idx"]),
            base_seed=int(data["base_seed"]),
            n_iterations=int(data["n_iterations"]),
            eval_every=int(data["eval_every"]),
            scale=str(data["scale"]),
            dataset_seed=int(data["dataset_seed"]),
            user_threshold=float(data["user_threshold"]),
        )


@dataclass(frozen=True)
class SweepSpec:
    """A seeds × methods × datasets grid with shared protocol settings.

    Parameters mirror the CLI and ``evaluate_method``: every method runs on
    every dataset for ``n_seeds`` independently-seeded sessions of
    ``n_iterations`` interactions, evaluated every ``eval_every``.
    ``scale`` / ``dataset_seed`` fix how the named datasets are built in
    the workers, so any job can be reproduced in isolation from the spec
    alone.
    """

    methods: tuple[str, ...]
    datasets: tuple[str, ...]
    n_seeds: int = 5
    base_seed: int = 0
    n_iterations: int = 50
    eval_every: int = 5
    scale: str = "bench"
    dataset_seed: int = 0
    user_threshold: float = 0.5

    def __post_init__(self) -> None:
        object.__setattr__(self, "methods", tuple(str(m) for m in self.methods))
        object.__setattr__(self, "datasets", tuple(str(d) for d in self.datasets))
        if not self.methods:
            raise ValueError("SweepSpec needs at least one method")
        if not self.datasets:
            raise ValueError("SweepSpec needs at least one dataset")
        if len(set(self.methods)) != len(self.methods):
            raise ValueError(f"duplicate methods in spec: {self.methods}")
        if len(set(self.datasets)) != len(self.datasets):
            raise ValueError(f"duplicate datasets in spec: {self.datasets}")
        if self.n_seeds < 1:
            raise ValueError(f"n_seeds must be >= 1, got {self.n_seeds}")
        if self.n_iterations < 1:
            raise ValueError(f"n_iterations must be >= 1, got {self.n_iterations}")
        if self.eval_every < 1:
            raise ValueError(f"eval_every must be >= 1, got {self.eval_every}")

    def jobs(self) -> list[SweepJob]:
        """The grid expanded in deterministic (dataset, method, seed) order."""
        return [
            SweepJob(
                method=method,
                dataset=dataset,
                run_idx=run_idx,
                base_seed=self.base_seed,
                n_iterations=self.n_iterations,
                eval_every=self.eval_every,
                scale=self.scale,
                dataset_seed=self.dataset_seed,
                user_threshold=self.user_threshold,
            )
            for dataset in self.datasets
            for method in self.methods
            for run_idx in range(self.n_seeds)
        ]

    def to_dict(self) -> dict:
        data = asdict(self)
        data["methods"] = list(self.methods)
        data["datasets"] = list(self.datasets)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        return cls(
            methods=tuple(data["methods"]),
            datasets=tuple(data["datasets"]),
            n_seeds=int(data["n_seeds"]),
            base_seed=int(data["base_seed"]),
            n_iterations=int(data["n_iterations"]),
            eval_every=int(data["eval_every"]),
            scale=str(data["scale"]),
            dataset_seed=int(data["dataset_seed"]),
            user_threshold=float(data["user_threshold"]),
        )

