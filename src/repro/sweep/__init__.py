"""Parallel sharded experiment sweeps on durable engine checkpoints.

The paper's evidence is all sweeps — seeds × methods × datasets cells for
Tables 2 and 4–9 — and every cell is an independent seeded session.  This
package turns that independence into throughput and durability:

* :class:`~repro.sweep.spec.SweepSpec` expands a declarative
  seeds × methods × datasets grid into deterministic
  :class:`~repro.sweep.spec.SweepJob` units, each seeded by
  ``stable_hash_seed`` exactly as the serial protocol seeds it — so a
  sweep's cells are bit-identical to ``evaluate_method``'s, however they
  are scheduled.
* :class:`~repro.sweep.store.ResultStore` streams one JSON result per
  finished job into a sharded on-disk layout (atomic writes), so a killed
  process loses at most the jobs that were mid-flight.
* :func:`~repro.sweep.runner.run_sweep` drives the grid through a
  multiprocessing pool with crash-resume: completed jobs are skipped
  outright, and in-flight engine sessions restart from their periodic
  checkpoints (ENGINE.md §5) instead of from scratch.

See ``examples/parallel_sweep.py`` for a walkthrough and the
``repro sweep`` CLI subcommand for the no-Python entry point.
"""

from repro.sweep.runner import SweepReport, run_sweep
from repro.sweep.spec import SweepJob, SweepSpec
from repro.sweep.store import ResultStore
from repro.sweep.worker import session_obs

__all__ = [
    "SweepSpec",
    "SweepJob",
    "ResultStore",
    "run_sweep",
    "SweepReport",
    "session_obs",
]
