"""Worker-side execution of sweep jobs (module-level, multiprocessing-safe).

Everything a pooled worker needs lives here as plain module functions so it
pickles by reference: named-dataset loading (delegating to
:mod:`repro.data.named`, with a per-process cache — each worker builds a
dataset once however many of its jobs share it), method-factory resolution
(delegating to :mod:`repro.experiments.registry`, the dispatch shared with
the serve layer and the CLI), and the resumable job runner that periodically
checkpoints the live session (ENGINE.md §5) and streams the finished
record into the :class:`~repro.sweep.store.ResultStore`.
"""

from __future__ import annotations

import pickle
import time

from repro.data.named import load_named_dataset
from repro.experiments.protocol import LearningCurve, run_learning_curve
from repro.experiments.registry import resolve_factory
from repro.io.checkpoint import (
    CheckpointError,
    load_session_checkpoint,
    save_session_checkpoint,
)
from repro.sweep.spec import SweepJob
from repro.sweep.store import ResultStore

__all__ = [
    "SweepJobCrash",
    "resolve_factory",  # re-exported from repro.experiments.registry
    "run_sweep_job",
    "session_obs",
    "mp_context",
    "parallel_learning_curves",
]


class SweepJobCrash(RuntimeError):
    """Injected mid-job failure (crash-resume tests and the CI smoke)."""


# Per-process dataset cache: workers are long-lived, and every job on the
# same (name, scale, seed) triple shares one featurization.
_DATASET_CACHE: dict = {}


def _cached_dataset(job: SweepJob):
    key = (job.dataset, job.scale, job.dataset_seed)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = load_named_dataset(
            job.dataset, scale=job.scale, seed=job.dataset_seed
        )
    return _DATASET_CACHE[key]


def session_obs(method) -> dict | None:
    """The engine's observability counters as a plain-JSON dict, or ``None``.

    Baselines without the engine's instrumentation (no ``phase_timings``)
    yield ``None`` so their records carry no empty section.  Of the
    fields, only ``phase_seconds`` round-trips through checkpoints
    (``phase_timings`` lives in ``state_dict``); the refit/end-fit
    counters and the open-interval wall are transient, so on a resumed
    job they cover the post-resume stretch only.
    """
    timings = getattr(method, "phase_timings", None)
    if not isinstance(timings, dict):
        return None
    return {
        "phase_seconds": {str(k): float(v) for k, v in sorted(timings.items())},
        "refits": {str(k): int(v) for k, v in sorted(getattr(method, "refit_counts", {}).items())},
        "end_fits": {
            str(k): int(v) for k, v in sorted(getattr(method, "end_fit_counts", {}).items())
        },
        "em_iterations": {
            str(k): int(v)
            for k, v in sorted(getattr(method, "em_iteration_counts", {}).items())
        },
        "label_fit_seconds": {
            str(k): float(v)
            for k, v in sorted(getattr(method, "label_fit_seconds", {}).items())
        },
        "open_interval_seconds": float(getattr(method, "open_interval_seconds", 0.0)),
    }


def run_sweep_job(
    job_dict: dict,
    root: str,
    checkpoint_every: int = 10,
    fail_after_iteration: int | None = None,
) -> tuple[str, dict]:
    """Run one job to completion, checkpointing and streaming the result.

    The session is checkpointed every ``checkpoint_every`` protocol
    iterations (engine sessions only — baselines without the snapshot
    protocol simply restart from scratch on resume); an existing
    checkpoint for this job is restored and the learning curve continues
    from its cursor, bit-identically to an uninterrupted run.  The
    finished record is written atomically to the store and the checkpoint
    dropped — the order matters: a crash between the two leaves a
    completed result plus a stale checkpoint, which resume ignores because
    the completed set is checked first.

    ``fail_after_iteration`` injects a :class:`SweepJobCrash` after that
    iteration's hook ran — the crash-resume tests and the CI smoke use it
    to kill a sweep mid-job deterministically.
    """
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    job = SweepJob.from_dict(job_dict)
    store = ResultStore(root)
    dataset = _cached_dataset(job)
    factory = resolve_factory(job.method, job.dataset, job.user_threshold)
    method = factory(dataset, job.seed)
    checkpointable = hasattr(method, "state_dict") and hasattr(method, "load_state_dict")

    ckpt_path = store.checkpoint_path(job.key)
    curve = LearningCurve(iterations=[], scores=[])
    start_iteration = 0
    if checkpointable and ckpt_path.exists():
        try:
            extra = load_session_checkpoint(method, ckpt_path)
        except CheckpointError:
            # A torn/foreign checkpoint must not kill the whole sweep; the
            # job just restarts from scratch (atomic writes make this rare).
            method = factory(dataset, job.seed)
        else:
            if extra.get("job_key") != job.key:
                raise CheckpointError(
                    f"checkpoint {ckpt_path} belongs to job {extra.get('job_key')!r}, "
                    f"not {job.key!r}"
                )
            start_iteration = int(extra["iteration"])
            curve = LearningCurve(
                iterations=[int(i) for i in extra["iterations"]],
                scores=[float(s) for s in extra["scores"]],
            )

    def after_iteration(it: int, c: LearningCurve) -> None:
        if checkpointable and it % checkpoint_every == 0 and it < job.n_iterations:
            save_session_checkpoint(
                method,
                ckpt_path,
                extra={
                    "job_key": job.key,
                    "iteration": it,
                    "iterations": list(c.iterations),
                    "scores": list(c.scores),
                },
            )
        if fail_after_iteration is not None and it >= fail_after_iteration:
            raise SweepJobCrash(f"injected crash after iteration {it} of {job.key}")

    t0 = time.perf_counter()
    curve = run_learning_curve(
        method,
        n_iterations=job.n_iterations,
        eval_every=job.eval_every,
        start_iteration=start_iteration,
        curve=curve,
        after_iteration=after_iteration,
    )
    payload = {
        "key": job.key,
        "job": job.to_dict(),
        "seed": int(job.seed),
        "iterations": [int(i) for i in curve.iterations],
        "scores": [float(s) for s in curve.scores],
        "resumed_from_iteration": int(start_iteration),
        "wall_seconds": float(time.perf_counter() - t0),
    }
    obs = session_obs(method)
    if obs is not None:
        payload["obs"] = obs
    store.write_result(job.key, payload)
    store.clear_checkpoint(job.key)
    return job.key, payload


def _pool_run_job(args: tuple) -> tuple[str, dict]:
    """Pool-facing shim (one picklable argument tuple)."""
    job_dict, root, checkpoint_every = args
    return run_sweep_job(job_dict, root, checkpoint_every=checkpoint_every)


# --------------------------------------------------------------------- #
# parallel evaluate_method support
# --------------------------------------------------------------------- #
def mp_context():
    """The multiprocessing context for sweep pools (fork when available).

    Fork keeps per-worker startup negligible on the platforms that have it
    (the sessions themselves are pure numpy/scipy); spawn is the portable
    fallback.
    """
    import multiprocessing as mp

    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return mp.get_context("spawn")


_EVAL_CTX: dict = {}


def _init_eval_pool(factory, dataset) -> None:
    """Pool initializer: park the shared factory/dataset in the worker."""
    _EVAL_CTX["factory"] = factory
    _EVAL_CTX["dataset"] = dataset


def _eval_one(args: tuple) -> tuple[int, list[int], list[float]]:
    run_idx, seed, n_iterations, eval_every = args
    method = _EVAL_CTX["factory"](_EVAL_CTX["dataset"], seed)
    curve = run_learning_curve(method, n_iterations=n_iterations, eval_every=eval_every)
    return run_idx, list(curve.iterations), list(curve.scores)


def parallel_learning_curves(
    method_factory,
    dataset,
    seeds: list[int],
    n_iterations: int,
    eval_every: int,
    jobs: int,
) -> list[LearningCurve]:
    """Per-seed learning curves computed in a worker pool, in seed order.

    Each worker receives the factory and dataset once (pool initializer)
    and then runs whole independent sessions; results are re-ordered by
    run index, so the returned list is exactly what the serial loop
    produces.  Fails fast with a readable error when the factory cannot be
    shipped to workers (closures don't pickle; registry factories do).
    The factory pre-check runs even under fork — where initargs are
    inherited rather than pickled — so jobs>1 code stays portable to
    spawn platforms; the *dataset* is deliberately not pre-pickled: it
    can be tens of MB (a full serialized copy for a mere check), and
    datasets are plain numpy/scipy containers that pickle by
    construction.
    """
    ctx = mp_context()
    try:
        pickle.dumps(method_factory)
    except Exception as exc:
        raise ValueError(
            "parallel evaluation (jobs > 1) requires a picklable method factory; "
            f"pickling failed with: {exc!r}.  Registry factories "
            "(make_method / make_mc_method) are picklable; custom closures are not."
        ) from exc
    tasks = [(i, seed, n_iterations, eval_every) for i, seed in enumerate(seeds)]
    n_workers = max(1, min(jobs, len(tasks)))
    with ctx.Pool(
        processes=n_workers, initializer=_init_eval_pool, initargs=(method_factory, dataset)
    ) as pool:
        outcomes = pool.map(_eval_one, tasks)
    by_idx = {idx: (iters, scores) for idx, iters, scores in outcomes}
    return [
        LearningCurve(iterations=by_idx[i][0], scores=by_idx[i][1])
        for i in range(len(seeds))
    ]
