"""Sweep orchestration: expand, skip the done, pool the rest, gather.

:func:`run_sweep` is idempotent over its output directory: every
invocation expands the spec, skips jobs whose results are already streamed
to the store, restores any mid-flight checkpoints, and runs whatever
remains — so "resume after a crash" and "run" are the same call.  The
pool is plain ``multiprocessing`` over module-level worker functions;
scheduling carries no randomness and every job is independently seeded, so
results are bit-identical however many workers run them (the sweep
throughput benchmark asserts serial vs parallel equality on every score).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.data.named import DATASET_NAMES, MC_DATASET_NAMES
from repro.experiments.protocol import LearningCurve, RunResult
from repro.experiments.registry import resolve_factory
from repro.sweep.spec import SweepJob, SweepSpec
from repro.sweep.store import ResultStore
from repro.sweep.worker import (
    _pool_run_job,
    mp_context,
    run_sweep_job,
)


@dataclass
class SweepReport:
    """What one :func:`run_sweep` invocation did and what the store holds.

    ``results`` maps ``(dataset, method)`` to a
    :class:`~repro.experiments.protocol.RunResult` whose curves are every
    completed seed of that cell, in run-index order — identical to the
    serial protocol's aggregation once the cell is complete.
    """

    spec: SweepSpec
    results: dict[tuple[str, str], RunResult] = field(default_factory=dict)
    ran: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    pending: list[str] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def complete(self) -> bool:
        """Whether every job of the spec has a stored result."""
        return not self.pending


def _validate_spec_resolvable(spec: SweepSpec) -> None:
    """Fail on unknown datasets/methods before any worker starts."""
    known = DATASET_NAMES + MC_DATASET_NAMES
    for dataset in spec.datasets:
        if dataset not in known:
            raise ValueError(f"unknown dataset {dataset!r}; choose from {known}")
        for method in spec.methods:
            try:
                resolve_factory(method, dataset, spec.user_threshold)
            except ValueError as exc:
                # Methods dispatch per dataset (binary registry vs the
                # *-mc one), so a grid mixing the two kinds needs methods
                # valid on every dataset — say which cell broke and why.
                raise ValueError(
                    f"method {method!r} is not available for dataset "
                    f"{dataset!r}: {exc}  (binary datasets use the binary "
                    "registry, 'topics' the *-mc registry — run mixed-"
                    "cardinality grids as two sweeps)"
                ) from exc


def _gather(spec: SweepSpec, store: ResultStore) -> dict[tuple[str, str], RunResult]:
    by_cell: dict[tuple[str, str], list[tuple[int, LearningCurve]]] = {}
    for job in spec.jobs():
        record = store.read_result(job.key)
        if record is None:
            continue
        curve = LearningCurve(
            iterations=[int(i) for i in record["iterations"]],
            scores=[float(s) for s in record["scores"]],
        )
        by_cell.setdefault((job.dataset, job.method), []).append((job.run_idx, curve))
    results: dict[tuple[str, str], RunResult] = {}
    for (dataset, method), indexed in by_cell.items():
        indexed.sort(key=lambda pair: pair[0])
        results[(dataset, method)] = RunResult(
            method=method, dataset=dataset, curves=[c for _, c in indexed]
        )
    return results


def run_sweep(
    spec: SweepSpec,
    out_dir,
    jobs: int = 1,
    checkpoint_every: int = 10,
    max_jobs: int | None = None,
    progress=None,
    checkpoint_max_age: float | None = None,
) -> SweepReport:
    """Run (or resume) a sweep; returns the report over the whole store.

    Parameters
    ----------
    spec:
        The seeds × methods × datasets grid.
    out_dir:
        Result-store root.  Reusing a directory resumes: completed jobs
        are skipped, in-flight engine sessions restart from their
        checkpoints.  The directory is pinned to the spec (fail-closed on
        mismatch).
    jobs:
        Worker processes; 1 runs in-process (no pool).
    checkpoint_every:
        Mid-job snapshot cadence in protocol iterations.
    max_jobs:
        Stop after this many jobs *this invocation* (``None`` = run all).
        Primarily a crash-injection / budgeting aid: the sweep smoke test
        kills a run this way and asserts the resume completes without
        recomputing finished jobs.
    progress:
        Optional ``(done_count, total_count, key, payload) -> None``
        callback invoked as each job finishes.
    checkpoint_max_age:
        Optional age cap (seconds) on pending jobs' checkpoints: an older
        snapshot is treated as abandoned and its job restarts from
        scratch (see :meth:`~repro.sweep.store.ResultStore.gc_checkpoints`).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if max_jobs is not None and max_jobs < 0:
        raise ValueError(f"max_jobs must be >= 0, got {max_jobs}")
    _validate_spec_resolvable(spec)
    store = ResultStore(out_dir)
    store.bind_spec(spec)

    all_jobs: list[SweepJob] = spec.jobs()
    completed = store.completed_keys()
    skipped = [job.key for job in all_jobs if job.key in completed]
    pending = [job for job in all_jobs if job.key not in completed]
    # Collect every checkpoint no pending job will resume from: completed
    # jobs (the write_result → clear_checkpoint crash window), orphans
    # from foreign grids, plus the optional age cap on the survivors.
    store.gc_checkpoints(
        {job.key for job in pending}, max_age_seconds=checkpoint_max_age
    )
    to_run = pending if max_jobs is None else pending[:max_jobs]

    t0 = time.perf_counter()
    ran: list[str] = []
    total = len(to_run)
    if to_run:
        if jobs == 1:
            for job in to_run:
                key, payload = run_sweep_job(
                    job.to_dict(), str(out_dir), checkpoint_every=checkpoint_every
                )
                ran.append(key)
                if progress is not None:
                    progress(len(ran), total, key, payload)
        else:
            ctx = mp_context()
            tasks = [
                (job.to_dict(), str(out_dir), checkpoint_every) for job in to_run
            ]
            with ctx.Pool(processes=min(jobs, len(tasks))) as pool:
                for key, payload in pool.imap_unordered(_pool_run_job, tasks):
                    ran.append(key)
                    if progress is not None:
                        progress(len(ran), total, key, payload)
    wall = time.perf_counter() - t0

    done_now = store.completed_keys()
    return SweepReport(
        spec=spec,
        results=_gather(spec, store),
        ran=ran,
        skipped=skipped,
        pending=[job.key for job in all_jobs if job.key not in done_now],
        wall_seconds=wall,
    )
