"""Stdlib HTTP client for the session service.

A thin :mod:`urllib.request` wrapper mirroring the endpoints of
:mod:`repro.serve.http` one method per route — used by the live-session
example, the serve smoke test, and anything else that drives a remote
session without pulling in an HTTP library.  Every call returns the
decoded JSON payload; non-2xx responses raise :class:`ServeClientError`
carrying the status and the server's ``error`` message.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request


class ServeClientError(RuntimeError):
    """The server answered with an error status (or unparseable JSON)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class SessionClient:
    """Client for one ``repro serve`` endpoint.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8123"`` (trailing slash tolerated).
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ------------------------------------------------------ #
    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                raw = response.read()
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                message = json.loads(raw.decode("utf-8")).get("error", raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                message = raw.decode("utf-8", errors="replace")
            raise ServeClientError(exc.code, message) from None
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServeClientError(200, f"unparseable response body: {exc}") from exc

    # -- endpoints ------------------------------------------------------ #
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def sessions(self) -> list[dict]:
        return self._request("GET", "/sessions")["sessions"]

    def create(self, name: str, **config) -> dict:
        return self._request("POST", "/sessions", {"name": name, **config})

    def info(self, name: str) -> dict:
        return self._request("GET", f"/sessions/{name}")

    def propose(self, name: str) -> dict:
        return self._request("POST", f"/sessions/{name}/propose")

    def submit(self, name: str, primitive: str, label: int) -> dict:
        return self._request(
            "POST", f"/sessions/{name}/submit", {"primitive": primitive, "label": label}
        )

    def decline(self, name: str) -> dict:
        return self._request("POST", f"/sessions/{name}/decline")

    def step(self, name: str) -> dict:
        return self._request("POST", f"/sessions/{name}/step")

    def score(self, name: str) -> dict:
        return self._request("GET", f"/sessions/{name}/score")

    def snapshot(self, name: str) -> dict:
        return self._request("POST", f"/sessions/{name}/snapshot")
