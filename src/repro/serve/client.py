"""Stdlib HTTP client for the session service.

A thin :mod:`http.client` wrapper mirroring the endpoints of
:mod:`repro.serve.http` one method per route — used by the live-session
example, the serve smoke test, the loadtest harness, and anything else
that drives a remote session without pulling in an HTTP library.  Every
call returns the decoded JSON payload; non-2xx responses raise
:class:`ServeClientError` carrying the status and the server's ``error``
message.

Connections are kept alive (the server speaks HTTP/1.1 with
Content-Length on every response) and transparently re-established when
the server closes them — without reuse every command pays a TCP setup,
which dominates small-payload latency under load.  Connections are held
per *thread*, so one client instance may be shared across threads.

Session names are interpolated into URL paths as *quoted* segments, and
a name that quoting would alter (anything outside ``[A-Za-z0-9._-]``,
e.g. ``"a/propose"``) is rejected client-side: the server could never
have created it, and unquoted it would silently hit a different route.
"""

from __future__ import annotations

import http.client
import json
import threading
import urllib.parse


class ServeClientError(RuntimeError):
    """The server answered with an error status (or unparseable JSON)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


def _path_segment(name: str) -> str:
    """``name`` as a URL path segment; reject anything quoting would alter."""
    quoted = urllib.parse.quote(str(name), safe="")
    if not quoted or quoted != str(name):
        raise ValueError(
            f"session name {name!r} is not a valid URL path segment "
            f"(would quote to {quoted!r} and cannot name a served session)"
        )
    return quoted


class SessionClient:
    """Client for one ``repro serve`` endpoint.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8123"`` (trailing slash tolerated).
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        split = urllib.parse.urlsplit(self.base_url)
        if split.scheme != "http" or not split.hostname:
            raise ValueError(f"base_url must be http://host[:port], got {base_url!r}")
        self._host = split.hostname
        self._port = split.port or 80
        self._prefix = split.path.rstrip("/")
        self._local = threading.local()  # one kept-alive connection per thread

    #: Failures that mean "the kept-alive connection went stale" — the
    #: server closed it between commands.  Only these, and only on a
    #: *reused* connection, are retried: the command never reached a
    #: handler, so re-sending cannot double-execute it.  Timeouts are
    #: deliberately not here (the server may still be processing).
    _STALE = (http.client.RemoteDisconnected, ConnectionResetError, BrokenPipeError)

    # -- transport ------------------------------------------------------ #
    def _connection(self) -> tuple[http.client.HTTPConnection, bool]:
        """This thread's connection plus whether it was freshly opened."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            return conn, False
        conn = http.client.HTTPConnection(self._host, self._port, timeout=self.timeout)
        self._local.conn = conn
        return conn, True

    def close(self) -> None:
        """Drop this thread's kept-alive connection (if any)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            self._local.conn = None
            conn.close()

    def _request_raw(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, bytes]:
        data = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if data else {}
        while True:
            conn, fresh = self._connection()
            try:
                conn.request(method, self._prefix + path, body=data, headers=headers)
                response = conn.getresponse()
                status = response.status
                raw = response.read()
                if getattr(response, "will_close", False):
                    self.close()
                break
            except self._STALE:
                self.close()
                if fresh:
                    raise
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                raise
        if status >= 400:
            try:
                message = json.loads(raw.decode("utf-8")).get("error", raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                message = raw.decode("utf-8", errors="replace")
            raise ServeClientError(status, message)
        return status, raw

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        status, raw = self._request_raw(method, path, body)
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServeClientError(status, f"unparseable response body: {exc}") from exc

    # -- endpoints ------------------------------------------------------ #
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def sessions(self) -> list[dict]:
        return self._request("GET", "/sessions")["sessions"]

    def create(self, name: str, **config) -> dict:
        return self._request("POST", "/sessions", {"name": name, **config})

    def info(self, name: str) -> dict:
        return self._request("GET", f"/sessions/{_path_segment(name)}")

    def propose(self, name: str) -> dict:
        return self._request("POST", f"/sessions/{_path_segment(name)}/propose")

    def submit(self, name: str, primitive: str, label: int) -> dict:
        return self._request(
            "POST",
            f"/sessions/{_path_segment(name)}/submit",
            {"primitive": primitive, "label": label},
        )

    def decline(self, name: str) -> dict:
        return self._request("POST", f"/sessions/{_path_segment(name)}/decline")

    def step(self, name: str) -> dict:
        return self._request("POST", f"/sessions/{_path_segment(name)}/step")

    def score(self, name: str) -> dict:
        return self._request("GET", f"/sessions/{_path_segment(name)}/score")

    def snapshot(self, name: str) -> dict:
        return self._request("POST", f"/sessions/{_path_segment(name)}/snapshot")

    def statusz(self) -> dict:
        return self._request("GET", "/statusz")

    def metrics(self) -> str:
        """The server's raw Prometheus text exposition."""
        _, raw = self._request_raw("GET", "/metrics")
        return raw.decode("utf-8")
