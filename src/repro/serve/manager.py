"""Many named live IDP sessions behind one durable, lock-guarded manager.

The :class:`SessionManager` is the serve layer's core: it owns a root
directory of named sessions, each a protocol-capable IDP session
(:mod:`repro.core.protocol`) built from the method registry, and keeps
them durable through the PR-4 checkpoint layer:

* every session directory holds ``meta.json`` (the *configuration* —
  method, dataset, scale, seed, threshold; checkpoints deliberately carry
  fitted state only) plus rotated ``step-NNNNNNNN.ckpt.npz`` snapshots;
* snapshots are written at commit boundaries every ``snapshot_every``
  commits (and on demand), then rotated under the
  :class:`~repro.io.checkpoint.RotationPolicy` (``keep_last`` + age cap);
* a manager started over an existing root lazily restores each session
  from its newest checkpoint on first touch — a killed server therefore
  resumes mid-session and continues bit-identically (proposals replay
  from the restored RNG streams; see ENGINE.md §6).

Concurrency: every session carries its own lock, so interactions on
different sessions proceed in parallel under a threaded front end while
commands on one session serialize.  The manager-wide lock guards only the
registry maps — never a disk load: first touches of *different* sessions
restore in parallel, and concurrent first touches of the *same* session
rendezvous on a per-name loading latch (one thread restores, the rest
wait on the latch; a session is never double-loaded).  Sessions share
nothing — RNG streams, refit caches, and phase timings are all
per-session state (pinned by the multi-session isolation tests).

Memory is bounded by the eviction policy (``max_live`` LRU cap +
``idle_evict_seconds`` age cap): evicted sessions are snapshotted first
if they have un-snapshotted commits — checkpoints make eviction safe by
construction — then dropped from memory, and transparently lazy-restore
(bit-identically) on the next touch.  Sessions with an open interaction
are never evicted (the proposal already advanced the RNG, so a snapshot
is illegal there), and neither are sessions a command currently holds.
"""

from __future__ import annotations

import json
import re
import threading
import time
from contextlib import contextmanager
from pathlib import Path

from repro.core.protocol import ProtocolError, SimulatedDriver
from repro.data.named import load_named_dataset
from repro.experiments.registry import resolve_factory
from repro.io.atomic import atomic_write_text
from repro.io.checkpoint import (
    CheckpointError,
    RotationPolicy,
    load_session_checkpoint,
    rotate_checkpoints,
    save_session_checkpoint,
)
from repro.obs import EngineObserver, MetricsRegistry, current_span, log_event

#: meta.json layout version (bumped on incompatible change; fail-closed).
SESSION_META_VERSION = 1

_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}")

_CKPT_PREFIX = "step-"
_CKPT_SUFFIX = ".ckpt.npz"


class ServeError(RuntimeError):
    """Base class for serve-layer failures; carries an HTTP-ish status."""

    status = 500


class UnknownSessionError(ServeError):
    """No session of that name exists in the manager's root."""

    status = 404


class SessionExistsError(ServeError):
    """A session of that name already exists."""

    status = 409


class SessionConflictError(ServeError):
    """The command is illegal in the session's current protocol state."""

    status = 409


class BadSessionRequest(ServeError):
    """The request itself is malformed (names, payloads, unknown methods)."""

    status = 400


def _validate_name(name: str) -> str:
    """Session names become directory names — keep them path-safe."""
    if not isinstance(name, str) or not _NAME_RE.fullmatch(name):
        raise BadSessionRequest(
            f"invalid session name {name!r}: use 1-64 characters from "
            "[A-Za-z0-9._-], not starting with a punctuation character"
        )
    return name


def _checkpoint_name(iteration: int) -> str:
    return f"{_CKPT_PREFIX}{int(iteration):08d}{_CKPT_SUFFIX}"


def _checkpoint_iteration(path: Path) -> int | None:
    name = path.name
    if not (name.startswith(_CKPT_PREFIX) and name.endswith(_CKPT_SUFFIX)):
        return None
    digits = name[len(_CKPT_PREFIX) : -len(_CKPT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


class _LiveSession:
    """One in-memory session plus its lock and snapshot bookkeeping."""

    def __init__(self, name: str, meta: dict, session) -> None:
        self.name = name
        self.meta = meta
        self.session = session
        self.lock = threading.RLock()
        self.commits_since_snapshot = 0
        self.last_touch = 0.0  # monotonic stamp of the latest _get


class _LoadLatch:
    """One in-flight load (restore or create) of a named session.

    The loading thread owns the latch: it resolves it with either the
    loaded session or the load's exception, then wakes every waiter.
    Waiters re-raise the recorded exception (failed loads are not
    sticky — the latch is unregistered first, so the next touch retries).
    """

    __slots__ = ("done", "live", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.live: _LiveSession | None = None
        self.error: BaseException | None = None


class SessionManager:
    """Named live sessions with periodic rotated snapshots under one root.

    Parameters
    ----------
    root:
        Directory holding one subdirectory per session (created lazily).
    snapshot_every:
        Commit cadence of the periodic snapshots: every this many closed
        interactions (submit *or* decline) the session is checkpointed
        and its directory rotated.
    keep_last / max_age_seconds:
        The :class:`~repro.io.checkpoint.RotationPolicy` applied to each
        session's checkpoint directory after every snapshot.
    max_live:
        Soft cap on in-memory sessions (``None`` = unbounded).  Going
        over the cap evicts least-recently-touched sessions (snapshot
        first if dirty); sessions that are busy or have an open
        interaction are skipped, so the cap can be transiently exceeded.
    idle_evict_seconds:
        Additionally evict sessions untouched for this long (``None`` =
        never).  Checked on every touch and by :meth:`evict`, which a
        server can also call from a periodic sweeper.
    metrics:
        Optional shared :class:`~repro.obs.MetricsRegistry`.  A private
        registry is created when omitted; either way it backs the serve
        front end's ``GET /metrics`` and :meth:`statusz`.
    """

    def __init__(
        self,
        root: str | Path,
        snapshot_every: int = 5,
        keep_last: int = 3,
        max_age_seconds: float | None = None,
        max_live: int | None = None,
        idle_evict_seconds: float | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every}")
        if max_live is not None and max_live < 1:
            raise ValueError(f"max_live must be >= 1 or None, got {max_live}")
        if idle_evict_seconds is not None and idle_evict_seconds <= 0:
            raise ValueError(
                f"idle_evict_seconds must be > 0 or None, got {idle_evict_seconds}"
            )
        self.root = Path(root)
        self.snapshot_every = snapshot_every
        self.policy = RotationPolicy(keep_last=keep_last, max_age_seconds=max_age_seconds)
        self.max_live = max_live
        self.idle_evict_seconds = idle_evict_seconds
        self._lock = threading.Lock()
        self._live: dict[str, _LiveSession] = {}
        self._loading: dict[str, _LoadLatch] = {}
        self._datasets: dict[tuple[str, str, int], object] = {}
        self._datasets_lock = threading.Lock()
        # Observability (ENGINE.md §9).  The registry backs GET /metrics
        # and statusz(); one shared EngineObserver funnels per-session
        # engine attribution into it (bounded labels — phase names and fit
        # modes, never session names).  All of this is process state: it
        # never enters session state_dicts or checkpoints.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        r = self.metrics
        self.observer = EngineObserver(r)
        self._started_wall = time.time()
        self._m_commands = r.counter(
            "repro_serve_commands_total",
            "Manager commands executed, by command and outcome class.",
            ("command", "outcome"),
        )
        self._m_command_seconds = r.histogram(
            "repro_serve_command_seconds",
            "Manager command latency in seconds, by command.",
            ("command",),
        )
        self._m_sessions_live = r.gauge(
            "repro_serve_sessions_live", "Sessions currently held in memory."
        )
        self._m_evictions = r.counter(
            "repro_serve_evictions_total", "Sessions evicted from memory."
        )
        self._m_snapshots = r.counter(
            "repro_serve_snapshots_total", "Session checkpoints written."
        )
        self._m_cold_starts = r.counter(
            "repro_serve_cold_starts_total",
            "Session loads into memory, by kind (create or restore).",
            ("kind",),
        )
        self._m_cold_start_seconds = r.histogram(
            "repro_serve_cold_start_seconds",
            "Wall seconds to bring a session into memory, by kind.",
            ("kind",),
        )
        self._m_latch_wait_seconds = r.histogram(
            "repro_serve_latch_wait_seconds",
            "Wall seconds commands waited on another thread's in-flight load.",
        )
        self._m_restore_failures = r.counter(
            "repro_serve_restore_failures_total", "Session loads that raised."
        )

    #: Monotonic clock for touch stamps / idle ages (patchable in tests).
    _now = staticmethod(time.monotonic)

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    def session_dir(self, name: str) -> Path:
        return self.root / name

    def _meta_path(self, name: str) -> Path:
        return self.session_dir(name) / "meta.json"

    def _checkpoint_files(self, name: str) -> list[Path]:
        """This session's snapshots, oldest → newest (iteration order).

        Ordered by the *parsed* iteration, not the filename string: the
        zero padding is 8 digits, so iterations ≥ 10^8 widen the field
        and a lexicographic sort would rank ``step-100000000`` before
        ``step-99999999`` — breaking newest-first restore.
        """
        directory = self.session_dir(name)
        if not directory.exists():
            return []
        found = [
            p
            for p in directory.glob(f"{_CKPT_PREFIX}*{_CKPT_SUFFIX}")
            if _checkpoint_iteration(p) is not None
        ]
        return sorted(found, key=_checkpoint_iteration)

    # ------------------------------------------------------------------ #
    # construction / restore
    # ------------------------------------------------------------------ #
    def _dataset(self, meta: dict):
        """The (cached) dataset behind a meta record.

        Thread-safe without holding the manager lock: misses are loaded
        under a dedicated lock per cache, so a cold-start storm builds
        each dataset once while session restores proceed in parallel.
        """
        key = (meta["dataset"], meta["scale"], int(meta["dataset_seed"]))
        with self._datasets_lock:
            dataset = self._datasets.get(key)
            if dataset is None:
                dataset = self._datasets[key] = load_named_dataset(
                    key[0], scale=key[1], seed=key[2]
                )
        return dataset

    def _build_session(self, meta: dict):
        """A fresh (iteration-0) session from a meta record."""
        try:
            factory = resolve_factory(
                meta["method"], meta["dataset"], float(meta["user_threshold"])
            )
        except ValueError as exc:
            raise BadSessionRequest(str(exc)) from exc
        session = factory(self._dataset(meta), int(meta["seed"]))
        if not (hasattr(session, "propose") and hasattr(session, "state_dict")):
            raise BadSessionRequest(
                f"method {meta['method']!r} does not speak the session protocol "
                "(active-learning baselines drive their own loop and cannot be "
                "served interactively)"
            )
        # Transient wiring only — the observer never enters state_dict, so
        # checkpoints stay bit-identical with or without it.
        session.observer = self.observer
        return session

    def create(
        self,
        name: str,
        method: str = "nemo",
        dataset: str = "amazon",
        scale: str = "tiny",
        seed: int = 0,
        user_threshold: float = 0.5,
        dataset_seed: int = 0,
    ) -> dict:
        """Create, persist, and register a new named session.

        The configuration is pinned to ``meta.json`` (checkpoints carry
        fitted state only — restore always reconstructs the session from
        this record) and an iteration-0 snapshot is written immediately,
        so even a server killed before the first commit restarts cleanly.

        The name is reserved under the manager lock (a loading latch, so
        concurrent creates/touches of the same name serialize) but the
        session is built and snapshotted *outside* it — a create storm
        does not stall every other session's traffic.
        """
        with self._observe("create"):
            return self._create(
                name, method, dataset, scale, seed, user_threshold, dataset_seed
            )

    def _create(
        self,
        name: str,
        method: str,
        dataset: str,
        scale: str,
        seed: int,
        user_threshold: float,
        dataset_seed: int,
    ) -> dict:
        name = _validate_name(name)
        meta = {
            "format_version": SESSION_META_VERSION,
            "name": name,
            "method": str(method),
            "dataset": str(dataset),
            "scale": str(scale),
            "seed": int(seed),
            "user_threshold": float(user_threshold),
            "dataset_seed": int(dataset_seed),
            "created_at": time.time(),
        }
        with self._lock:
            if (
                name in self._live
                or name in self._loading
                or self._meta_path(name).exists()
            ):
                raise SessionExistsError(f"session {name!r} already exists")
            latch = self._loading[name] = _LoadLatch()
        t0 = time.perf_counter()
        try:
            session = self._build_session(meta)
            atomic_write_text(self._meta_path(name), json.dumps(meta, indent=2) + "\n")
            live = _LiveSession(name, meta, session)
            with live.lock:  # uncontended — the session is not registered yet
                self._snapshot_locked(live)
                info = self._info_locked(live)
        except BaseException as exc:
            with self._lock:
                self._loading.pop(name, None)
            latch.error = exc
            latch.done.set()
            raise
        self._record_cold_start("create", time.perf_counter() - t0)
        self._resolve_latch(name, latch, live)
        self.evict()
        return info

    def _read_meta(self, name: str) -> dict:
        path = self._meta_path(name)
        try:
            meta = json.loads(path.read_text())
        except FileNotFoundError:
            raise UnknownSessionError(f"no session named {name!r}") from None
        except ValueError as exc:
            raise ServeError(f"{path} is corrupted: {exc}") from exc
        if not isinstance(meta, dict) or meta.get("format_version") != SESSION_META_VERSION:
            raise ServeError(
                f"{path} has unsupported format_version "
                f"{meta.get('format_version') if isinstance(meta, dict) else None!r}"
            )
        return meta

    def _restore(self, name: str) -> _LiveSession:
        """Rebuild a session from disk: meta.json + the newest checkpoint.

        Tries checkpoints newest-first; a file that fails the fail-closed
        load is skipped (each attempt restores onto a *fresh* session, so
        a partial restore never leaks into the next attempt).  Existing
        checkpoints that all fail are an error — silently restarting a
        long-lived session from iteration 0 would be data loss.
        """
        meta = self._read_meta(name)
        checkpoints = self._checkpoint_files(name)
        session = self._build_session(meta)
        if checkpoints:
            restored = False
            for path in reversed(checkpoints):
                try:
                    load_session_checkpoint(session, path)
                    restored = True
                    break
                except CheckpointError:
                    session = self._build_session(meta)  # discard partial state
            if not restored:
                raise ServeError(
                    f"session {name!r} has {len(checkpoints)} checkpoint(s) but "
                    "none could be restored; refusing to restart from scratch"
                )
        return _LiveSession(name, meta, session)

    def _record_cold_start(self, kind: str, seconds: float) -> None:
        """Account one session load; annotates the current span if any."""
        self._m_cold_starts.inc(kind)
        self._m_cold_start_seconds.observe(kind, value=seconds)
        span = current_span()
        if span is not None:
            span.event("cold_start", kind=kind, seconds=round(seconds, 6))

    def _resolve_latch(self, name: str, latch: _LoadLatch, live: _LiveSession) -> None:
        """Publish a freshly loaded session and wake the latch's waiters."""
        with self._lock:
            self._live[name] = live
            self._loading.pop(name, None)
            live.last_touch = self._now()
            self._m_sessions_live.set(value=len(self._live))
        latch.live = live
        latch.done.set()

    def _get(self, name: str) -> _LiveSession:
        """The live session for ``name``, lazily restoring from disk.

        The restore itself runs *outside* the manager lock: the first
        toucher registers a per-name latch and loads; concurrent touches
        of the same name wait on that latch (never double-load), while
        touches of other names proceed — a cold-start storm over K
        sessions restores them in parallel, not serially.
        """
        name = _validate_name(name)
        while True:
            with self._lock:
                live = self._live.get(name)
                if live is not None:
                    live.last_touch = self._now()
                    return live
                latch = self._loading.get(name)
                if latch is None:
                    latch = self._loading[name] = _LoadLatch()
                    break  # this thread owns the load
            t_wait = time.perf_counter()
            latch.done.wait()
            waited = time.perf_counter() - t_wait
            self._m_latch_wait_seconds.observe(value=waited)
            span = current_span()
            if span is not None:
                span.add_phase("latch_wait", waited)
            if latch.error is not None:
                raise latch.error
            # Loaded by the latch owner — loop to take the fast path (and
            # handle the rare immediate-eviction race by restoring again).
            if latch.live is not None and self._live.get(name) is latch.live:
                with self._lock:
                    latch.live.last_touch = self._now()
                return latch.live
        t0 = time.perf_counter()
        try:
            live = self._restore(name)
        except BaseException as exc:
            self._m_restore_failures.inc()
            with self._lock:
                self._loading.pop(name, None)
            latch.error = exc
            latch.done.set()
            raise
        self._record_cold_start("restore", time.perf_counter() - t0)
        self._resolve_latch(name, latch, live)
        self.evict()
        return live

    @contextmanager
    def _command(self, name: str):
        """Acquire ``name``'s session under its lock, eviction-safe.

        Between ``_get`` returning a live session and the caller entering
        its lock, the eviction sweep may have snapshotted and dropped that
        object; commands must not mutate an orphan.  This re-checks
        registration *after* acquiring the session lock and retries (the
        retry lazy-restores from the eviction snapshot, bit-identically).
        Eviction skips sessions whose lock is held, so once inside the
        session cannot be evicted.
        """
        while True:
            live = self._get(name)
            with live.lock:
                with self._lock:
                    current = self._live.get(name) is live
                if current:
                    yield live
                    return

    # ------------------------------------------------------------------ #
    # snapshots / eviction
    # ------------------------------------------------------------------ #
    def _snapshot_locked(self, live: _LiveSession) -> Path:
        session = live.session
        path = self.session_dir(live.name) / _checkpoint_name(session.iteration)
        save_session_checkpoint(
            session,
            path,
            extra={"name": live.name, "iteration": int(session.iteration)},
        )
        rotate_checkpoints(self.session_dir(live.name), self.policy)
        live.commits_since_snapshot = 0
        self._m_snapshots.inc()
        span = current_span()
        if span is not None:
            span.event("snapshot", iteration=int(session.iteration))
        return path

    def _after_commit_locked(self, live: _LiveSession) -> bool:
        """Count a closed interaction; snapshot when the cadence is due.

        Caller holds ``live.lock`` (the ``_locked`` suffix is the
        contract — enforced by ``repro lint``'s serve-lock-discipline
        rule).
        """
        live.commits_since_snapshot += 1
        if live.commits_since_snapshot >= self.snapshot_every:
            self._snapshot_locked(live)
            return True
        return False

    def snapshot(self, name: str) -> dict:
        """Force a snapshot now (between interactions only)."""
        with self._observe("snapshot"), self._command(name) as live:
            if live.session.pending is not None:
                raise SessionConflictError(
                    "cannot snapshot with an open interaction; submit or "
                    "decline it first"
                )
            path = self._snapshot_locked(live)
            return {"name": name, "path": str(path), "iteration": int(live.session.iteration)}

    def _pick_victim(self) -> _LiveSession | None:
        """Select and lock one evictable session, or ``None``.

        Runs under the manager lock; the victim's session lock is
        acquired *non-blocking* (a busy session is in use, not idle) and
        stays held by the caller.  Sessions with an open interaction are
        refused — their RNG already advanced past the last snapshot, so
        evicting them would lose the proposal.
        """
        over = self.max_live is not None and len(self._live) > self.max_live
        now = self._now()
        candidates = sorted(self._live.values(), key=lambda l: l.last_touch)
        newest = candidates[-1] if candidates else None
        for live in candidates:
            idle = (
                self.idle_evict_seconds is not None
                and now - live.last_touch >= self.idle_evict_seconds
            )
            if not over and not idle:
                break  # candidates are LRU-sorted: the rest are newer still
            if live is newest and not idle:
                # Never cap-evict the hottest session (e.g. the one just
                # created): when everything older is pinned, the cap is
                # transiently exceeded instead.
                continue
            if not live.lock.acquire(blocking=False):
                continue
            if live.session.pending is not None:
                live.lock.release()
                continue
            return live
        return None

    def evict(self) -> list[str]:
        """Apply the eviction policy now; returns the evicted names.

        Runs automatically after every touch that grew the live map, and
        is safe to call from a periodic sweeper.  Each victim is
        snapshotted first if it has un-snapshotted commits (the disk
        write happens *outside* the manager lock, under the victim's own
        session lock), then dropped from memory — the next touch
        lazy-restores it from that snapshot, bit-identically.
        """
        if self.max_live is None and self.idle_evict_seconds is None:
            return []
        evicted: list[str] = []
        while True:
            with self._lock:
                victim = self._pick_victim()
            if victim is None:
                return evicted
            try:
                if victim.commits_since_snapshot > 0:
                    self._snapshot_locked(victim)  # repro-lint: disable=serve-lock-discipline -- victim.lock was acquired non-blocking by _pick_victim and is held until the finally below releases it
                with self._lock:
                    if self._live.get(victim.name) is victim:
                        del self._live[victim.name]
                        evicted.append(victim.name)
                        self._m_evictions.inc()
                        self._m_sessions_live.set(value=len(self._live))
                        span = current_span()
                        if span is not None:
                            span.event("eviction", session=victim.name)
                        log_event("session_evicted", session=victim.name)
            finally:
                victim.lock.release()

    # ------------------------------------------------------------------ #
    # command accounting
    # ------------------------------------------------------------------ #
    @contextmanager
    def _observe(self, command: str):
        """Time one public command into the registry (and current span).

        Outcome labels are a bounded class — ``ok``, ``client_error``
        (4xx-status serve errors), ``conflict`` (protocol), ``error`` —
        never raw messages or session names.
        """
        t0 = time.perf_counter()
        outcome = "ok"
        try:
            yield
        except ServeError as exc:
            outcome = "client_error" if exc.status < 500 else "error"
            raise
        except ProtocolError:
            outcome = "conflict"
            raise
        except BaseException:
            outcome = "error"
            raise
        finally:
            elapsed = time.perf_counter() - t0
            self._m_commands.inc(command, outcome)
            self._m_command_seconds.observe(command, value=elapsed)
            span = current_span()
            if span is not None:
                span.add_phase(f"manager.{command}", elapsed)

    # ------------------------------------------------------------------ #
    # interaction commands
    # ------------------------------------------------------------------ #
    def propose(self, name: str) -> dict:
        """Run the selector; return the candidate interaction (idempotent)."""
        with self._observe("propose"), self._command(name) as live:
            session = live.session
            pending = session.propose()
            if pending.dev_index is None:
                primitives: list[str] = []
            else:
                family = session.family
                primitives = [
                    family.primitive_names[int(pid)]
                    for pid in family.primitives_in(pending.dev_index)
                ]
            return {
                "name": name,
                "token": int(pending.token),
                "iteration": int(pending.iteration),
                "dev_index": pending.dev_index,
                "primitives": primitives,
                "n_lfs": len(session.lfs),
            }

    def submit(self, name: str, primitive: str, label: int) -> dict:
        """Commit an LF (by primitive token) for the open interaction."""
        with self._observe("submit"), self._command(name) as live:
            session = live.session
            try:
                lf = session.family.make_by_token(str(primitive), int(label))
            except KeyError as exc:
                raise BadSessionRequest(str(exc)) from exc
            except (TypeError, ValueError) as exc:
                raise BadSessionRequest(f"invalid LF payload: {exc}") from exc
            try:
                pending = session.submit(lf)
            except ProtocolError as exc:
                raise SessionConflictError(str(exc)) from exc
            except Exception as exc:
                if session.pending is not None:
                    # Staging rejected the LF before the commit point: the
                    # interaction is still open for a corrected retry.
                    if isinstance(exc, ValueError):
                        raise BadSessionRequest(str(exc)) from exc
                    raise
                # The commit is durable (the engine clears the pending at
                # its commit point); only the post-commit refit failed.
                # Count the commit toward the snapshot cadence and say
                # what actually happened — a 400 here would invite a
                # retry against an interaction that no longer exists.
                self._after_commit_locked(live)
                raise ServeError(
                    f"LF committed at iteration {session.iteration} but the "
                    f"refit failed: {exc}"
                ) from exc
            snapshotted = self._after_commit_locked(live)
            return {
                "name": name,
                "outcome": "submitted",
                "iteration": int(session.iteration),
                "dev_index": int(pending.dev_index),
                "lf": {"primitive": str(lf.primitive), "label": int(lf.label)},
                "n_lfs": len(session.lfs),
                "snapshotted": snapshotted,
            }

    def decline(self, name: str) -> dict:
        """Close the open interaction without an LF."""
        with self._observe("decline"), self._command(name) as live:
            session = live.session
            try:
                pending = session.decline()
            except ProtocolError as exc:
                raise SessionConflictError(str(exc)) from exc
            snapshotted = self._after_commit_locked(live)
            return {
                "name": name,
                "outcome": "declined",
                "iteration": int(session.iteration),
                "dev_index": pending.dev_index,
                "n_lfs": len(session.lfs),
                "snapshotted": snapshotted,
            }

    def step(self, name: str) -> dict:
        """One interaction answered by the session's own simulated user.

        Drives the same propose → submit/decline commands a remote client
        would issue, so simulated and live traffic share one code path;
        the user's RNG stream is part of the session snapshot, making
        stepped sessions restore bit-identically too.
        """
        with self._observe("step"), self._command(name) as live:
            session = live.session
            if session.pending is not None:
                raise SessionConflictError(
                    "cannot auto-step with an open interaction; submit or "
                    "decline it first"
                )
            outcome = SimulatedDriver(session).step()
            snapshotted = self._after_commit_locked(live)
            return {
                "name": name,
                "outcome": outcome.kind,
                "iteration": int(session.iteration),
                "dev_index": outcome.dev_index,
                "lf": (
                    None
                    if outcome.lf is None
                    else {
                        "primitive": str(outcome.lf.primitive),
                        "label": int(outcome.lf.label),
                    }
                ),
                "n_lfs": len(session.lfs),
                "snapshotted": snapshotted,
            }

    def score(self, name: str) -> dict:
        """The session's current test-split score."""
        with self._observe("score"), self._command(name) as live:
            return {
                "name": name,
                "iteration": int(live.session.iteration),
                "test_score": float(live.session.test_score()),
            }

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def _info_locked(self, live: _LiveSession) -> dict:
        session = live.session
        meta = live.meta
        checkpoints = self._checkpoint_files(live.name)
        latest = checkpoints[-1] if checkpoints else None
        return {
            "name": live.name,
            "method": meta["method"],
            "dataset": meta["dataset"],
            "scale": meta["scale"],
            "seed": int(meta["seed"]),
            "iteration": int(session.iteration),
            "n_lfs": len(session.lfs),
            "lfs": [
                {"primitive": str(lf.primitive), "label": int(lf.label)}
                for lf in session.lfs
            ],
            "pending": session.pending is not None,
            "live": True,
            "n_checkpoints": len(checkpoints),
            "last_snapshot_iteration": (
                None if latest is None else _checkpoint_iteration(latest)
            ),
            "last_snapshot_age_seconds": (
                None if latest is None else max(0.0, time.time() - latest.stat().st_mtime)
            ),
        }

    def info(self, name: str) -> dict:
        """Full info for one session (loads it if not yet in memory)."""
        with self._observe("info"), self._command(name) as live:
            return self._info_locked(live)

    def statusz(self) -> dict:
        """A JSON-safe operational snapshot of the whole manager.

        Backs ``GET /statusz`` and ``repro metrics``: session population
        (live / loading / stored on disk), per-command latency summaries
        estimated from the registry histograms, cold-start stats,
        snapshot-cadence health (how far live sessions have drifted past
        ``snapshot_every`` without a checkpoint), and the engine-side
        phase/refit aggregates the shared observer accumulated.  Pure
        read: touches no session locks beyond the manager registry lock,
        restores nothing, and mutates no counters.
        """
        with self._lock:
            live = list(self._live.values())
            loading = len(self._loading)
        stored = 0
        if self.root.exists():
            stored = sum(
                1
                for child in self.root.iterdir()
                if child.is_dir() and (child / "meta.json").exists()
            )
        # Reading pending/commits without the session locks is a benign
        # race: statusz reports a point-in-time estimate, not a contract.
        open_interactions = sum(1 for l in live if l.session.pending is not None)
        dirty = [l.commits_since_snapshot for l in live if l.commits_since_snapshot > 0]

        def _latency(histogram, *labels):
            count = histogram.count(*labels)
            if count == 0:
                return {"count": 0, "p50_ms": None, "p99_ms": None}
            return {
                "count": int(count),
                "p50_ms": round(histogram.quantile(0.5, *labels) * 1000.0, 3),
                "p99_ms": round(histogram.quantile(0.99, *labels) * 1000.0, 3),
            }

        commands = {}
        for (command, outcome), count in self._m_commands.items():
            entry = commands.setdefault(command, {"by_outcome": {}})
            entry["by_outcome"][outcome] = int(count)
        for command, entry in commands.items():
            entry.update(_latency(self._m_command_seconds, command))
        return {
            "uptime_seconds": round(time.time() - self._started_wall, 3),
            "sessions": {
                "live": len(live),
                "loading": loading,
                "stored": stored,
                "open_interactions": open_interactions,
                "created_total": int(self._m_cold_starts.value("create")),
                "restored_total": int(self._m_cold_starts.value("restore")),
                "evicted_total": int(self._m_evictions.value()),
                "restore_failures_total": int(self._m_restore_failures.value()),
            },
            "snapshots": {
                "total": int(self._m_snapshots.value()),
                "cadence_commits": int(self.snapshot_every),
                "dirty_sessions": len(dirty),
                "max_commits_since_snapshot": max(dirty, default=0),
            },
            "cold_starts": {
                kind: _latency(self._m_cold_start_seconds, kind)
                for kind in ("create", "restore")
            },
            "latch_waits": _latency(self._m_latch_wait_seconds),
            "commands": commands,
            "engine": {
                "commands": {
                    cmd: int(v) for (cmd,), v in self.observer.commands.items()
                },
                "phase_seconds": {
                    phase: round(v, 6)
                    for (phase,), v in self.observer.phase_seconds.items()
                },
                "refits": {
                    path: int(v) for (path,), v in self.observer.refits.items()
                },
                "end_fits": {
                    mode: int(v) for (mode,), v in self.observer.end_fits.items()
                },
                "open_interval_seconds": round(
                    self.observer.open_interval_seconds.value(), 6
                ),
            },
        }

    def sessions(self) -> list[dict]:
        """Summaries of every stored session, *without* restoring them.

        Disk-only sessions are summarized from ``meta.json`` plus their
        newest checkpoint's filename (which encodes the iteration) and
        mtime — listing a thousand sessions must not deserialize a
        thousand engines.  Sessions already in memory report their live
        iteration instead.  The live map is snapshotted under the manager
        lock first: iterating it bare would race concurrent
        creates/restores/evictions into a ``RuntimeError``.
        """
        with self._observe("list"):
            return self._sessions()

    def _sessions(self) -> list[dict]:
        with self._lock:
            live_map = dict(self._live)
        names: set[str] = set(live_map)
        if self.root.exists():
            for child in self.root.iterdir():
                if child.is_dir() and (child / "meta.json").exists():
                    names.add(child.name)
        infos = []
        for name in sorted(names):
            live = live_map.get(name)
            if live is not None:
                with live.lock:
                    infos.append(self._info_locked(live))
                continue
            try:
                meta = self._read_meta(name)
            except ServeError:
                continue  # unreadable entry; skip rather than kill the listing
            checkpoints = self._checkpoint_files(name)
            latest = checkpoints[-1] if checkpoints else None
            infos.append(
                {
                    "name": name,
                    "method": meta["method"],
                    "dataset": meta["dataset"],
                    "scale": meta["scale"],
                    "seed": int(meta["seed"]),
                    "iteration": (
                        None if latest is None else _checkpoint_iteration(latest)
                    ),
                    "pending": False,
                    "live": False,
                    "n_checkpoints": len(checkpoints),
                    "last_snapshot_iteration": (
                        None if latest is None else _checkpoint_iteration(latest)
                    ),
                    "last_snapshot_age_seconds": (
                        None
                        if latest is None
                        else max(0.0, time.time() - latest.stat().st_mtime)
                    ),
                }
            )
        return infos
