"""Many named live IDP sessions behind one durable, lock-guarded manager.

The :class:`SessionManager` is the serve layer's core: it owns a root
directory of named sessions, each a protocol-capable IDP session
(:mod:`repro.core.protocol`) built from the method registry, and keeps
them durable through the PR-4 checkpoint layer:

* every session directory holds ``meta.json`` (the *configuration* —
  method, dataset, scale, seed, threshold; checkpoints deliberately carry
  fitted state only) plus rotated ``step-NNNNNNNN.ckpt.npz`` snapshots;
* snapshots are written at commit boundaries every ``snapshot_every``
  commits (and on demand), then rotated under the
  :class:`~repro.io.checkpoint.RotationPolicy` (``keep_last`` + age cap);
* a manager started over an existing root lazily restores each session
  from its newest checkpoint on first touch — a killed server therefore
  resumes mid-session and continues bit-identically (proposals replay
  from the restored RNG streams; see ENGINE.md §6).

Concurrency: every session carries its own lock, so interactions on
different sessions proceed in parallel under a threaded front end while
commands on one session serialize; the manager-wide lock only guards the
registry map and disk loads.  Sessions share nothing — RNG streams, refit
caches, and phase timings are all per-session state (pinned by the
multi-session isolation tests).
"""

from __future__ import annotations

import json
import re
import threading
import time
from pathlib import Path

from repro.core.protocol import ProtocolError, SimulatedDriver
from repro.data.named import load_named_dataset
from repro.experiments.registry import resolve_factory
from repro.io.atomic import atomic_write_text
from repro.io.checkpoint import (
    CheckpointError,
    RotationPolicy,
    load_session_checkpoint,
    rotate_checkpoints,
    save_session_checkpoint,
)

#: meta.json layout version (bumped on incompatible change; fail-closed).
SESSION_META_VERSION = 1

_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}")

_CKPT_PREFIX = "step-"
_CKPT_SUFFIX = ".ckpt.npz"


class ServeError(RuntimeError):
    """Base class for serve-layer failures; carries an HTTP-ish status."""

    status = 500


class UnknownSessionError(ServeError):
    """No session of that name exists in the manager's root."""

    status = 404


class SessionExistsError(ServeError):
    """A session of that name already exists."""

    status = 409


class SessionConflictError(ServeError):
    """The command is illegal in the session's current protocol state."""

    status = 409


class BadSessionRequest(ServeError):
    """The request itself is malformed (names, payloads, unknown methods)."""

    status = 400


def _validate_name(name: str) -> str:
    """Session names become directory names — keep them path-safe."""
    if not isinstance(name, str) or not _NAME_RE.fullmatch(name):
        raise BadSessionRequest(
            f"invalid session name {name!r}: use 1-64 characters from "
            "[A-Za-z0-9._-], not starting with a punctuation character"
        )
    return name


def _checkpoint_name(iteration: int) -> str:
    return f"{_CKPT_PREFIX}{int(iteration):08d}{_CKPT_SUFFIX}"


def _checkpoint_iteration(path: Path) -> int | None:
    name = path.name
    if not (name.startswith(_CKPT_PREFIX) and name.endswith(_CKPT_SUFFIX)):
        return None
    digits = name[len(_CKPT_PREFIX) : -len(_CKPT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


class _LiveSession:
    """One in-memory session plus its lock and snapshot bookkeeping."""

    def __init__(self, name: str, meta: dict, session) -> None:
        self.name = name
        self.meta = meta
        self.session = session
        self.lock = threading.RLock()
        self.commits_since_snapshot = 0


class SessionManager:
    """Named live sessions with periodic rotated snapshots under one root.

    Parameters
    ----------
    root:
        Directory holding one subdirectory per session (created lazily).
    snapshot_every:
        Commit cadence of the periodic snapshots: every this many closed
        interactions (submit *or* decline) the session is checkpointed
        and its directory rotated.
    keep_last / max_age_seconds:
        The :class:`~repro.io.checkpoint.RotationPolicy` applied to each
        session's checkpoint directory after every snapshot.
    """

    def __init__(
        self,
        root: str | Path,
        snapshot_every: int = 5,
        keep_last: int = 3,
        max_age_seconds: float | None = None,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every}")
        self.root = Path(root)
        self.snapshot_every = snapshot_every
        self.policy = RotationPolicy(keep_last=keep_last, max_age_seconds=max_age_seconds)
        self._lock = threading.Lock()
        self._live: dict[str, _LiveSession] = {}
        self._datasets: dict[tuple[str, str, int], object] = {}

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    def session_dir(self, name: str) -> Path:
        return self.root / name

    def _meta_path(self, name: str) -> Path:
        return self.session_dir(name) / "meta.json"

    def _checkpoint_files(self, name: str) -> list[Path]:
        """This session's snapshots, oldest → newest (iteration order)."""
        directory = self.session_dir(name)
        if not directory.exists():
            return []
        found = [
            p
            for p in directory.glob(f"{_CKPT_PREFIX}*{_CKPT_SUFFIX}")
            if _checkpoint_iteration(p) is not None
        ]
        return sorted(found, key=lambda p: p.name)

    # ------------------------------------------------------------------ #
    # construction / restore
    # ------------------------------------------------------------------ #
    def _dataset(self, meta: dict):
        key = (meta["dataset"], meta["scale"], int(meta["dataset_seed"]))
        if key not in self._datasets:
            self._datasets[key] = load_named_dataset(key[0], scale=key[1], seed=key[2])
        return self._datasets[key]

    def _build_session(self, meta: dict):
        """A fresh (iteration-0) session from a meta record."""
        try:
            factory = resolve_factory(
                meta["method"], meta["dataset"], float(meta["user_threshold"])
            )
        except ValueError as exc:
            raise BadSessionRequest(str(exc)) from exc
        session = factory(self._dataset(meta), int(meta["seed"]))
        if not (hasattr(session, "propose") and hasattr(session, "state_dict")):
            raise BadSessionRequest(
                f"method {meta['method']!r} does not speak the session protocol "
                "(active-learning baselines drive their own loop and cannot be "
                "served interactively)"
            )
        return session

    def create(
        self,
        name: str,
        method: str = "nemo",
        dataset: str = "amazon",
        scale: str = "tiny",
        seed: int = 0,
        user_threshold: float = 0.5,
        dataset_seed: int = 0,
    ) -> dict:
        """Create, persist, and register a new named session.

        The configuration is pinned to ``meta.json`` (checkpoints carry
        fitted state only — restore always reconstructs the session from
        this record) and an iteration-0 snapshot is written immediately,
        so even a server killed before the first commit restarts cleanly.
        """
        name = _validate_name(name)
        meta = {
            "format_version": SESSION_META_VERSION,
            "name": name,
            "method": str(method),
            "dataset": str(dataset),
            "scale": str(scale),
            "seed": int(seed),
            "user_threshold": float(user_threshold),
            "dataset_seed": int(dataset_seed),
            "created_at": time.time(),
        }
        with self._lock:
            if name in self._live or self._meta_path(name).exists():
                raise SessionExistsError(f"session {name!r} already exists")
            session = self._build_session(meta)
            atomic_write_text(self._meta_path(name), json.dumps(meta, indent=2) + "\n")
            live = _LiveSession(name, meta, session)
            self._live[name] = live
        with live.lock:
            self._snapshot_locked(live)
            return self._info_locked(live)

    def _read_meta(self, name: str) -> dict:
        path = self._meta_path(name)
        try:
            meta = json.loads(path.read_text())
        except FileNotFoundError:
            raise UnknownSessionError(f"no session named {name!r}") from None
        except ValueError as exc:
            raise ServeError(f"{path} is corrupted: {exc}") from exc
        if not isinstance(meta, dict) or meta.get("format_version") != SESSION_META_VERSION:
            raise ServeError(
                f"{path} has unsupported format_version "
                f"{meta.get('format_version') if isinstance(meta, dict) else None!r}"
            )
        return meta

    def _restore(self, name: str) -> _LiveSession:
        """Rebuild a session from disk: meta.json + the newest checkpoint.

        Tries checkpoints newest-first; a file that fails the fail-closed
        load is skipped (each attempt restores onto a *fresh* session, so
        a partial restore never leaks into the next attempt).  Existing
        checkpoints that all fail are an error — silently restarting a
        long-lived session from iteration 0 would be data loss.
        """
        meta = self._read_meta(name)
        checkpoints = self._checkpoint_files(name)
        session = self._build_session(meta)
        if checkpoints:
            restored = False
            for path in reversed(checkpoints):
                try:
                    load_session_checkpoint(session, path)
                    restored = True
                    break
                except CheckpointError:
                    session = self._build_session(meta)  # discard partial state
            if not restored:
                raise ServeError(
                    f"session {name!r} has {len(checkpoints)} checkpoint(s) but "
                    "none could be restored; refusing to restart from scratch"
                )
        return _LiveSession(name, meta, session)

    def _get(self, name: str) -> _LiveSession:
        name = _validate_name(name)
        with self._lock:
            live = self._live.get(name)
            if live is None:
                live = self._restore(name)
                self._live[name] = live
            return live

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #
    def _snapshot_locked(self, live: _LiveSession) -> Path:
        session = live.session
        path = self.session_dir(live.name) / _checkpoint_name(session.iteration)
        save_session_checkpoint(
            session,
            path,
            extra={"name": live.name, "iteration": int(session.iteration)},
        )
        rotate_checkpoints(self.session_dir(live.name), self.policy)
        live.commits_since_snapshot = 0
        return path

    def _after_commit(self, live: _LiveSession) -> bool:
        live.commits_since_snapshot += 1
        if live.commits_since_snapshot >= self.snapshot_every:
            self._snapshot_locked(live)
            return True
        return False

    def snapshot(self, name: str) -> dict:
        """Force a snapshot now (between interactions only)."""
        live = self._get(name)
        with live.lock:
            if live.session.pending is not None:
                raise SessionConflictError(
                    "cannot snapshot with an open interaction; submit or "
                    "decline it first"
                )
            path = self._snapshot_locked(live)
            return {"name": name, "path": str(path), "iteration": int(live.session.iteration)}

    # ------------------------------------------------------------------ #
    # interaction commands
    # ------------------------------------------------------------------ #
    def propose(self, name: str) -> dict:
        """Run the selector; return the candidate interaction (idempotent)."""
        live = self._get(name)
        with live.lock:
            session = live.session
            pending = session.propose()
            if pending.dev_index is None:
                primitives: list[str] = []
            else:
                family = session.family
                primitives = [
                    family.primitive_names[int(pid)]
                    for pid in family.primitives_in(pending.dev_index)
                ]
            return {
                "name": name,
                "token": int(pending.token),
                "iteration": int(pending.iteration),
                "dev_index": pending.dev_index,
                "primitives": primitives,
                "n_lfs": len(session.lfs),
            }

    def submit(self, name: str, primitive: str, label: int) -> dict:
        """Commit an LF (by primitive token) for the open interaction."""
        live = self._get(name)
        with live.lock:
            session = live.session
            try:
                lf = session.family.make_by_token(str(primitive), int(label))
            except KeyError as exc:
                raise BadSessionRequest(str(exc)) from exc
            except (TypeError, ValueError) as exc:
                raise BadSessionRequest(f"invalid LF payload: {exc}") from exc
            try:
                pending = session.submit(lf)
            except ProtocolError as exc:
                raise SessionConflictError(str(exc)) from exc
            except Exception as exc:
                if session.pending is not None:
                    # Staging rejected the LF before the commit point: the
                    # interaction is still open for a corrected retry.
                    if isinstance(exc, ValueError):
                        raise BadSessionRequest(str(exc)) from exc
                    raise
                # The commit is durable (the engine clears the pending at
                # its commit point); only the post-commit refit failed.
                # Count the commit toward the snapshot cadence and say
                # what actually happened — a 400 here would invite a
                # retry against an interaction that no longer exists.
                self._after_commit(live)
                raise ServeError(
                    f"LF committed at iteration {session.iteration} but the "
                    f"refit failed: {exc}"
                ) from exc
            snapshotted = self._after_commit(live)
            return {
                "name": name,
                "outcome": "submitted",
                "iteration": int(session.iteration),
                "dev_index": int(pending.dev_index),
                "lf": {"primitive": str(lf.primitive), "label": int(lf.label)},
                "n_lfs": len(session.lfs),
                "snapshotted": snapshotted,
            }

    def decline(self, name: str) -> dict:
        """Close the open interaction without an LF."""
        live = self._get(name)
        with live.lock:
            session = live.session
            try:
                pending = session.decline()
            except ProtocolError as exc:
                raise SessionConflictError(str(exc)) from exc
            snapshotted = self._after_commit(live)
            return {
                "name": name,
                "outcome": "declined",
                "iteration": int(session.iteration),
                "dev_index": pending.dev_index,
                "n_lfs": len(session.lfs),
                "snapshotted": snapshotted,
            }

    def step(self, name: str) -> dict:
        """One interaction answered by the session's own simulated user.

        Drives the same propose → submit/decline commands a remote client
        would issue, so simulated and live traffic share one code path;
        the user's RNG stream is part of the session snapshot, making
        stepped sessions restore bit-identically too.
        """
        live = self._get(name)
        with live.lock:
            session = live.session
            if session.pending is not None:
                raise SessionConflictError(
                    "cannot auto-step with an open interaction; submit or "
                    "decline it first"
                )
            outcome = SimulatedDriver(session).step()
            snapshotted = self._after_commit(live)
            return {
                "name": name,
                "outcome": outcome.kind,
                "iteration": int(session.iteration),
                "dev_index": outcome.dev_index,
                "lf": (
                    None
                    if outcome.lf is None
                    else {
                        "primitive": str(outcome.lf.primitive),
                        "label": int(outcome.lf.label),
                    }
                ),
                "n_lfs": len(session.lfs),
                "snapshotted": snapshotted,
            }

    def score(self, name: str) -> dict:
        """The session's current test-split score."""
        live = self._get(name)
        with live.lock:
            return {
                "name": name,
                "iteration": int(live.session.iteration),
                "test_score": float(live.session.test_score()),
            }

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def _info_locked(self, live: _LiveSession) -> dict:
        session = live.session
        meta = live.meta
        checkpoints = self._checkpoint_files(live.name)
        latest = checkpoints[-1] if checkpoints else None
        return {
            "name": live.name,
            "method": meta["method"],
            "dataset": meta["dataset"],
            "scale": meta["scale"],
            "seed": int(meta["seed"]),
            "iteration": int(session.iteration),
            "n_lfs": len(session.lfs),
            "lfs": [
                {"primitive": str(lf.primitive), "label": int(lf.label)}
                for lf in session.lfs
            ],
            "pending": session.pending is not None,
            "live": True,
            "n_checkpoints": len(checkpoints),
            "last_snapshot_iteration": (
                None if latest is None else _checkpoint_iteration(latest)
            ),
            "last_snapshot_age_seconds": (
                None if latest is None else max(0.0, time.time() - latest.stat().st_mtime)
            ),
        }

    def info(self, name: str) -> dict:
        """Full info for one session (loads it if not yet in memory)."""
        live = self._get(name)
        with live.lock:
            return self._info_locked(live)

    def sessions(self) -> list[dict]:
        """Summaries of every stored session, *without* restoring them.

        Disk-only sessions are summarized from ``meta.json`` plus their
        newest checkpoint's filename (which encodes the iteration) and
        mtime — listing a thousand sessions must not deserialize a
        thousand engines.  Sessions already in memory report their live
        iteration instead.
        """
        names: set[str] = set(self._live)
        if self.root.exists():
            for child in self.root.iterdir():
                if child.is_dir() and (child / "meta.json").exists():
                    names.add(child.name)
        infos = []
        for name in sorted(names):
            live = self._live.get(name)
            if live is not None:
                with live.lock:
                    infos.append(self._info_locked(live))
                continue
            try:
                meta = self._read_meta(name)
            except ServeError:
                continue  # unreadable entry; skip rather than kill the listing
            checkpoints = self._checkpoint_files(name)
            latest = checkpoints[-1] if checkpoints else None
            infos.append(
                {
                    "name": name,
                    "method": meta["method"],
                    "dataset": meta["dataset"],
                    "scale": meta["scale"],
                    "seed": int(meta["seed"]),
                    "iteration": (
                        None if latest is None else _checkpoint_iteration(latest)
                    ),
                    "pending": False,
                    "live": False,
                    "n_checkpoints": len(checkpoints),
                    "last_snapshot_iteration": (
                        None if latest is None else _checkpoint_iteration(latest)
                    ),
                    "last_snapshot_age_seconds": (
                        None
                        if latest is None
                        else max(0.0, time.time() - latest.stat().st_mtime)
                    ),
                }
            )
        return infos
