"""``repro loadtest`` — N concurrent clients hammering a live session server.

The serve path's performance ledger: spawn (or target) a ``repro serve``
server, drive ``--clients`` concurrent client threads through full
create → propose → submit/decline → score session lifecycles over real
HTTP, and report per-command latency percentiles (p50/p99), sessions/sec,
commands/sec, and error counts.  The record is written as JSON
(``BENCH_serve_latency.json`` when regenerating the committed ledger) and
schema-gated by :func:`check_record` — run by the tier-1 test
``tests/test_bench_serve_record.py`` against the committed record and by
the CI smoke after a ``--quick`` run, the same validation pattern as the
session- and sweep-throughput benchmarks.

When the harness spawned the server itself it also measures the
*cold-start storm*: the server is stopped and restarted over the same
root, then every client's first touch lands at once, forcing concurrent
lazy restores.  ``cold_start.parallel_speedup`` is the sum of individual
first-touch latencies over the storm's wall clock — above 1 means
restores overlapped (the per-name loading latches at work; the hard
guarantee that K distinct restores run concurrently is pinned by
``tests/serve/test_concurrency.py``, which injects a deterministic delay).

Each client decides submissions with a deterministic pure function of the
proposal (the serve-smoke rule), so runs are reproducible command-for-
command and every error in the report is a real serve-path defect, not
client noise.

Before the warm phase's server is restarted for the cold storm, the
harness scrapes ``GET /metrics`` and ``GET /statusz`` and cross-checks
the server's own per-command request histograms against the client-side
command totals — ``server_metrics`` in the record carries the server's
p50/p99 alongside the client numbers, and the schema gate requires zero
lost commands (every client-counted success accounted server-side).

Usage::

    PYTHONPATH=src python -m repro loadtest                # full run
    PYTHONPATH=src python -m repro loadtest --quick        # CI smoke
    PYTHONPATH=src python -m repro loadtest --url http://host:port
"""

from __future__ import annotations

import math
import os
import platform
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.obs import parse_prometheus_text
from repro.serve.client import ServeClientError, SessionClient

SCHEMA_VERSION = 2

#: Commands the schema requires latency aggregates for (a full lifecycle
#: always issues these; ``decline`` appears only when the rule declines).
REQUIRED_COMMANDS = ("create", "propose", "submit", "score")


# --------------------------------------------------------------------- #
# record validation (the tier-1 schema gate)
# --------------------------------------------------------------------- #
def check_record(record: dict) -> list[str]:
    """Validate a loadtest record's shape; returns problems (empty = OK).

    Run by ``tests/test_bench_serve_record.py`` against the committed
    ``BENCH_serve_latency.json`` and by the CI smoke after ``--quick``.
    """
    problems: list[str] = []
    for key in (
        "benchmark",
        "schema_version",
        "quick",
        "machine",
        "config",
        "server",
        "wall_seconds",
        "sessions_total",
        "sessions_per_second",
        "commands_total",
        "commands_per_second",
        "errors",
        "latency_ms",
        "server_metrics",
        "cold_start",
    ):
        if key not in record:
            problems.append(f"record missing key {key!r}")
    if problems:
        return problems
    if record["benchmark"] != "serve_latency":
        problems.append(f"unexpected benchmark tag {record['benchmark']!r}")
    if record["schema_version"] != SCHEMA_VERSION:
        problems.append(f"schema_version {record['schema_version']!r} != {SCHEMA_VERSION}")
    machine = record["machine"]
    for key in ("platform", "python", "cpu_count"):
        if key not in machine:
            problems.append(f"machine missing key {key!r}")
    config = record["config"]
    for key in ("clients", "sessions_per_client", "iterations", "method", "dataset"):
        if key not in config:
            problems.append(f"config missing key {key!r}")
    if config.get("clients", 0) < 2:
        problems.append("config.clients must be >= 2 (a loadtest is multi-client)")
    if not isinstance(record["wall_seconds"], (int, float)) or record["wall_seconds"] <= 0:
        problems.append("wall_seconds must be a positive number")
    if record["sessions_total"] < 2:
        problems.append("sessions_total must be >= 2")
    for key in ("sessions_per_second", "commands_per_second"):
        if not isinstance(record[key], (int, float)) or record[key] <= 0:
            problems.append(f"{key} must be a positive number")
    errors = record["errors"]
    if "total" not in errors or "by_kind" not in errors:
        problems.append("errors must carry 'total' and 'by_kind'")
    elif errors["total"] != 0:
        problems.append(
            f"record has {errors['total']} command error(s): {errors['by_kind']}"
        )
    latency = record["latency_ms"]
    for command in REQUIRED_COMMANDS:
        entry = latency.get(command)
        if not isinstance(entry, dict):
            problems.append(f"latency_ms missing command {command!r}")
            continue
        for key in ("n", "mean", "p50", "p99", "max"):
            if key not in entry:
                problems.append(f"latency_ms[{command!r}] missing {key!r}")
        if entry.get("n", 0) < 1:
            problems.append(f"latency_ms[{command!r}].n must be >= 1")
        p50, p99, peak = entry.get("p50", 0), entry.get("p99", 0), entry.get("max", 0)
        if not (0 < p50 <= p99 <= peak):
            problems.append(
                f"latency_ms[{command!r}] percentiles out of order: "
                f"p50={p50} p99={p99} max={peak}"
            )
    server_metrics = record["server_metrics"]
    if server_metrics is None:
        if record["server"].get("spawned"):
            problems.append("a spawned-server record must include server_metrics")
    else:
        if "commands" not in server_metrics or "lost_commands_total" not in server_metrics:
            problems.append("server_metrics must carry 'commands' and 'lost_commands_total'")
        else:
            # The cross-check that makes the client percentiles trustworthy:
            # the server's own request histograms must account for every
            # command the clients counted as successful — zero lost.
            if server_metrics["lost_commands_total"] != 0:
                problems.append(
                    f"server histograms lost "
                    f"{server_metrics['lost_commands_total']} command(s) vs "
                    "client totals"
                )
            for command in REQUIRED_COMMANDS:
                entry = server_metrics["commands"].get(command)
                if not isinstance(entry, dict):
                    problems.append(f"server_metrics.commands missing {command!r}")
                    continue
                for key in ("server_count", "client_count", "lost", "p50_ms", "p99_ms"):
                    if key not in entry:
                        problems.append(
                            f"server_metrics.commands[{command!r}] missing {key!r}"
                        )
                if entry.get("lost", 0) != 0:
                    problems.append(
                        f"server_metrics.commands[{command!r}] lost "
                        f"{entry.get('lost')} command(s)"
                    )
                p50, p99 = entry.get("p50_ms"), entry.get("p99_ms")
                if not (
                    isinstance(p50, (int, float))
                    and isinstance(p99, (int, float))
                    and 0 < p50 <= p99
                ):
                    problems.append(
                        f"server_metrics.commands[{command!r}] percentiles invalid: "
                        f"p50={p50} p99={p99}"
                    )
    cold = record["cold_start"]
    if cold is not None:
        for key in ("sessions", "wall_seconds", "sum_touch_seconds", "parallel_speedup"):
            if key not in cold:
                problems.append(f"cold_start missing key {key!r}")
        if cold.get("sessions", 0) < 2:
            problems.append("cold_start.sessions must be >= 2")
        if cold.get("parallel_speedup", 0) <= 0:
            problems.append("cold_start.parallel_speedup must be positive")
    elif record["server"].get("spawned"):
        problems.append("a spawned-server record must include the cold_start phase")
    return problems


# --------------------------------------------------------------------- #
# configuration
# --------------------------------------------------------------------- #
@dataclass
class LoadTestConfig:
    """One loadtest run: concurrency shape, per-session work, target."""

    clients: int = 8
    sessions_per_client: int = 2
    iterations: int = 8
    method: str = "snorkel"
    dataset: str = "amazon"
    scale: str = "tiny"
    seed: int = 0
    snapshot_every: int = 4
    max_live: int | None = None
    idle_evict_seconds: float | None = None
    url: str | None = None  # external server; None = spawn one
    timeout: float = 120.0
    quick: bool = False

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.sessions_per_client < 1:
            raise ValueError(
                f"sessions_per_client must be >= 1, got {self.sessions_per_client}"
            )
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")


# --------------------------------------------------------------------- #
# server lifecycle (spawned-server mode)
# --------------------------------------------------------------------- #
class SpawnedServer:
    """A ``repro serve`` subprocess bound to a root, restartable in place."""

    def __init__(self, root: Path, config: LoadTestConfig) -> None:
        self.root = root
        self.config = config
        self.proc: subprocess.Popen | None = None
        self.url: str | None = None

    def start(self) -> str:
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--root",
            str(self.root),
            "--port",
            "0",
            "--snapshot-every",
            str(self.config.snapshot_every),
        ]
        if self.config.max_live is not None:
            argv += ["--max-live", str(self.config.max_live)]
        if self.config.idle_evict_seconds is not None:
            argv += ["--idle-evict", str(self.config.idle_evict_seconds)]
        self.proc = subprocess.Popen(argv, stdout=subprocess.PIPE, text=True, env=env)
        line = self.proc.stdout.readline()
        if "serving sessions on http://" not in line:
            raise RuntimeError(f"unexpected server handshake: {line!r}")
        self.url = line.split("serving sessions on ", 1)[1].split(" ", 1)[0]
        client = SessionClient(self.url, timeout=self.config.timeout)
        deadline = time.monotonic() + 30.0
        while True:
            try:
                client.health()
                client.close()
                return self.url
            except (ServeClientError, OSError):
                if time.monotonic() > deadline:
                    raise RuntimeError("spawned server never became healthy") from None
                time.sleep(0.05)

    def stop(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            self.proc.wait()
        self.proc = None

    def restart(self) -> str:
        self.stop()
        return self.start()


# --------------------------------------------------------------------- #
# the client side: deterministic per-session drivers
# --------------------------------------------------------------------- #
def decide(proposal: dict, used: set[tuple[str, int]]):
    """Deterministic pure function of (proposal, submitted-so-far).

    The serve-smoke rule: submit the lexicographically smallest unused
    primitive of the shown example, labelled by token-length parity (so
    both classes appear and the curve moves), or decline.
    """
    if proposal["dev_index"] is None:
        return None
    for token in sorted(proposal["primitives"]):
        label = 1 if len(token) % 2 == 0 else -1
        if (token, label) not in used:
            return token, label
    return None


@dataclass
class _WorkerStats:
    """One client thread's measurements, merged after the join."""

    latencies: dict[str, list[float]] = field(default_factory=dict)
    errors: dict[str, int] = field(default_factory=dict)
    sessions_done: int = 0
    commands: int = 0

    def timed(self, command: str, call):
        t0 = time.perf_counter()
        try:
            result = call()
        except ServeClientError as exc:
            kind = f"{command}:http_{exc.status}"
            self.errors[kind] = self.errors.get(kind, 0) + 1
            raise
        except OSError as exc:
            kind = f"{command}:{type(exc).__name__}"
            self.errors[kind] = self.errors.get(kind, 0) + 1
            raise
        self.latencies.setdefault(command, []).append(time.perf_counter() - t0)
        self.commands += 1
        return result


def _drive_session(client: SessionClient, name: str, config: LoadTestConfig, stats: _WorkerStats) -> None:
    """One full lifecycle: create, iterate to the target, score."""
    stats.timed(
        "create",
        lambda: client.create(
            name,
            method=config.method,
            dataset=config.dataset,
            scale=config.scale,
            seed=config.seed,
        ),
    )
    used: set[tuple[str, int]] = set()
    for _ in range(config.iterations):
        proposal = stats.timed("propose", lambda: client.propose(name))
        choice = decide(proposal, used)
        if choice is None:
            stats.timed("decline", lambda: client.decline(name))
        else:
            token, label = choice
            stats.timed("submit", lambda: client.submit(name, token, label))
            used.add((token, label))
    stats.timed("score", lambda: client.score(name))
    stats.sessions_done += 1


def _worker(
    index: int,
    url: str,
    run_tag: str,
    config: LoadTestConfig,
    barrier: threading.Barrier,
    stats: _WorkerStats,
) -> None:
    client = SessionClient(url, timeout=config.timeout)
    barrier.wait()
    try:
        for s in range(config.sessions_per_client):
            name = f"lt-{run_tag}-c{index}-s{s}"
            try:
                _drive_session(client, name, config, stats)
            except (ServeClientError, OSError):
                continue  # counted by stats.timed; move to the next session
    finally:
        client.close()


def _cold_toucher(
    url: str,
    name: str,
    config: LoadTestConfig,
    barrier: threading.Barrier,
    out: list,
) -> None:
    client = SessionClient(url, timeout=config.timeout)
    barrier.wait()
    t0 = time.perf_counter()
    try:
        client.info(name)
        out.append(time.perf_counter() - t0)
    except (ServeClientError, OSError):
        out.append(None)
    finally:
        client.close()


# --------------------------------------------------------------------- #
# server-side cross-check (ENGINE.md §9)
# --------------------------------------------------------------------- #
def _bucket_quantile_ms(buckets: list[tuple[float, float]], total: float, q: float):
    """Bucket-interpolated quantile (ms) from cumulative (le, count) pairs."""
    if total <= 0 or not buckets:
        return None
    rank = q * total
    prev_le, prev_cum = 0.0, 0.0
    for le, cum in buckets:
        if cum >= rank:
            hi = prev_le if le == math.inf else le
            span = cum - prev_cum
            if span <= 0:
                return round(hi * 1000.0, 3)
            frac = min(max((rank - prev_cum) / span, 0.0), 1.0)
            return round((prev_le + (hi - prev_le) * frac) * 1000.0, 3)
        if le != math.inf:
            prev_le = le
        prev_cum = cum
    return round(prev_le * 1000.0, 3)


def scrape_server_metrics(
    text: str, statusz: dict, latencies: dict[str, list[float]]
) -> dict:
    """Reconcile a ``/metrics`` scrape against client-side command counts.

    For every command the clients measured, compare the client's success
    count with the server's ``repro_http_requests_total`` 200-count and
    estimate server-side p50/p99 from the scraped
    ``repro_http_request_seconds`` buckets.  ``lost`` > 0 anywhere means
    the server's accounting funnel dropped a command — the invariant the
    schema gate enforces at zero.
    """
    samples = parse_prometheus_text(text)
    commands = {}
    lost_total = 0
    for command, values in sorted(latencies.items()):
        client_n = len(values)
        server_n = int(
            samples.get(
                f'repro_http_requests_total{{command="{command}",outcome="200"}}', 0
            )
        )
        prefix = f'repro_http_request_seconds_bucket{{command="{command}",le="'
        buckets = sorted(
            (
                math.inf if key[len(prefix) : -2] == "+Inf" else float(key[len(prefix) : -2]),
                value,
            )
            for key, value in samples.items()
            if key.startswith(prefix)
        )
        total = samples.get(f'repro_http_request_seconds_count{{command="{command}"}}', 0)
        lost = client_n - server_n
        lost_total += max(lost, 0)
        commands[command] = {
            "client_count": client_n,
            "server_count": server_n,
            "lost": lost,
            "p50_ms": _bucket_quantile_ms(buckets, total, 0.5),
            "p99_ms": _bucket_quantile_ms(buckets, total, 0.99),
        }
    return {
        "commands": commands,
        "lost_commands_total": lost_total,
        "sessions": statusz.get("sessions"),
        "engine": statusz.get("engine"),
    }


# --------------------------------------------------------------------- #
# aggregation
# --------------------------------------------------------------------- #
def _aggregate_latency(latencies: dict[str, list[float]]) -> dict[str, dict]:
    aggregated = {}
    for command, values in sorted(latencies.items()):
        ms = np.asarray(values) * 1000.0
        aggregated[command] = {
            "n": int(ms.size),
            "mean": round(float(ms.mean()), 3),
            "p50": round(float(np.percentile(ms, 50)), 3),
            "p99": round(float(np.percentile(ms, 99)), 3),
            "max": round(float(ms.max()), 3),
        }
    return aggregated


# --------------------------------------------------------------------- #
# the run
# --------------------------------------------------------------------- #
def run_loadtest(config: LoadTestConfig, log=print) -> dict:
    """Run the loadtest; returns the (already schema-valid) record."""
    run_tag = f"{os.getpid()}-{int(time.time())}"
    server: SpawnedServer | None = None
    tmp: tempfile.TemporaryDirectory | None = None
    if config.url is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro_loadtest_")
        server = SpawnedServer(Path(tmp.name) / "sessions", config)
        url = server.start()
        log(f"[loadtest] spawned server at {url} (root={server.root})")
    else:
        url = config.url
        log(f"[loadtest] targeting external server at {url}")

    try:
        # ---- warm phase: concurrent session lifecycles ---------------- #
        n_sessions = config.clients * config.sessions_per_client
        log(
            f"[loadtest] {config.clients} clients x {config.sessions_per_client} "
            f"sessions x {config.iterations} iterations "
            f"({config.method}/{config.dataset}/{config.scale})"
        )
        barrier = threading.Barrier(config.clients + 1)
        workers: list[tuple[threading.Thread, _WorkerStats]] = []
        for index in range(config.clients):
            stats = _WorkerStats()
            thread = threading.Thread(
                target=_worker,
                args=(index, url, run_tag, config, barrier, stats),
                daemon=True,
            )
            thread.start()
            workers.append((thread, stats))
        barrier.wait()  # release every client at once
        t0 = time.perf_counter()
        for thread, _ in workers:
            thread.join()
        wall = time.perf_counter() - t0

        latencies: dict[str, list[float]] = {}
        errors: dict[str, int] = {}
        sessions_done = commands = 0
        for _, stats in workers:
            for command, values in stats.latencies.items():
                latencies.setdefault(command, []).extend(values)
            for kind, count in stats.errors.items():
                errors[kind] = errors.get(kind, 0) + count
            sessions_done += stats.sessions_done
            commands += stats.commands
        n_errors = sum(errors.values())
        log(
            f"[loadtest] warm: {sessions_done}/{n_sessions} sessions, "
            f"{commands} commands in {wall:.2f}s "
            f"({commands / wall:.1f} cmd/s), {n_errors} errors"
        )

        # ---- server-side cross-check (before the restart resets it) --- #
        server_metrics = None
        try:
            scraper = SessionClient(url, timeout=config.timeout)
            exposition = scraper.metrics()
            statusz = scraper.statusz()
            scraper.close()
            server_metrics = scrape_server_metrics(exposition, statusz, latencies)
            log(
                f"[loadtest] server cross-check: "
                f"{server_metrics['lost_commands_total']} lost command(s) "
                f"across {len(server_metrics['commands'])} command kind(s)"
            )
        except (ServeClientError, OSError) as exc:
            log(f"[loadtest] WARNING: /metrics scrape failed: {exc}")

        # ---- cold phase: restart, then a concurrent first-touch storm - #
        cold = None
        if server is not None:
            url = server.restart()
            touch_names = [f"lt-{run_tag}-c{i}-s0" for i in range(config.clients)]
            cold_barrier = threading.Barrier(config.clients + 1)
            outs: list[list] = [[] for _ in touch_names]
            threads = [
                threading.Thread(
                    target=_cold_toucher,
                    args=(url, name, config, cold_barrier, out),
                    daemon=True,
                )
                for name, out in zip(touch_names, outs)
            ]
            for thread in threads:
                thread.start()
            cold_barrier.wait()
            t0 = time.perf_counter()
            for thread in threads:
                thread.join()
            cold_wall = time.perf_counter() - t0
            touches = [out[0] for out in outs if out and out[0] is not None]
            cold_errors = len(outs) - len(touches)
            sum_touch = float(sum(touches))
            cold = {
                "sessions": len(touches),
                "wall_seconds": round(cold_wall, 4),
                "sum_touch_seconds": round(sum_touch, 4),
                "parallel_speedup": round(sum_touch / cold_wall, 3) if cold_wall > 0 else 0.0,
                "errors": cold_errors,
            }
            log(
                f"[loadtest] cold-start storm: {len(touches)} concurrent restores "
                f"in {cold_wall:.2f}s wall vs {sum_touch:.2f}s summed "
                f"({cold['parallel_speedup']}x overlap)"
            )
    finally:
        if server is not None:
            server.stop()
        if tmp is not None:
            tmp.cleanup()

    return {
        "benchmark": "serve_latency",
        "schema_version": SCHEMA_VERSION,
        "quick": bool(config.quick),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count() or 1,
        },
        "config": {
            "clients": config.clients,
            "sessions_per_client": config.sessions_per_client,
            "iterations": config.iterations,
            "method": config.method,
            "dataset": config.dataset,
            "scale": config.scale,
            "seed": config.seed,
        },
        "server": {
            "spawned": server is not None,
            "snapshot_every": config.snapshot_every,
            "max_live": config.max_live,
            "idle_evict_seconds": config.idle_evict_seconds,
        },
        "wall_seconds": round(wall, 3),
        "sessions_total": sessions_done,
        "sessions_per_second": round(sessions_done / wall, 3),
        "commands_total": commands,
        "commands_per_second": round(commands / wall, 3),
        "errors": {"total": n_errors, "by_kind": errors},
        "latency_ms": _aggregate_latency(latencies),
        "server_metrics": server_metrics,
        "cold_start": cold,
    }
