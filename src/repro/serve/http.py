"""Stdlib-only JSON/HTTP front end over a :class:`SessionManager`.

``repro serve`` exposes the session protocol as a tiny REST-ish API (one
JSON object in, one out), deliberately on ``http.server`` alone — the
reproduction adds no web-framework dependency:

=======  ================================  =====================================
Method   Path                              Action
=======  ================================  =====================================
GET      ``/healthz``                      liveness probe
GET      ``/metrics``                      Prometheus text exposition
GET      ``/statusz``                      JSON operational snapshot
GET      ``/sessions``                     list stored sessions (no restore)
POST     ``/sessions``                     create (``{"name", "method", ...}``)
GET      ``/sessions/<name>``              full session info (restores lazily)
POST     ``/sessions/<name>/propose``      run the selector (idempotent)
POST     ``/sessions/<name>/submit``       commit ``{"primitive", "label"}``
POST     ``/sessions/<name>/decline``      close the interaction without an LF
POST     ``/sessions/<name>/step``         one simulated-user interaction
GET      ``/sessions/<name>/score``        current test-split score
POST     ``/sessions/<name>/snapshot``     force a rotated snapshot now
=======  ================================  =====================================

Error mapping is uniform: serve-layer exceptions carry their own status
(404 unknown session, 409 protocol/name conflicts, 400 bad payloads), and
every error body is ``{"error": <message>}``.  The server is a
:class:`ThreadingHTTPServer` speaking HTTP/1.1 (every response carries
Content-Length, so clients keep connections alive instead of paying TCP
setup per command); per-session locks in the manager serialize commands
per session while letting different sessions proceed in parallel, and
client disconnects mid-request *or* mid-response are absorbed rather
than dumped as handler-thread tracebacks.

Observability (ENGINE.md §9): every request gets a request id (an inbound
``X-Request-Id`` is honored, one is minted otherwise — echoed back on the
response) and a span; *every* outcome — success, pre-routing errors
(405/413/unknown route), and swallowed disconnects alike — funnels
through one accounting hook, so ``repro_http_requests_total`` /
``repro_http_request_seconds`` reconcile exactly with what clients sent
and the structured access log (``repro.obs.log``) never undercounts.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.protocol import ProtocolError
from repro.obs import log_event, normalize_request_id, request_span
from repro.serve.manager import BadSessionRequest, ServeError, SessionManager

#: Request bodies above this are rejected (no legitimate payload is close).
MAX_BODY_BYTES = 1 << 20


class _HandledError(Exception):
    """Internal carrier for (status, message) error responses."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _TextPayload:
    """A non-JSON response body (``GET /metrics``' exposition text)."""

    __slots__ = ("body", "content_type")

    def __init__(self, body: str, content_type: str) -> None:
        self.body = body
        self.content_type = content_type


#: Actions on /sessions/<name>/<action>; anything else labels as "unknown".
_KNOWN_ACTIONS = frozenset(
    {"propose", "submit", "decline", "step", "score", "snapshot"}
)


class SessionServiceHandler(BaseHTTPRequestHandler):
    """One request: route, run the manager command, write JSON."""

    #: Bound by :func:`make_server` to a concrete manager instance.
    manager: SessionManager = None
    server_version = "repro-serve/1"
    #: Every response carries Content-Length, so HTTP/1.1 keep-alive is
    #: safe — and without it every client request pays a fresh TCP setup.
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------- #
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep stdout clean; the CLI prints the one line that matters

    def handle_one_request(self) -> None:
        """One keep-alive request, with client disconnects absorbed.

        Under HTTP/1.1 the handler loops reading request lines off a
        long-lived connection; a client that resets it (RST) raises
        ``ConnectionResetError`` from the *read* side, outside ``_route``'s
        protection — without this guard every abrupt disconnect dumps a
        handler-thread traceback through ``socketserver.handle_error``.
        """
        try:
            super().handle_one_request()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _write_json(self, status: int, payload) -> None:
        if isinstance(payload, _TextPayload):
            body = payload.body.encode("utf-8")
            content_type = payload.content_type
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        request_id = getattr(self, "_request_id", None)
        if request_id:
            self.send_header("X-Request-Id", request_id)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        self._body_consumed = True
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # refuse to read it off the socket
            raise _HandledError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HandledError(400, f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise _HandledError(400, "request body must be a JSON object")
        return payload

    # -- routing -------------------------------------------------------- #
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")

    def _drain_body(self) -> None:
        """Consume an unread request body so keep-alive stays framed.

        A handler that errors before ``_read_body`` (unknown route, 405,
        …) would otherwise leave the body on the socket, where HTTP/1.1
        connection reuse parses it as the next request line.  Oversized
        bodies are not drained — the connection is closed instead.
        """
        if getattr(self, "_body_consumed", False):
            return
        self._body_consumed = True
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self.close_connection = True
        elif length > 0:
            self.rfile.read(length)

    def _parts(self) -> list[str]:
        path = self.path.split("?", 1)[0].rstrip("/")
        return [p for p in path.split("/") if p]

    def _command_label(self, verb: str) -> str:
        """The bounded metrics/log label for this request's route.

        Derived from the URL shape alone (wrong-verb requests still label
        as their action) and never contains client-controlled strings —
        session names and unparseable paths collapse to fixed labels so
        metric cardinality cannot grow with traffic.
        """
        parts = self._parts()
        if parts in (["healthz"], ["metrics"], ["statusz"]):
            return parts[0]
        if parts[:1] == ["sessions"]:
            if len(parts) == 1:
                return "list" if verb == "GET" else "create"
            if len(parts) == 2:
                return "info"
            if len(parts) == 3 and parts[2] in _KNOWN_ACTIONS:
                return parts[2]
        return "unknown"

    def _account(self, command: str, outcome: str, seconds: float, span) -> None:
        """The single funnel every request outcome passes through.

        Success, pre-routing errors (405/413/unknown route), and absorbed
        disconnects all land here exactly once, so the request counters
        reconcile with client-side totals and the access log never
        undercounts.  ``outcome`` is the status code as text, or
        ``"disconnect"``.
        """
        registry = self.manager.metrics
        registry.counter(
            "repro_http_requests_total",
            "HTTP requests served, by command and outcome (status or disconnect).",
            ("command", "outcome"),
        ).inc(command, outcome)
        registry.histogram(
            "repro_http_request_seconds",
            "HTTP request wall seconds, by command.",
            ("command",),
        ).observe(command, value=seconds)
        log_event("http_request", command=command, outcome=outcome, **span.to_dict())

    def _route(self, verb: str) -> None:
        self._body_consumed = False
        self._request_id = normalize_request_id(self.headers.get("X-Request-Id"))
        command = self._command_label(verb)
        t0 = time.perf_counter()
        disconnected = False
        with request_span(f"http.{command}", request_id=self._request_id) as span:
            try:
                status, payload = 200, self._dispatch(verb)
            except _HandledError as exc:
                status, payload = exc.status, {"error": str(exc)}
            except ServeError as exc:
                status, payload = exc.status, {"error": str(exc)}
            except ProtocolError as exc:
                status, payload = 409, {"error": str(exc)}
            except (KeyError, TypeError, ValueError) as exc:
                status, payload = 400, {"error": f"bad request: {exc}"}
            except (BrokenPipeError, ConnectionResetError):
                # Client went away mid-request; nothing to answer, but the
                # outcome is still accounted below.
                disconnected = True
            except Exception as exc:  # pragma: no cover - defensive last resort
                status, payload = 500, {"error": f"internal error: {exc}"}
            # The response write gets the same protection as the dispatch:
            # a client that disconnects mid-response raises from the
            # handler thread on the success path too, and must not dump a
            # traceback.
            if not disconnected:
                try:
                    self._drain_body()
                    self._write_json(status, payload)
                except (BrokenPipeError, ConnectionResetError):
                    self.close_connection = True
                    disconnected = True
        outcome = "disconnect" if disconnected else str(status)
        self._account(command, outcome, time.perf_counter() - t0, span)

    def _dispatch(self, verb: str) -> dict | _TextPayload:
        manager = self.manager
        parts = self._parts()
        if parts == ["healthz"]:
            if verb != "GET":
                raise _HandledError(405, "healthz accepts GET only")
            return {"ok": True, "root": str(manager.root)}
        if parts == ["metrics"]:
            if verb != "GET":
                raise _HandledError(405, "metrics accepts GET only")
            return _TextPayload(
                manager.metrics.render_prometheus(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if parts == ["statusz"]:
            if verb != "GET":
                raise _HandledError(405, "statusz accepts GET only")
            return manager.statusz()
        if parts[:1] != ["sessions"] or len(parts) > 3:
            raise _HandledError(404, f"unknown path {self.path!r}")
        if len(parts) == 1:
            if verb == "GET":
                return {"sessions": manager.sessions()}
            body = self._read_body()
            if "name" not in body:
                raise BadSessionRequest("create requires a 'name' field")
            known = {
                "name",
                "method",
                "dataset",
                "scale",
                "seed",
                "user_threshold",
                "dataset_seed",
            }
            unknown = set(body) - known
            if unknown:
                raise BadSessionRequest(
                    f"unknown create field(s) {sorted(unknown)}; allowed: {sorted(known)}"
                )
            return manager.create(**body)
        name = parts[1]
        if len(parts) == 2:
            if verb != "GET":
                raise _HandledError(405, "session root accepts GET only")
            return manager.info(name)
        action = parts[2]
        if verb == "GET":
            if action == "score":
                return manager.score(name)
            raise _HandledError(405, f"{action!r} requires POST")
        if action == "propose":
            return manager.propose(name)
        if action == "submit":
            body = self._read_body()
            if "primitive" not in body or "label" not in body:
                raise BadSessionRequest("submit requires 'primitive' and 'label'")
            return manager.submit(name, body["primitive"], body["label"])
        if action == "decline":
            return manager.decline(name)
        if action == "step":
            return manager.step(name)
        if action == "snapshot":
            return manager.snapshot(name)
        if action == "score":
            return manager.score(name)
        raise _HandledError(404, f"unknown action {action!r}")


def make_server(
    manager: SessionManager, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A ready-to-serve threaded HTTP server bound to ``manager``.

    ``port=0`` asks the OS for a free port; read the bound address from
    ``server.server_address``.  Call ``serve_forever()`` (typically on a
    thread) and ``shutdown()``/``server_close()`` to stop.
    """
    handler = type(
        "BoundSessionServiceHandler", (SessionServiceHandler,), {"manager": manager}
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server
