"""The serve layer: many live IDP sessions behind a durable HTTP service.

See ARCHITECTURE.md ("The serve subsystem") — :class:`SessionManager`
holds named protocol-driven sessions with periodic rotated snapshots;
:func:`make_server` wraps it in a stdlib threaded HTTP front end
(``repro serve``); :class:`SessionClient` is the matching stdlib client.
"""

from repro.serve.client import ServeClientError, SessionClient
from repro.serve.http import SessionServiceHandler, make_server
from repro.serve.manager import (
    BadSessionRequest,
    ServeError,
    SessionConflictError,
    SessionExistsError,
    SessionManager,
    UnknownSessionError,
)

__all__ = [
    "SessionManager",
    "ServeError",
    "UnknownSessionError",
    "SessionExistsError",
    "SessionConflictError",
    "BadSessionRequest",
    "make_server",
    "SessionServiceHandler",
    "SessionClient",
    "ServeClientError",
]
