"""Baseline development-data selectors: Random, Abstain, Disagree.

* ``Random`` is the prevailing practice (Snorkel's implicit selector).
* ``Abstain`` and ``Disagree`` are the adaptive heuristics of
  Cohen-Wang et al. [9]: pick the example on which the current LFs abstain
  the most / disagree the most.
"""

from __future__ import annotations

import numpy as np

from repro.core.selection import DevDataSelector, SessionState
from repro.labelmodel.matrix import abstain_counts, conflict_counts


class RandomSelector(DevDataSelector):
    """Uniform sampling from the eligible unlabeled pool."""

    name = "random"

    def select(self, state: SessionState) -> int | None:
        mask = state.candidate_mask()
        if not mask.any():
            return None
        eligible = np.flatnonzero(mask)
        return int(state.rng.choice(eligible))


class AbstainSelector(DevDataSelector):
    """Selects the example with the most abstaining LFs ([9])."""

    name = "abstain"

    def select(self, state: SessionState) -> int | None:
        mask = state.candidate_mask()
        if state.L_train.shape[1] == 0:
            # No LFs yet: every example ties at zero votes; fall back to random.
            return RandomSelector().select(state)
        scores = abstain_counts(state.L_train).astype(float)
        return self._argmax_with_ties(scores, mask, state.rng)


class DisagreeSelector(DevDataSelector):
    """Selects the example where the current LFs conflict the most ([9])."""

    name = "disagree"

    def select(self, state: SessionState) -> int | None:
        mask = state.candidate_mask()
        if state.L_train.shape[1] == 0:
            return RandomSelector().select(state)
        scores = conflict_counts(state.L_train).astype(float)
        if scores.max() <= 0:
            # No conflicts anywhere yet: disagreement is uninformative;
            # degrade gracefully to random (matching [9]'s behaviour).
            return RandomSelector().select(state)
        return self._argmax_with_ties(scores, mask, state.rng)


BASIC_SELECTORS = {
    "random": RandomSelector,
    "abstain": AbstainSelector,
    "disagree": DisagreeSelector,
}


def make_basic_selector(name: str) -> DevDataSelector:
    """Instantiate a baseline selector by registry name."""
    try:
        cls = BASIC_SELECTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown selector {name!r}; choose from {sorted(BASIC_SELECTORS)} or 'seu'"
        ) from None
    return cls()
