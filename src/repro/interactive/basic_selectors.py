"""Baseline development-data selectors: Random, Abstain, Disagree, Uncertainty.

* ``Random`` is the prevailing practice (Snorkel's implicit selector).
* ``Abstain`` and ``Disagree`` are the adaptive heuristics of
  Cohen-Wang et al. [9]: pick the example on which the current LFs abstain
  the most / disagree the most.
* ``Uncertainty`` reads the label model's posterior entropy.

The implementations are cardinality-generic and live in
:mod:`repro.core.selection` (they read all label-space specifics from the
state's :class:`~repro.core.convention.VoteConvention`); this module
re-exports them under their historical import path.
"""

from __future__ import annotations

from repro.core.selection import (
    BASIC_SELECTORS,
    AbstainSelector,
    DisagreeSelector,
    RandomSelector,
    UncertaintySelector,
    make_basic_selector,
)

__all__ = [
    "BASIC_SELECTORS",
    "AbstainSelector",
    "DisagreeSelector",
    "RandomSelector",
    "UncertaintySelector",
    "make_basic_selector",
]
