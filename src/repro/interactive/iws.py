"""IWS-LSE: Interactive Weak Supervision with level-set acquisition [6].

A different interaction scheme from IDP: instead of showing *data* to the
user, the system shows candidate *LFs* and asks "is this heuristic useful
(better than random)?".  A probabilistic model over LF feature vectors
learns to predict usefulness from the accumulated answers; acquisition uses
the LSE *straddle* rule, which queries the candidate whose usefulness is
most uncertain around the decision level.  The final LF set (queried-useful
plus confidently-predicted-useful candidates) feeds the standard label
model + end model pipeline.

Implementation notes (offline surrogates for the reference system):
* LF features are truncated-SVD embeddings of the primitive-incidence
  columns plus a coverage feature and the LF's output label — the same
  "term embedding" role as the original's word vectors.
* The Gaussian-process ensemble is replaced by a bootstrap ensemble of
  logistic models (mean/std over members), the standard cheap surrogate.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.linalg import svds

from repro.core.lf import PrimitiveLF
from repro.core.session import InteractiveMethod
from repro.data.dataset import FeaturizedDataset
from repro.endmodel.logistic import SoftLabelLogisticRegression
from repro.labelmodel.matrix import apply_lfs, coverage_mask
from repro.labelmodel.metal import MetalLabelModel


class IWSLSEMethod(InteractiveMethod):
    """Interactive weak supervision with LSE-straddle acquisition.

    Parameters
    ----------
    dataset:
        Featurized dataset; ground truth answers the usefulness queries.
    usefulness_threshold:
        An LF counts as useful iff its true accuracy exceeds this (0.5 =
        "better than random", the definition in [6]).
    min_coverage:
        Candidates must cover at least this many train examples.
    max_candidates:
        Pool cap (highest-coverage candidates kept) to bound the per-step
        ensemble scoring cost.
    embed_dim:
        Truncated-SVD dimension of the primitive embeddings.
    ensemble_size / n_random_init:
        Bootstrap ensemble size and number of warm-up random queries.
    straddle_kappa:
        The straddle exploration weight (1.96 in the LSE literature).
    """

    name = "iws-lse"

    def __init__(
        self,
        dataset: FeaturizedDataset,
        usefulness_threshold: float = 0.5,
        min_coverage: int = 5,
        max_candidates: int = 2000,
        embed_dim: int = 32,
        ensemble_size: int = 7,
        n_random_init: int = 5,
        straddle_kappa: float = 1.96,
        l2: float = 1e-2,
        seed=None,
    ) -> None:
        super().__init__(dataset, seed)
        self.usefulness_threshold = usefulness_threshold
        self.ensemble_size = ensemble_size
        self.n_random_init = n_random_init
        self.straddle_kappa = straddle_kappa
        self.end_model = SoftLabelLogisticRegression(l2=l2)
        self._fitted = False

        self._build_candidates(min_coverage, max_candidates, embed_dim)
        self.queried: list[int] = []  # candidate indices
        self.answers: list[bool] = []

    # ------------------------------------------------------------------ #
    # candidate pool
    # ------------------------------------------------------------------ #
    def _build_candidates(self, min_coverage: int, max_candidates: int, embed_dim: int) -> None:
        B = self.dataset.train.B
        y = self.dataset.train.y
        coverage = np.asarray(B.sum(axis=0)).ravel()
        pos = np.asarray(B.T @ (y == 1).astype(float)).ravel()
        acc_pos = np.divide(pos, coverage, out=np.full_like(pos, 0.5), where=coverage > 0)

        eligible = np.flatnonzero(coverage >= min_coverage)
        if eligible.size > max_candidates // 2:
            order = np.argsort(coverage[eligible])[::-1]
            eligible = eligible[order[: max_candidates // 2]]

        k = int(min(embed_dim, min(B.shape) - 1))
        if k >= 2:
            _, _, vt = svds(B.asfptype(), k=k, random_state=0)
            embeddings = vt.T  # (|Z|, k)
        else:  # pathological tiny corpora
            embeddings = np.asarray(B.todense()).T

        feats, lfs, truths = [], [], []
        cov_norm = coverage / max(coverage.max(), 1)
        for pid in eligible:
            for label in (1, -1):
                true_acc = acc_pos[pid] if label == 1 else 1.0 - acc_pos[pid]
                feats.append(
                    np.concatenate([embeddings[pid], [cov_norm[pid], float(label)]])
                )
                lfs.append(
                    PrimitiveLF(int(pid), self.dataset.primitive_names[int(pid)], label)
                )
                truths.append(true_acc > self.usefulness_threshold)
        self.candidate_features = np.asarray(feats)
        self.candidate_lfs: list[PrimitiveLF] = lfs
        self.candidate_truths = np.asarray(truths, dtype=bool)

    # ------------------------------------------------------------------ #
    # interaction loop
    # ------------------------------------------------------------------ #
    def step(self) -> None:
        idx = self._choose_query()
        if idx is None:
            return
        self.queried.append(idx)
        self.answers.append(bool(self.candidate_truths[idx]))
        self._retrain_pipeline()

    def _choose_query(self) -> int | None:
        unqueried = np.setdiff1d(
            np.arange(len(self.candidate_lfs)), np.asarray(self.queried, dtype=int)
        )
        if unqueried.size == 0:
            return None
        answers = np.asarray(self.answers, dtype=bool)
        warm = len(self.queried) < self.n_random_init or len(set(answers.tolist())) < 2
        if warm:
            return int(self.rng.choice(unqueried))
        mean, std = self._ensemble_posterior(self.candidate_features[unqueried])
        straddle = self.straddle_kappa * std - np.abs(mean - 0.5)
        best = straddle.max()
        ties = unqueried[np.flatnonzero(straddle >= best - 1e-12)]
        return int(self.rng.choice(ties))

    def _ensemble_posterior(self, feats: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        X = np.asarray(self.candidate_features)[np.asarray(self.queried, dtype=int)]
        y = np.asarray(self.answers, dtype=float)
        preds = []
        for _ in range(self.ensemble_size):
            boot = self.rng.integers(0, len(y), size=len(y))
            if len(set(y[boot].tolist())) < 2:
                continue
            member = SoftLabelLogisticRegression(l2=1e-1, warm_start=False)
            member.fit(X[boot], y[boot])
            preds.append(member.predict_proba(feats))
        if len(preds) < 2:
            return np.full(len(feats), 0.5), np.full(len(feats), 0.5)
        stacked = np.stack(preds, axis=0)
        return stacked.mean(axis=0), stacked.std(axis=0)

    # ------------------------------------------------------------------ #
    # downstream pipeline
    # ------------------------------------------------------------------ #
    def current_lf_set(self) -> list[PrimitiveLF]:
        """Queried-useful LFs plus confidently-predicted-useful candidates."""
        chosen = [self.candidate_lfs[i] for i, a in zip(self.queried, self.answers) if a]
        answers = np.asarray(self.answers, dtype=bool)
        if len(self.queried) >= self.n_random_init and len(set(answers.tolist())) == 2:
            unqueried = np.setdiff1d(
                np.arange(len(self.candidate_lfs)), np.asarray(self.queried, dtype=int)
            )
            if unqueried.size:
                mean, _ = self._ensemble_posterior(self.candidate_features[unqueried])
                confident = unqueried[mean >= 0.6]
                chosen.extend(self.candidate_lfs[int(i)] for i in confident)
        return chosen

    def _retrain_pipeline(self) -> None:
        lfs = self.current_lf_set()
        if not lfs:
            self._fitted = False
            return
        L = apply_lfs(lfs, self.dataset.train.B)
        covered = coverage_mask(L)
        if not covered.any():
            self._fitted = False
            return
        label_model = MetalLabelModel(class_prior=self.dataset.label_prior)
        soft = label_model.fit_predict_proba(L)
        self.end_model.fit(self.dataset.train.X[np.flatnonzero(covered)], soft[covered])
        self._fitted = True

    def predict_test(self) -> np.ndarray:
        if not self._fitted:
            return self._prior_predictions(self.dataset.test.n)
        return self.end_model.predict(self.dataset.test.X)
