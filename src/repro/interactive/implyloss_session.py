"""ImplyLoss-L as an interactive method (the paper's CL-only IDP baseline).

Couples random development-data selection (the paper pairs ImplyLoss with
random sampling, Sec. 5.2) with the joint rule/classification model of
Awasthi et al. [3]: the learning stage replaces both the label model *and*
the end model with :class:`~repro.labelmodel.implyloss.ImplyLossModel`,
consuming each LF's lineage (its exemplar) directly.
"""

from __future__ import annotations

import numpy as np

from repro.core.selection import DevDataSelector
from repro.core.session import DataProgrammingSession, LFDeveloper
from repro.data.dataset import FeaturizedDataset
from repro.interactive.basic_selectors import RandomSelector
from repro.labelmodel.base import posterior_entropy
from repro.labelmodel.implyloss import ImplyLossModel


class ImplyLossSession(DataProgrammingSession):
    """IDP session whose learning stage is the ImplyLoss joint model.

    Parameters
    ----------
    dataset / user / seed:
        As for :class:`DataProgrammingSession`.
    selector:
        Defaults to random selection, matching the paper's ImplyLoss-L
        configuration (contextualized learning only, no strategic
        selection).
    gamma / n_epochs / learning_rate:
        Forwarded to :class:`ImplyLossModel`.
    """

    def __init__(
        self,
        dataset: FeaturizedDataset,
        user: LFDeveloper,
        selector: DevDataSelector | None = None,
        gamma: float = 0.1,
        n_epochs: int = 120,
        learning_rate: float = 0.1,
        seed=None,
    ) -> None:
        super().__init__(
            dataset,
            selector=selector if selector is not None else RandomSelector(),
            user=user,
            seed=seed,
        )
        self.gamma = gamma
        self.n_epochs = n_epochs
        self.learning_rate = learning_rate
        self.imply_model_: ImplyLossModel | None = None
        self._dirty = False

    def _refit(self) -> None:
        """Defer the (expensive) joint-model fit until predictions are needed.

        ImplyLoss training is by far the costliest learning stage, and this
        baseline pairs it with *random* selection (paper Sec. 5.2) — no
        component consumes the model state between evaluations — so marking
        the model dirty here and fitting lazily in :meth:`predict_test`
        is behaviour-preserving.
        """
        self._dirty = True
        self._selector_cache.clear()

    def _refit_now(self) -> None:
        model = ImplyLossModel(
            class_prior=self.dataset.label_prior,
            gamma=self.gamma,
            n_epochs=self.n_epochs,
            learning_rate=self.learning_rate,
            seed=self.rng,
        )
        model.fit(
            self.dataset.train.X,
            self.L_train,
            self.lineage.dev_indices,
            self.lineage.exemplar_labels,
        )
        self.imply_model_ = model
        self.soft_labels = model.predict_proba(self.dataset.train.X)
        self.entropies = posterior_entropy(self.soft_labels)
        self.proxy_proba = self.soft_labels
        self.proxy_labels = np.where(self.soft_labels >= 0.5, 1, -1)
        self._end_model_fitted = True
        self._selector_cache.clear()

    def predict_test(self) -> np.ndarray:
        if self._dirty:
            self._refit_now()
            self._dirty = False
        if self.imply_model_ is None:
            return self._prior_predictions(self.dataset.test.n)
        return self.imply_model_.predict(self.dataset.test.X)

    def predict_proba_test(self) -> np.ndarray:
        if self._dirty:
            self._refit_now()
            self._dirty = False
        if self.imply_model_ is None:
            return np.full(self.dataset.test.n, self.dataset.label_prior)
        return self.imply_model_.predict_proba(self.dataset.test.X)
