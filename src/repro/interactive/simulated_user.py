"""Simulated users for LF development (paper Sec. 5.1 and Table 3).

The oracle :class:`SimulatedUser` reproduces the paper's protocol: given a
selected example, enumerate the candidate LFs ``{λ_{z,y_i} | z ∈ x_i}``
using the ground-truth label ``y_i``, filter out LFs with (ground-truth)
accuracy below a threshold ``t`` ("to resemble human expertise"), and
sample one of the survivors.  When an external lexicon is available, the
sample is biased toward lexicon-consistent primitives (footnote 1).

:class:`NoisyUser` adds per-participant imperfections for the user-study
reproduction: occasional mislabeling of the development example, imperfect
accuracy judgment, and variable lexicon adherence.

The protocol is label-space agnostic, so both classes are written once
against the :class:`~repro.core.convention.VoteConvention` contract and
serve the binary *and* the K-class pipelines: the convention (inferred
from the dataset) supplies the per-(primitive, label) ground-truth
accuracy table and the mislabeling rule (sign flip for ±1 labels, uniform
over the other classes for class ids).
:mod:`repro.multiclass.simulated_user` re-exports them under their
historical MC names.
"""

from __future__ import annotations

import numpy as np

from repro.core.convention import convention_for
from repro.core.session import LFDeveloper
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_range


class SimulatedUser(LFDeveloper):
    """Oracle user with an accuracy threshold (paper Sec. 5.1).

    Parameters
    ----------
    dataset:
        The featurized dataset (binary or multiclass); the user reads
        ground-truth *train* labels (that is the point of the oracle
        simulation).
    accuracy_threshold:
        Candidate LFs with true accuracy below ``t`` are filtered out
        (``t = 0.5`` in the paper unless stated otherwise; Figure 8 sweeps
        it).  For K classes random guessing sits at ``1/K``, so pass e.g.
        ``2.0 / n_classes`` to keep the same better-than-random spirit, or
        leave the stricter 0.5.
    use_lexicon:
        Prefer primitives whose lexicon label matches the example label,
        when any such candidate survives the filter.
    min_coverage:
        Candidates covering fewer than this many train examples are
        dropped (a user would not consider a one-off token generalizable).
    seed:
        Private randomness for the sampling step.
    """

    def __init__(
        self,
        dataset,
        accuracy_threshold: float = 0.5,
        use_lexicon: bool = True,
        min_coverage: int = 2,
        seed=None,
    ) -> None:
        check_in_range("accuracy_threshold", accuracy_threshold, 0.0, 1.0)
        if min_coverage < 1:
            raise ValueError(f"min_coverage must be >= 1, got {min_coverage}")
        self.dataset = dataset
        self.convention = convention_for(dataset)
        self.accuracy_threshold = accuracy_threshold
        self.use_lexicon = use_lexicon
        self.min_coverage = min_coverage
        self.rng = ensure_rng(seed)
        # Ground-truth per-(primitive, label) accuracy table, computed once.
        B = dataset.train.B
        self._coverage = np.asarray(B.sum(axis=0)).ravel()
        self._acc = self.convention.true_accuracy_table(B, dataset.train.y)
        self._lexicon_labels = self._build_lexicon_labels()

    def _build_lexicon_labels(self) -> dict[int, int]:
        labels: dict[int, int] = {}
        for token, label in self.dataset.lexicon.items():
            try:
                labels[self.dataset.primitive_id(token)] = int(label)
            except KeyError:
                continue  # lexicon word absent from the primitive domain
        return labels

    # ------------------------------------------------------------------ #
    # LFDeveloper interface
    # ------------------------------------------------------------------ #
    def create_lf(self, dev_index: int, state):
        label = self._determine_label(dev_index)
        candidates = self._candidate_primitives(dev_index, label, state)
        if candidates.size == 0:
            return None
        chosen = self._sample_primitive(candidates, label)
        return state.family.make(int(chosen), int(label))

    # ------------------------------------------------------------------ #
    # the three user steps (Sec. 4.1)
    # ------------------------------------------------------------------ #
    def _determine_label(self, dev_index: int) -> int:
        """Step 1: the oracle reads the true label."""
        return int(self.dataset.train.y[dev_index])

    def _candidate_primitives(self, dev_index: int, label: int, state) -> np.ndarray:
        """Step 2: label-indicative, sufficiently-accurate, novel primitives."""
        primitives = state.family.primitives_in(dev_index)
        if primitives.size == 0:
            return primitives
        acc = self._true_accuracy(primitives, label)
        keep = (acc >= self.accuracy_threshold) & (
            self._coverage[primitives] >= self.min_coverage
        )
        candidates = primitives[keep]
        existing = {(lf.primitive_id, lf.label) for lf in state.lfs}
        if existing:
            novel = np.array(
                [(pid, label) not in existing for pid in candidates], dtype=bool
            )
            candidates = candidates[novel]
        return candidates

    def _sample_primitive(self, candidates: np.ndarray, label: int) -> int:
        """Step 3: sample, preferring lexicon-consistent primitives."""
        if self.use_lexicon and self._lexicon_labels:
            preferred = np.array(
                [self._lexicon_labels.get(int(pid)) == label for pid in candidates],
                dtype=bool,
            )
            if preferred.any():
                candidates = candidates[preferred]
        return int(self.rng.choice(candidates))

    def _true_accuracy(self, primitive_ids: np.ndarray, label: int) -> np.ndarray:
        return self._acc[primitive_ids, self.convention.label_index(label)]


class NoisyUser(SimulatedUser):
    """A user-study participant with configurable imperfections (Table 3).

    Parameters
    ----------
    mislabel_rate:
        Probability of misreading the development example's label (step 1).
        A wrong binary reading flips the sign; a wrong K-class reading is
        uniform over the other classes.
    judgment_noise:
        Standard deviation of Gaussian noise added to the user's *perceived*
        accuracy of each candidate LF before thresholding — imperfect
        expertise rather than an exact oracle filter.
    lexicon_adherence:
        Probability the participant consults the lexicon at all.
    """

    def __init__(
        self,
        dataset,
        accuracy_threshold: float = 0.5,
        mislabel_rate: float = 0.05,
        judgment_noise: float = 0.1,
        lexicon_adherence: float = 0.8,
        min_coverage: int = 2,
        seed=None,
    ) -> None:
        super().__init__(
            dataset,
            accuracy_threshold=accuracy_threshold,
            use_lexicon=True,
            min_coverage=min_coverage,
            seed=seed,
        )
        check_in_range("mislabel_rate", mislabel_rate, 0.0, 1.0)
        check_in_range("lexicon_adherence", lexicon_adherence, 0.0, 1.0)
        if judgment_noise < 0:
            raise ValueError(f"judgment_noise must be >= 0, got {judgment_noise}")
        self.mislabel_rate = mislabel_rate
        self.judgment_noise = judgment_noise
        self.lexicon_adherence = lexicon_adherence

    def _determine_label(self, dev_index: int) -> int:
        true_label = super()._determine_label(dev_index)
        if self.rng.random() < self.mislabel_rate:
            return self.convention.corrupt_label(true_label, self.rng)
        return true_label

    def _true_accuracy(self, primitive_ids: np.ndarray, label: int) -> np.ndarray:
        exact = super()._true_accuracy(primitive_ids, label)
        noise = self.judgment_noise * self.rng.standard_normal(len(primitive_ids))
        return np.clip(exact + noise, 0.0, 1.0)

    def _sample_primitive(self, candidates: np.ndarray, label: int) -> int:
        consult = self.rng.random() < self.lexicon_adherence
        original = self.use_lexicon
        self.use_lexicon = consult
        try:
            return super()._sample_primitive(candidates, label)
        finally:
            self.use_lexicon = original


def sample_user_cohort(
    dataset,
    n_users: int,
    seed=None,
    threshold_range: tuple[float, float] = (0.45, 0.7),
    mislabel_range: tuple[float, float] = (0.0, 0.1),
    adherence_range: tuple[float, float] = (0.6, 0.95),
) -> list[NoisyUser]:
    """Draw a cohort of heterogeneous noisy users for the user-study bench."""
    if n_users < 1:
        raise ValueError(f"n_users must be >= 1, got {n_users}")
    rng = ensure_rng(seed)
    users = []
    for _ in range(n_users):
        users.append(
            NoisyUser(
                dataset,
                accuracy_threshold=float(rng.uniform(*threshold_range)),
                mislabel_rate=float(rng.uniform(*mislabel_range)),
                judgment_noise=float(rng.uniform(0.05, 0.15)),
                lexicon_adherence=float(rng.uniform(*adherence_range)),
                seed=rng,
            )
        )
    return users
