"""Classic active-learning baselines: Uncertainty Sampling and BALD.

Both query one *hand label* per iteration (the supervision form of
traditional active learning, contrasted with IDP's functional-level LFs in
paper Sec. 3) and train the same logistic-regression end model on the
labeled pool.

* US [20] queries the example with maximal predictive entropy.
* BALD [12, 17] queries the example with maximal mutual information
  between the prediction and the model posterior, approximated with a
  bootstrap committee (the standard non-deep surrogate for MC dropout).
"""

from __future__ import annotations

import numpy as np

from repro.core.session import InteractiveMethod
from repro.data.dataset import FeaturizedDataset
from repro.endmodel.logistic import SoftLabelLogisticRegression


class UncertaintySampling(InteractiveMethod):
    """Entropy-based active learning with an oracle annotator.

    Parameters
    ----------
    dataset:
        Featurized dataset; ground-truth train labels answer the queries.
    l2:
        End-model regularization.
    seed:
        Query tie-breaking and the initial random phase.
    """

    name = "us"

    def __init__(self, dataset: FeaturizedDataset, l2: float = 1e-2, seed=None) -> None:
        super().__init__(dataset, seed)
        self.model = SoftLabelLogisticRegression(l2=l2)
        self.labeled_indices: list[int] = []
        self.labels: list[int] = []
        self._fitted = False

    # ------------------------------------------------------------------ #
    def step(self) -> None:
        idx = self._choose_query()
        if idx is None:
            return
        self.labeled_indices.append(idx)
        self.labels.append(int(self.dataset.train.y[idx]))
        self._maybe_refit()

    def _choose_query(self) -> int | None:
        n = self.dataset.train.n
        unlabeled = np.setdiff1d(np.arange(n), np.asarray(self.labeled_indices, dtype=int))
        if unlabeled.size == 0:
            return None
        if not self._fitted:
            return int(self.rng.choice(unlabeled))
        scores = self._acquisition(self.dataset.train.X[unlabeled])
        best = scores.max()
        ties = unlabeled[np.flatnonzero(scores >= best - 1e-12)]
        return int(self.rng.choice(ties))

    def _acquisition(self, X) -> np.ndarray:
        proba = np.clip(self.model.predict_proba(X), 1e-12, 1 - 1e-12)
        return -(proba * np.log(proba) + (1 - proba) * np.log(1 - proba))

    def _maybe_refit(self) -> None:
        y = np.asarray(self.labels)
        if len(set(y.tolist())) < 2:
            return  # need both classes before a classifier is meaningful
        X = self.dataset.train.X[np.asarray(self.labeled_indices, dtype=int)]
        self.model.fit(X, (y + 1) / 2.0)
        self._fitted = True

    def predict_test(self) -> np.ndarray:
        if not self._fitted:
            return self._prior_predictions(self.dataset.test.n)
        return self.model.predict(self.dataset.test.X)


class BALD(UncertaintySampling):
    """Bayesian Active Learning by Disagreement with a bootstrap committee.

    The acquisition is the mutual information

        I(y; θ | x) ≈ H( mean_k p_k(x) ) − mean_k H( p_k(x) ),

    estimated over ``committee_size`` bootstrap-refitted models.  Falls back
    to predictive entropy while the labeled pool is too small to resample.
    """

    name = "bald"

    def __init__(
        self,
        dataset: FeaturizedDataset,
        l2: float = 1e-2,
        committee_size: int = 7,
        seed=None,
    ) -> None:
        super().__init__(dataset, l2=l2, seed=seed)
        if committee_size < 2:
            raise ValueError(f"committee_size must be >= 2, got {committee_size}")
        self.committee_size = committee_size
        self._committee: list[SoftLabelLogisticRegression] = []

    def _maybe_refit(self) -> None:
        super()._maybe_refit()
        if not self._fitted:
            return
        indices = np.asarray(self.labeled_indices, dtype=int)
        y = np.asarray(self.labels, dtype=float)
        self._committee = []
        for _ in range(self.committee_size):
            boot = self.rng.integers(0, len(indices), size=len(indices))
            yb = y[boot]
            if len(set(yb.tolist())) < 2:
                continue
            member = SoftLabelLogisticRegression(l2=self.model.l2, warm_start=False)
            member.fit(self.dataset.train.X[indices[boot]], (yb + 1) / 2.0)
            self._committee.append(member)

    def _acquisition(self, X) -> np.ndarray:
        if len(self._committee) < 2:
            return super()._acquisition(X)
        probas = np.stack([m.predict_proba(X) for m in self._committee], axis=0)
        probas = np.clip(probas, 1e-12, 1 - 1e-12)
        mean_p = probas.mean(axis=0)
        entropy_of_mean = -(mean_p * np.log(mean_p) + (1 - mean_p) * np.log(1 - mean_p))
        mean_entropy = (-(probas * np.log(probas) + (1 - probas) * np.log(1 - probas))).mean(
            axis=0
        )
        return entropy_of_mean - mean_entropy
