"""Active WeaSuL: active learning *inside* weak supervision [5].

Active WeaSuL assumes an existing LF set and spends its query budget on
hand labels that help the label model denoise those LFs.  Following the
paper's experimental setup (Sec. 5.2): the first ``warmup_iterations`` run
vanilla Snorkel (random selection + simulated-user LFs) to build the LF
set; afterwards each iteration hand-labels one point chosen by the *maxKL*
acquisition — the point from the LF-vote bucket where the label model's
posterior diverges most from the empirical label distribution of the hand
labels collected in that bucket.

Hand labels enter the pipeline as an extra high-accuracy "expert LF"
column and override the soft labels of their examples.
"""

from __future__ import annotations

import numpy as np

from repro.core.session import DataProgrammingSession, InteractiveMethod, LFDeveloper
from repro.data.dataset import FeaturizedDataset
from repro.endmodel.logistic import SoftLabelLogisticRegression
from repro.interactive.basic_selectors import RandomSelector
from repro.labelmodel.base import posterior_entropy
from repro.labelmodel.metal import MetalLabelModel


class ActiveWeaSuLMethod(InteractiveMethod):
    """maxKL active learning on top of a warm-started LF set.

    Parameters
    ----------
    dataset:
        Featurized dataset (ground truth answers the hand-label queries).
    user:
        Simulated user for the Snorkel warm-up phase.
    warmup_iterations:
        Number of initial Snorkel iterations used to build the LF set
        (10 in the paper's setup).
    smoothing:
        Additive smoothing of empirical bucket label distributions.
    seed:
        Randomness for warm-up and bucket sampling.
    """

    name = "active-weasul"

    def __init__(
        self,
        dataset: FeaturizedDataset,
        user: LFDeveloper,
        warmup_iterations: int = 10,
        smoothing: float = 1.0,
        l2: float = 1e-2,
        seed=None,
    ) -> None:
        super().__init__(dataset, seed)
        if warmup_iterations < 1:
            raise ValueError(f"warmup_iterations must be >= 1, got {warmup_iterations}")
        self.warmup_iterations = warmup_iterations
        self.smoothing = smoothing
        self.session = DataProgrammingSession(
            dataset,
            selector=RandomSelector(),
            user=user,
            seed=self.rng,
        )
        self.end_model = SoftLabelLogisticRegression(l2=l2)
        self.labeled: dict[int, int] = {}
        self.iteration = 0
        self._fitted = False

    # ------------------------------------------------------------------ #
    def step(self) -> None:
        if self.iteration < self.warmup_iterations:
            self.session.step()
            self._fitted = self.session._end_model_fitted
        else:
            idx = self._maxkl_query()
            if idx is not None:
                self.labeled[idx] = int(self.dataset.train.y[idx])
            self._refit_with_labels()
        self.iteration += 1

    # ------------------------------------------------------------------ #
    # maxKL acquisition
    # ------------------------------------------------------------------ #
    def _maxkl_query(self) -> int | None:
        L = self.session.L_train
        n = L.shape[0]
        unlabeled = np.setdiff1d(np.arange(n), np.asarray(list(self.labeled), dtype=int))
        if unlabeled.size == 0:
            return None
        if L.shape[1] == 0:
            return int(self.rng.choice(unlabeled))
        posterior = self._label_model_posterior(L)
        bucket_keys = self._bucket_keys(L)
        scores = self._bucket_scores(bucket_keys, posterior)
        candidate_scores = np.array([scores[bucket_keys[i]] for i in unlabeled])
        best = candidate_scores.max()
        ties = unlabeled[np.flatnonzero(candidate_scores >= best - 1e-12)]
        return int(self.rng.choice(ties))

    @staticmethod
    def _bucket_keys(L: np.ndarray) -> list[bytes]:
        return [row.tobytes() for row in np.ascontiguousarray(L)]

    def _bucket_scores(self, bucket_keys: list[bytes], posterior: np.ndarray) -> dict[bytes, float]:
        """Per-bucket acquisition: KL(empirical ‖ model) or entropy if unlabeled."""
        by_bucket: dict[bytes, list[int]] = {}
        for i, key in enumerate(bucket_keys):
            by_bucket.setdefault(key, []).append(i)
        alpha = self.smoothing
        scores: dict[bytes, float] = {}
        for key, members in by_bucket.items():
            q = float(np.clip(posterior[members].mean(), 1e-6, 1 - 1e-6))
            labeled_members = [i for i in members if i in self.labeled]
            if labeled_members:
                n_pos = sum(1 for i in labeled_members if self.labeled[i] == 1)
                p_hat = (n_pos + alpha * 0.5) / (len(labeled_members) + alpha)
                p_hat = float(np.clip(p_hat, 1e-6, 1 - 1e-6))
                scores[key] = p_hat * np.log(p_hat / q) + (1 - p_hat) * np.log(
                    (1 - p_hat) / (1 - q)
                )
            else:
                # No evidence in this bucket yet: explore by posterior entropy.
                scores[key] = float(posterior_entropy(np.array([q]))[0])
        return scores

    # ------------------------------------------------------------------ #
    # learning with hand labels
    # ------------------------------------------------------------------ #
    def _augmented_matrix(self, L: np.ndarray) -> np.ndarray:
        """Append the expert-LF column voting the hand labels."""
        expert = np.zeros(L.shape[0], dtype=np.int8)
        for idx, label in self.labeled.items():
            expert[idx] = label
        return np.column_stack([L, expert]).astype(np.int8)

    def _label_model_posterior(self, L: np.ndarray) -> np.ndarray:
        model = MetalLabelModel(class_prior=self.dataset.label_prior)
        matrix = self._augmented_matrix(L) if self.labeled else L
        return model.fit_predict_proba(matrix)

    def _refit_with_labels(self) -> None:
        L = self.session.L_train
        if L.shape[1] == 0 and not self.labeled:
            return
        soft = self._label_model_posterior(L)
        for idx, label in self.labeled.items():
            soft[idx] = 1.0 if label == 1 else 0.0
        covered = (self._augmented_matrix(L) != 0).any(axis=1)
        if not covered.any():
            return
        X = self.dataset.train.X
        self.end_model.fit(X[np.flatnonzero(covered)], soft[covered])
        self._fitted = True

    def predict_test(self) -> np.ndarray:
        if self.iteration <= self.warmup_iterations:
            if self.session._end_model_fitted:
                return self.session.predict_test()
            return self._prior_predictions(self.dataset.test.n)
        if not self._fitted:
            return self._prior_predictions(self.dataset.test.n)
        return self.end_model.predict(self.dataset.test.X)
