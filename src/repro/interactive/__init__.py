"""Interactive schemes: the simulated user and all baseline methods.

Everything here implements :class:`repro.core.session.InteractiveMethod`
(or :class:`repro.core.session.LFDeveloper`) so the experiment protocol can
drive Nemo and every baseline identically.
"""

from repro.interactive.active_weasul import ActiveWeaSuLMethod
from repro.interactive.basic_selectors import (
    BASIC_SELECTORS,
    AbstainSelector,
    DisagreeSelector,
    RandomSelector,
    UncertaintySelector,
    make_basic_selector,
)
from repro.interactive.implyloss_session import ImplyLossSession
from repro.interactive.iws import IWSLSEMethod
from repro.interactive.simulated_user import NoisyUser, SimulatedUser, sample_user_cohort
from repro.interactive.uncertainty import BALD, UncertaintySampling

__all__ = [
    "SimulatedUser",
    "NoisyUser",
    "sample_user_cohort",
    "RandomSelector",
    "AbstainSelector",
    "DisagreeSelector",
    "UncertaintySelector",
    "BASIC_SELECTORS",
    "make_basic_selector",
    "UncertaintySampling",
    "BALD",
    "IWSLSEMethod",
    "ActiveWeaSuLMethod",
    "ImplyLossSession",
]
