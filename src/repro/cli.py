"""Command-line interface to the reproduction.

Eight subcommands cover the workflows a downstream user needs without
writing Python:

* ``datasets`` — Table-1-style statistics for the bundled benchmarks.
* ``run``      — evaluate one method on one dataset (learning curve +
  curve-average summary, optional transcript recording).
* ``compare``  — a results table of several methods on one dataset.
* ``sweep``    — a parallel, crash-resumable methods × datasets × seeds
  grid streamed to an on-disk result store (see :mod:`repro.sweep`).
* ``replay``   — re-score a recorded transcript under a different
  learning pipeline (the paper's user-study workflow, Sec. 5.2).
* ``serve``    — a long-lived HTTP session service: named live sessions
  driven over the propose/submit protocol, periodically snapshotted and
  restored across restarts (see :mod:`repro.serve`).
* ``loadtest`` — concurrent clients hammering a session server over real
  HTTP; p50/p99 per-command latency, sessions/sec, and error counts as a
  schema-gated JSON record (see :mod:`repro.serve.loadtest`).
* ``sessions`` — list the sessions stored under a serve root.
* ``lint``     — the repo's AST-based invariant checker: determinism,
  checkpoint, and lock contracts enforced as static rules (see
  :mod:`repro.analysis` and ENGINE.md §8).

Invoke as ``python -m repro <subcommand> --help``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

import numpy as np

from repro.data.named import DATASET_NAMES, MC_DATASET_NAMES, SCALES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Nemo (VLDB 2022) reproduction: interactive data programming.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_datasets = sub.add_parser("datasets", help="print dataset statistics (Table 1)")
    p_datasets.add_argument("--scale", choices=SCALES, default="bench")
    p_datasets.add_argument("--seed", type=int, default=0)

    p_run = sub.add_parser("run", help="evaluate one method on one dataset")
    _add_common_run_args(p_run)
    p_run.add_argument("--method", default="nemo", help="registry name (e.g. nemo, snorkel, seu)")
    p_run.add_argument(
        "--save-transcript",
        metavar="PATH",
        default=None,
        help="record the first seed's session to a JSON transcript",
    )

    p_compare = sub.add_parser("compare", help="compare several methods on one dataset")
    _add_common_run_args(p_compare)
    p_compare.add_argument(
        "--methods",
        nargs="+",
        default=["nemo", "snorkel"],
        help="registry names to compare",
    )

    p_sweep = sub.add_parser(
        "sweep",
        help="parallel, crash-resumable methods x datasets x seeds grid",
        description=(
            "Expand a methods x datasets x seeds grid into independent jobs, "
            "run them on a worker pool, and stream per-job results into OUT. "
            "Re-running with the same OUT resumes: completed jobs are skipped "
            "and in-flight sessions restart from their checkpoints."
        ),
    )
    p_sweep.add_argument(
        "--datasets",
        nargs="+",
        choices=DATASET_NAMES + MC_DATASET_NAMES,
        default=["amazon"],
        help="datasets of the grid ('topics' rows use the *-mc registry)",
    )
    p_sweep.add_argument(
        "--methods",
        nargs="+",
        default=["nemo", "snorkel"],
        help="registry names of the grid",
    )
    p_sweep.add_argument("--scale", choices=SCALES, default="bench")
    p_sweep.add_argument("--iterations", type=int, default=50)
    p_sweep.add_argument("--eval-every", type=int, default=5)
    p_sweep.add_argument("--seeds", type=int, default=5)
    p_sweep.add_argument("--seed", type=int, default=0, help="base seed")
    p_sweep.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        help="simulated-user LF accuracy threshold t (paper Sec. 5.1)",
    )
    p_sweep.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = in-process)"
    )
    p_sweep.add_argument(
        "--out",
        default="sweep_out",
        help="result-store directory (reuse to resume a killed sweep)",
    )
    p_sweep.add_argument(
        "--checkpoint-every",
        type=int,
        default=10,
        help="mid-job session snapshot cadence, in protocol iterations",
    )
    p_sweep.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="stop after this many jobs this invocation (budgeting/smoke aid)",
    )
    p_sweep.add_argument(
        "--checkpoint-max-age",
        type=float,
        default=None,
        metavar="SECONDS",
        help="treat pending-job checkpoints older than this as abandoned "
        "(the job restarts from scratch); default: no age cap",
    )

    p_serve = sub.add_parser(
        "serve",
        help="long-lived HTTP session service (propose/submit protocol)",
        description=(
            "Serve named live IDP sessions over a stdlib JSON/HTTP API. "
            "Sessions are snapshotted every --snapshot-every commits and the "
            "snapshots rotated (--keep-last / --max-age); restarting the "
            "server over the same --root resumes every session from its "
            "latest snapshot, bit-identically."
        ),
    )
    p_serve.add_argument(
        "--root", default="serve_sessions", help="session store directory"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8765, help="TCP port (0 = pick a free one)"
    )
    p_serve.add_argument(
        "--snapshot-every",
        type=int,
        default=5,
        help="snapshot cadence, in closed interactions per session",
    )
    p_serve.add_argument(
        "--keep-last", type=int, default=3, help="rotated snapshots kept per session"
    )
    p_serve.add_argument(
        "--max-age",
        type=float,
        default=None,
        metavar="SECONDS",
        help="also drop retained snapshots older than this (newest always kept)",
    )
    p_serve.add_argument(
        "--max-live",
        type=int,
        default=None,
        metavar="N",
        help="soft cap on in-memory sessions: least-recently-touched sessions "
        "beyond it are snapshotted and evicted (lazy-restored on next touch)",
    )
    p_serve.add_argument(
        "--idle-evict",
        type=float,
        default=None,
        metavar="SECONDS",
        help="also evict sessions untouched for this long (a background "
        "sweeper enforces it even without traffic)",
    )
    p_serve.add_argument(
        "--access-log",
        action="store_true",
        help="emit one structured JSON log line per request on stderr "
        "(request id, outcome, per-phase span timings)",
    )

    p_metrics = sub.add_parser(
        "metrics",
        help="scrape a running server's /statusz (or raw /metrics) and pretty-print it",
        description=(
            "Fetch GET /statusz from a running 'repro serve' endpoint and "
            "pretty-print the operational snapshot: session population, "
            "per-command latency, cold starts, snapshot cadence health, and "
            "engine phase/refit attribution. With --raw, print the raw "
            "Prometheus text exposition from GET /metrics instead."
        ),
    )
    p_metrics.add_argument("url", help="server base URL, e.g. http://127.0.0.1:8765")
    p_metrics.add_argument(
        "--raw",
        action="store_true",
        help="print the raw Prometheus /metrics exposition instead of /statusz",
    )
    p_metrics.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the /statusz payload as JSON instead of the table view",
    )
    p_metrics.add_argument("--timeout", type=float, default=10.0)

    p_loadtest = sub.add_parser(
        "loadtest",
        help="hammer a session server with concurrent clients; report latency",
        description=(
            "Drive N concurrent client threads through full create -> propose "
            "-> submit/decline -> score session lifecycles over real HTTP "
            "(against a spawned server, or --url for an external one), then "
            "report p50/p99 per-command latency, sessions/sec, and error "
            "counts as a schema-gated JSON record. Spawned-server runs also "
            "measure the cold-start storm: restart, then every client's "
            "first touch at once (concurrent lazy restores)."
        ),
    )
    p_loadtest.add_argument(
        "--url",
        default=None,
        help="target an already-running server instead of spawning one "
        "(skips the cold-start phase)",
    )
    p_loadtest.add_argument("--clients", type=int, default=8)
    p_loadtest.add_argument("--sessions-per-client", type=int, default=2)
    p_loadtest.add_argument(
        "--iterations", type=int, default=8, help="interactions per session"
    )
    p_loadtest.add_argument("--method", default="snorkel")
    p_loadtest.add_argument("--dataset", choices=DATASET_NAMES + MC_DATASET_NAMES, default="amazon")
    p_loadtest.add_argument("--scale", choices=SCALES, default="tiny")
    p_loadtest.add_argument("--seed", type=int, default=0)
    p_loadtest.add_argument(
        "--snapshot-every", type=int, default=4, help="spawned server's snapshot cadence"
    )
    p_loadtest.add_argument(
        "--max-live", type=int, default=None, help="spawned server's live-session cap"
    )
    p_loadtest.add_argument(
        "--idle-evict", type=float, default=None, help="spawned server's idle eviction"
    )
    p_loadtest.add_argument(
        "--output",
        default="BENCH_serve_latency.json",
        help="where to write the JSON record",
    )
    p_loadtest.add_argument(
        "--quick",
        action="store_true",
        help=(
            "CI smoke: 2 clients x 1 session x 4 iterations; writes next to "
            "the committed record (never over it) and asserts the committed "
            "record's schema when one is present"
        ),
    )

    p_sessions = sub.add_parser(
        "sessions", help="list the sessions stored under a serve root"
    )
    p_sessions.add_argument(
        "--root", default="serve_sessions", help="session store directory"
    )

    p_lint = sub.add_parser(
        "lint",
        help="AST-based invariant checker (determinism/checkpoint/lock contracts)",
        description=(
            "Walk the given paths (default: src tools benchmarks examples) and "
            "enforce the repo's static invariants: fitted-state completeness, "
            "no in-place mutation of fitted attributes, seeded-RNG discipline, "
            "serve-path lock discipline, and the multiclass adapter budget. "
            "Suppress a finding per line with "
            "'# repro-lint: disable=<rule> -- <reason>' (the reason is "
            "mandatory). Exits 1 on any unsuppressed finding."
        ),
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files/directories to walk (default: src tools benchmarks examples)",
    )
    p_lint.add_argument(
        "--root",
        default=".",
        help="directory findings are reported relative to (default: cwd)",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt",
        help="stdout format",
    )
    p_lint.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="also write the JSON findings artifact here (CI uploads this)",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true", help="print the registered rules and exit"
    )

    p_replay = sub.add_parser(
        "replay", help="re-score a recorded transcript under a chosen pipeline"
    )
    p_replay.add_argument("transcript", help="path to a JSON transcript")
    p_replay.add_argument("--dataset", choices=DATASET_NAMES, required=True)
    p_replay.add_argument("--scale", choices=SCALES, default="bench")
    p_replay.add_argument("--seed", type=int, default=0)
    p_replay.add_argument(
        "--contextualize",
        action="store_true",
        help="refine the recorded LFs with the Eq.-4 contextualizer",
    )
    p_replay.add_argument(
        "--gamma",
        type=float,
        default=0.0,
        help="context-sequence recency decay (0 = single-point Eq. 4)",
    )
    p_replay.add_argument(
        "--percentile", type=float, default=75.0, help="refinement radius percentile"
    )
    p_replay.add_argument(
        "--label-model",
        default="metal",
        help="aggregator registry name (metal, majority, dawid-skene, triplet)",
    )
    return parser


def _add_common_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        choices=DATASET_NAMES + MC_DATASET_NAMES,
        default="amazon",
        help="'topics' selects the multiclass extension (use *-mc methods)",
    )
    parser.add_argument("--scale", choices=SCALES, default="bench")
    parser.add_argument("--iterations", type=int, default=50)
    parser.add_argument("--eval-every", type=int, default=5)
    parser.add_argument("--seeds", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        help="simulated-user LF accuracy threshold t (paper Sec. 5.1)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the per-seed sessions (1 = serial)",
    )


# --------------------------------------------------------------------- #
# subcommand implementations
# --------------------------------------------------------------------- #
def cmd_datasets(args: argparse.Namespace) -> int:
    from repro.data import load_dataset

    print(f"Benchmark datasets at scale={args.scale} (Table 1):")
    for name in DATASET_NAMES:
        dataset = load_dataset(name, scale=args.scale, seed=args.seed)
        print(f"  {dataset.describe()}")
    return 0


def _evaluate_named(args: argparse.Namespace, method_name: str, dataset):
    """Dispatch to the binary or multiclass registry by dataset kind."""
    if args.dataset in MC_DATASET_NAMES:
        from repro.multiclass.experiments import evaluate_mc_method

        return evaluate_mc_method(
            method_name,
            dataset,
            n_iterations=args.iterations,
            eval_every=args.eval_every,
            n_seeds=args.seeds,
            base_seed=args.seed,
            user_threshold=args.threshold,
            jobs=args.jobs,
        )
    from repro.experiments import evaluate_method, make_method

    return evaluate_method(
        make_method(method_name, user_threshold=args.threshold),
        method_name,
        dataset,
        n_iterations=args.iterations,
        eval_every=args.eval_every,
        n_seeds=args.seeds,
        base_seed=args.seed,
        jobs=args.jobs,
    )


def _load_any_dataset(args: argparse.Namespace):
    from repro.data.named import load_named_dataset

    return load_named_dataset(args.dataset, scale=args.scale, seed=0)


def cmd_run(args: argparse.Namespace) -> int:
    dataset = _load_any_dataset(args)
    print(dataset.describe())
    result = _evaluate_named(args, args.method, dataset)
    mean_curve = result.mean_curve()
    print(f"\nmethod={args.method} seeds={args.seeds}")
    print("iteration: " + " ".join(f"{i:>6d}" for i in mean_curve.iterations))
    print("score:     " + " ".join(f"{s:6.3f}" for s in mean_curve.scores))
    print(
        f"curve average = {result.summary_mean:.4f} "
        f"(± {result.summary_std:.4f} across seeds)"
    )
    if args.save_transcript:
        _record_transcript(args, dataset)
    return 0


def _record_transcript(args: argparse.Namespace, dataset) -> None:
    from repro.core.session import DataProgrammingSession
    from repro.io import save_transcript, transcript_from_session
    from repro.multiclass.session import MultiClassSession
    from repro.utils.rng import stable_hash_seed

    seed = stable_hash_seed(args.method, dataset.name, 0, args.seed)
    if args.dataset in MC_DATASET_NAMES:
        from repro.multiclass.experiments import make_mc_method

        method = make_mc_method(args.method, user_threshold=args.threshold)(dataset, seed)
    else:
        from repro.experiments import make_method

        method = make_method(args.method, user_threshold=args.threshold)(dataset, seed)
    if not isinstance(method, (DataProgrammingSession, MultiClassSession)):
        print(
            f"cannot record {args.method!r}: only LF-producing sessions have "
            f"transcripts (active-learning baselines do not)",
            file=sys.stderr,
        )
        return
    method.run(args.iterations)
    path = save_transcript(
        transcript_from_session(
            method, metadata={"method": args.method, "dataset": dataset.name, "seed": seed}
        ),
        args.save_transcript,
    )
    print(f"transcript ({len(method.lfs)} LFs) written to {path}")


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments.reporting import format_table

    dataset = _load_any_dataset(args)
    print(dataset.describe())
    cells = []
    for name in args.methods:
        result = _evaluate_named(args, name, dataset)
        cells.append(result.summary_mean)
    print()
    print(
        format_table(
            f"{args.dataset} (scale={args.scale}, {args.seeds} seeds, "
            f"{args.iterations} iterations)",
            list(args.methods),
            {args.dataset: cells},
        )
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.reporting import format_table
    from repro.sweep import ResultStore, SweepSpec, run_sweep

    spec = SweepSpec(
        methods=tuple(args.methods),
        datasets=tuple(args.datasets),
        n_seeds=args.seeds,
        base_seed=args.seed,
        n_iterations=args.iterations,
        eval_every=args.eval_every,
        scale=args.scale,
        user_threshold=args.threshold,
    )
    n_total = len(spec.jobs())
    print(
        f"sweep: {len(spec.methods)} methods x {len(spec.datasets)} datasets x "
        f"{args.seeds} seeds = {n_total} jobs -> {args.out} (jobs={args.jobs})"
    )

    def progress(done: int, total: int, key: str, payload: dict) -> None:
        resumed = payload.get("resumed_from_iteration", 0)
        note = f" (resumed from iteration {resumed})" if resumed else ""
        print(f"  [{done}/{total}] {key}: {payload['wall_seconds']:.1f}s{note}")

    report = run_sweep(
        spec,
        args.out,
        jobs=args.jobs,
        checkpoint_every=args.checkpoint_every,
        max_jobs=args.max_jobs,
        progress=progress,
        checkpoint_max_age=args.checkpoint_max_age,
    )
    print(
        f"ran {len(report.ran)} jobs, skipped {len(report.skipped)} already-completed "
        f"in {report.wall_seconds:.1f}s"
    )
    if not report.complete:
        print(f"{len(report.pending)} jobs still pending; rerun to resume")
    obs = ResultStore(args.out).summarize_obs()
    if obs["jobs"]:
        phase_total = sum(obs["phase_seconds"].values())
        phases = "  ".join(
            f"{name}={seconds:.1f}s" for name, seconds in sorted(obs["phase_seconds"].items())
        )
        print(
            f"engine obs ({obs['jobs']} instrumented jobs, "
            f"{phase_total:.1f}s compute): {phases}"
        )
        if obs["refits"] or obs["end_fits"]:
            refits = " ".join(f"{k}={v}" for k, v in sorted(obs["refits"].items()))
            end_fits = " ".join(f"{k}={v}" for k, v in sorted(obs["end_fits"].items()))
            print(f"  refits: {refits or '-'}; end fits: {end_fits or '-'}")
    # Table of curve averages for every complete cell, one block per dataset.
    for dataset in spec.datasets:
        cells, names = [], []
        for method in spec.methods:
            result = report.results.get((dataset, method))
            if result is not None and len(result.curves) == args.seeds:
                names.append(method)
                cells.append(result.summary_mean)
        if names:
            print()
            print(
                format_table(
                    f"{dataset} (scale={args.scale}, {args.seeds} seeds, "
                    f"{args.iterations} iterations)",
                    names,
                    {dataset: cells},
                )
            )
    return 0 if report.complete else 1


def cmd_replay(args: argparse.Namespace) -> int:
    from repro.core.context_sequence import ContextSequenceContextualizer
    from repro.core.contextualizer import LFContextualizer
    from repro.data import load_dataset
    from repro.io import load_transcript, replay_session
    from repro.labelmodel import make_label_model

    transcript = load_transcript(args.transcript)
    dataset = load_dataset(args.dataset, scale=args.scale, seed=0)
    contextualizer = None
    if args.contextualize or args.gamma > 0:
        if args.gamma > 0:
            contextualizer = ContextSequenceContextualizer(
                gamma=args.gamma, percentile=args.percentile
            )
        else:
            contextualizer = LFContextualizer(percentile=args.percentile)
    prior = dataset.label_prior
    session = replay_session(
        transcript,
        dataset,
        seed=args.seed,
        contextualizer=contextualizer,
        label_model_factory=lambda: make_label_model(args.label_model, class_prior=prior),
    )
    pipeline = "standard" if contextualizer is None else (
        f"context-sequence(gamma={args.gamma})" if args.gamma > 0 else "contextualized"
    )
    print(
        f"replayed {len(transcript)} recorded LFs on {dataset.name} "
        f"[pipeline={pipeline}, label_model={args.label_model}]"
    )
    print(f"test score = {session.test_score():.4f}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import threading

    from repro.serve import SessionManager, make_server

    if args.access_log:
        from repro.obs import attach_stderr_handler

        attach_stderr_handler()
    manager = SessionManager(
        args.root,
        snapshot_every=args.snapshot_every,
        keep_last=args.keep_last,
        max_age_seconds=args.max_age,
        max_live=args.max_live,
        idle_evict_seconds=args.idle_evict,
    )
    server = make_server(manager, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    stop_sweeper = threading.Event()
    if args.idle_evict is not None:
        # Touch-triggered eviction never fires on a quiet server; a
        # background sweeper keeps idle sessions from pinning memory.
        def sweep() -> None:
            while not stop_sweeper.wait(max(0.5, args.idle_evict / 2)):
                manager.evict()

        threading.Thread(target=sweep, name="idle-evict", daemon=True).start()
    # This exact line is the machine-readable handshake the serve smoke
    # test (and any wrapper script) parses to learn the bound port.
    print(f"serving sessions on http://{host}:{port} (root={manager.root})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        stop_sweeper.set()
        server.server_close()
    return 0


def cmd_loadtest(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.serve.loadtest import LoadTestConfig, check_record, run_loadtest

    clients = args.clients
    sessions_per_client = args.sessions_per_client
    iterations = args.iterations
    output = args.output
    if args.quick:
        clients, sessions_per_client, iterations = 2, 1, 4
        if output == "BENCH_serve_latency.json":
            # A smoke run must not overwrite the committed full record.
            output = "BENCH_serve_latency.quick.json"
    config = LoadTestConfig(
        clients=clients,
        sessions_per_client=sessions_per_client,
        iterations=iterations,
        method=args.method,
        dataset=args.dataset,
        scale=args.scale,
        seed=args.seed,
        snapshot_every=args.snapshot_every,
        max_live=args.max_live,
        idle_evict_seconds=args.idle_evict,
        url=args.url,
        quick=args.quick,
    )
    record = run_loadtest(config)
    problems = check_record(record)
    out = Path(output)
    out.write_text(_json.dumps(record, indent=2) + "\n")
    print(f"[loadtest] wrote {out}")
    for command, entry in record["latency_ms"].items():
        print(
            f"[loadtest]   {command:<8} n={entry['n']:<4} p50={entry['p50']}ms "
            f"p99={entry['p99']}ms max={entry['max']}ms"
        )
    if record.get("server_metrics"):
        sm = record["server_metrics"]
        print(
            f"[loadtest] server-side histograms "
            f"({sm['lost_commands_total']} lost command(s)):"
        )
        for command, entry in sm["commands"].items():
            print(
                f"[loadtest]   {command:<8} n={entry['server_count']:<4} "
                f"p50={entry['p50_ms']}ms p99={entry['p99_ms']}ms"
            )
    if problems:
        print("[loadtest] record FAILED its own schema check:")
        for problem in problems:
            print(f"[loadtest]   - {problem}")
        return 1
    if args.quick:
        committed = Path("BENCH_serve_latency.json")
        if committed.exists():
            committed_problems = check_record(_json.loads(committed.read_text()))
            if committed_problems:
                print(f"[loadtest] committed record {committed} FAILED the schema check:")
                for problem in committed_problems:
                    print(f"[loadtest]   - {problem}")
                return 1
            print(f"[loadtest] committed record {committed} passes the schema check")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve.client import ServeClientError, SessionClient

    client = SessionClient(args.url, timeout=args.timeout)
    try:
        if args.raw:
            sys.stdout.write(client.metrics())
            return 0
        status = client.statusz()
    except (ServeClientError, OSError) as exc:
        print(f"[metrics] cannot scrape {args.url}: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()
    if args.as_json:
        print(_json.dumps(status, indent=2))
        return 0
    sessions = status["sessions"]
    snapshots = status["snapshots"]
    print(f"server {args.url}  up {status['uptime_seconds']:.0f}s")
    print(
        f"sessions: {sessions['live']} live, {sessions['loading']} loading, "
        f"{sessions['stored']} stored, {sessions['open_interactions']} open "
        f"interaction(s); {sessions['created_total']} created, "
        f"{sessions['restored_total']} restored, {sessions['evicted_total']} "
        f"evicted, {sessions['restore_failures_total']} restore failure(s)"
    )
    print(
        f"snapshots: {snapshots['total']} written (cadence every "
        f"{snapshots['cadence_commits']} commits); {snapshots['dirty_sessions']} "
        f"dirty session(s), worst {snapshots['max_commits_since_snapshot']} "
        "commit(s) behind"
    )
    if status["commands"]:
        header = f"{'command':<10} {'count':>7} {'p50 ms':>9} {'p99 ms':>9}  outcomes"
        print(header)
        print("-" * len(header))
        for command, entry in sorted(status["commands"].items()):
            outcomes = ", ".join(
                f"{k}={v}" for k, v in sorted(entry["by_outcome"].items())
            )
            p50 = "-" if entry["p50_ms"] is None else f"{entry['p50_ms']:.2f}"
            p99 = "-" if entry["p99_ms"] is None else f"{entry['p99_ms']:.2f}"
            print(f"{command:<10} {entry['count']:>7} {p50:>9} {p99:>9}  {outcomes}")
    engine = status["engine"]
    if engine["phase_seconds"]:
        total = sum(engine["phase_seconds"].values()) or 1.0
        phases = "  ".join(
            f"{phase}={seconds:.2f}s ({100.0 * seconds / total:.0f}%)"
            for phase, seconds in sorted(engine["phase_seconds"].items())
        )
        print(f"engine phases: {phases}")
    if engine["refits"]:
        refits = ", ".join(f"{k}={v}" for k, v in sorted(engine["refits"].items()))
        end_fits = ", ".join(f"{k}={v}" for k, v in sorted(engine["end_fits"].items()))
        print(f"refits: {refits}; end fits: {end_fits}")
        print(f"open-interval wall: {engine['open_interval_seconds']:.2f}s")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import default_rules, run_lint

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.name:<24} {rule.description}")
        return 0
    report = run_lint(paths=args.paths or None, root=args.root)
    if args.fmt == "json":
        print(report.to_json(), end="")
    else:
        for finding in report.findings:
            print(finding.format())
        n_sup = len(report.suppressed)
        print(
            f"[lint] {report.n_files} files checked: "
            f"{len(report.unsuppressed)} finding(s), {n_sup} suppressed"
        )
    if args.output:
        out = Path(args.output)
        out.write_text(report.to_json())
        if args.fmt != "json":
            print(f"[lint] findings artifact written to {out}")
    return report.exit_code


def cmd_sessions(args: argparse.Namespace) -> int:
    from repro.serve import SessionManager

    manager = SessionManager(args.root)
    infos = manager.sessions()
    if not infos:
        print(f"no sessions under {manager.root}")
        return 0
    header = f"{'name':<20} {'dataset':<10} {'method':<16} {'iter':>5} {'ckpts':>5} {'snapshot age':>12}"
    print(header)
    print("-" * len(header))
    for info in infos:
        age = info["last_snapshot_age_seconds"]
        age_s = "-" if age is None else f"{age:10.1f}s"
        iteration = info["iteration"]
        it_s = "?" if iteration is None else str(iteration)
        print(
            f"{info['name']:<20} {info['dataset']:<10} {info['method']:<16} "
            f"{it_s:>5} {info['n_checkpoints']:>5} {age_s:>12}"
        )
    return 0


COMMANDS = {
    "datasets": cmd_datasets,
    "run": cmd_run,
    "compare": cmd_compare,
    "sweep": cmd_sweep,
    "replay": cmd_replay,
    "serve": cmd_serve,
    "loadtest": cmd_loadtest,
    "sessions": cmd_sessions,
    "metrics": cmd_metrics,
    "lint": cmd_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    np.set_printoptions(precision=4, suppress=True)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
