"""Seeded random-number-generation helpers.

All stochastic components of the library accept ``seed`` arguments that may
be ``None`` (fresh entropy), an ``int`` (deterministic), or an existing
:class:`numpy.random.Generator` (shared stream).  Centralizing the
normalization here keeps every experiment reproducible from a single integer.
"""

from __future__ import annotations

import hashlib

import numpy as np

SeedLike = "int | np.random.Generator | None"


def ensure_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a deterministic stream, or an
        existing generator which is returned unchanged (so callers can share
        one stream across components).

    Examples
    --------
    >>> g = ensure_rng(0)
    >>> h = ensure_rng(g)
    >>> g is h
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_children(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Used by multi-seed experiment protocols: each run gets its own stream so
    that adding or removing runs never perturbs the others.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        child_seeds = seed.integers(0, 2**32, size=n)
        return [np.random.default_rng(int(s)) for s in child_seeds]
    return [np.random.default_rng(s) for s in np.random.SeedSequence(seed).spawn(n)]


def stable_hash_seed(*parts: object) -> int:
    """Derive a deterministic 32-bit seed from arbitrary string-able parts.

    Unlike :func:`hash`, this is stable across interpreter runs, which makes
    it safe for naming-based seeding (e.g. one seed per dataset name).

    Examples
    --------
    >>> stable_hash_seed("amazon", 0) == stable_hash_seed("amazon", 0)
    True
    >>> stable_hash_seed("amazon", 0) != stable_hash_seed("yelp", 0)
    True
    """
    digest = hashlib.sha256("::".join(str(p) for p in parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little")
