"""Shared low-level utilities: seeded randomness, validation, logging.

Everything in :mod:`repro` that consumes randomness takes either an integer
seed or a :class:`numpy.random.Generator`; :func:`ensure_rng` normalizes the
two so that experiments are reproducible end to end.
"""

from repro.utils.rng import ensure_rng, spawn_children, stable_hash_seed
from repro.utils.validation import (
    check_binary_labels,
    check_in_range,
    check_matching_length,
    check_positive,
    check_probabilities,
)

__all__ = [
    "ensure_rng",
    "spawn_children",
    "stable_hash_seed",
    "check_binary_labels",
    "check_in_range",
    "check_matching_length",
    "check_positive",
    "check_probabilities",
]
