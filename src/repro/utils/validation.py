"""Argument-validation helpers shared across the library.

These raise early, with messages that name the offending argument, so that
misconfigured experiments fail at construction time rather than deep inside
a 50-iteration interactive loop.
"""

from __future__ import annotations

import numpy as np


def check_positive(name: str, value: float, strict: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (or non-negative)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    inclusive: bool = True,
) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high`` (or strict)."""
    if inclusive:
        if not low <= value <= high:
            raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    else:
        if not low < value < high:
            raise ValueError(f"{name} must be in ({low}, {high}), got {value!r}")


def check_matching_length(name_a: str, a, name_b: str, b) -> None:
    """Raise ``ValueError`` unless the two sized arguments have equal length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have matching lengths, "
            f"got {len(a)} and {len(b)}"
        )


def check_binary_labels(name: str, labels: np.ndarray) -> np.ndarray:
    """Validate a vector of labels drawn from {-1, +1}.

    Returns the labels as an ``int`` array.  Abstains (0) are *not* allowed
    here — use label-matrix utilities for vote matrices that contain 0.
    """
    arr = np.asarray(labels)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    bad = set(np.unique(arr)) - {-1, 1}
    if bad:
        raise ValueError(f"{name} must contain only -1/+1, found {sorted(bad)}")
    return arr.astype(int)


def check_probabilities(name: str, probs: np.ndarray, axis: int = -1) -> np.ndarray:
    """Validate that ``probs`` are in [0, 1] and sum to 1 along ``axis``."""
    arr = np.asarray(probs, dtype=float)
    if np.any(arr < -1e-9) or np.any(arr > 1 + 1e-9):
        raise ValueError(f"{name} must lie in [0, 1]")
    sums = arr.sum(axis=axis)
    if not np.allclose(sums, 1.0, atol=1e-6):
        raise ValueError(f"{name} must sum to 1 along axis {axis}")
    return arr
