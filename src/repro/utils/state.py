"""Declarative fitted-state capture for models.

Checkpointing a live session (ENGINE.md §5) needs the *fitted parameters*
of its label and end models — nothing else: hyperparameters are
reconstructed by the session's own factories, so a snapshot that carried
them would just invite silent config drift between the saver and the
restorer.  Models declare their fitted attributes once in
``_FITTED_ATTRS`` and inherit :meth:`state_dict` /
:meth:`load_state_dict` from :class:`FittedStateMixin`; the checkpoint
layer treats the result as an opaque ``{class, attrs}`` payload.
"""

from __future__ import annotations

import numpy as np


class FittedStateMixin:
    """Generic ``state_dict``/``load_state_dict`` over declared attributes.

    Subclasses list the attributes that :meth:`fit` produces in
    ``_FITTED_ATTRS`` (arrays, floats, bools, or ``None`` before any fit).
    Loading is fail-closed: the payload must name the same concrete class
    and carry every declared attribute — a checkpoint written by a
    different model family must never be silently grafted on.
    """

    _FITTED_ATTRS: tuple[str, ...] = ()

    def state_dict(self) -> dict:
        """The fitted parameters as ``{"class": name, "attrs": {...}}``.

        Array values are copied so a checkpoint captured mid-session is
        immune to later in-place mutation of the live model.  Dict values
        (e.g. the minibatch RNG state ``mb_rng_state_``, a
        ``bit_generator.state`` payload) are captured by reference — safe
        only because models *reassign* those attributes with fresh dicts
        after each fit instead of mutating them in place; any model adding
        a dict-valued fitted attribute must keep that discipline.
        """
        attrs = {}
        for name in self._FITTED_ATTRS:
            value = getattr(self, name)
            attrs[name] = value.copy() if isinstance(value, np.ndarray) else value
        return {"class": type(self).__name__, "attrs": attrs}

    def load_state_dict(self, state: dict) -> "FittedStateMixin":
        """Restore fitted parameters captured by :meth:`state_dict`."""
        expected = type(self).__name__
        got = state.get("class")
        if got != expected:
            raise ValueError(
                f"state was captured from {got!r} but is being loaded into {expected!r}"
            )
        attrs = state.get("attrs")
        if not isinstance(attrs, dict):
            raise ValueError("model state has no 'attrs' mapping")
        missing = [name for name in self._FITTED_ATTRS if name not in attrs]
        if missing:
            raise ValueError(f"model state is missing fitted attributes {missing}")
        for name in self._FITTED_ATTRS:
            value = attrs[name]
            setattr(self, name, value.copy() if isinstance(value, np.ndarray) else value)
        return self
