"""Soft-label softmax (multinomial logistic) regression.

The K-class end model for :mod:`repro.multiclass`: trained on the label
model's ``(n, K)`` probabilistic labels by minimizing the expected
cross-entropy under the soft targets with L-BFGS on an analytic gradient —
the direct multinomial generalization of
:class:`repro.endmodel.logistic.SoftLabelLogisticRegression`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.optimize import minimize

from repro.endmodel.logistic import LBFGS_HISTORY
from repro.endmodel.minibatch import (
    adam_step,
    reset_adam_moments,
    resolve_step_budget,
    resume_minibatch_rng,
)
from repro.utils.state import FittedStateMixin


def _softmax(scores: np.ndarray) -> np.ndarray:
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def _canonical_targets(soft_labels, n: int, K: int) -> np.ndarray:
    """Row-stochastic ``(n, K)`` targets; 1-D hard labels are one-hot encoded."""
    Q = np.asarray(soft_labels, dtype=float)
    if Q.ndim == 1:
        y = Q.astype(int)
        if np.any(y < 0) or np.any(y >= K):
            raise ValueError(f"hard labels must lie in [0, {K}), got values outside")
        Q = np.zeros((n, K))
        Q[np.arange(n), y] = 1.0
    if Q.shape != (n, K):
        raise ValueError(f"soft labels must have shape ({n}, {K}), got {Q.shape}")
    if np.any(Q < -1e-9) or not np.allclose(Q.sum(axis=1), 1.0, atol=1e-6):
        raise ValueError("soft labels must be row-stochastic")
    return Q


def _canonical_weights(sample_weight, n: int) -> np.ndarray:
    if sample_weight is None:
        return np.ones(n)
    weight = np.asarray(sample_weight, dtype=float).ravel()
    if len(weight) != n:
        raise ValueError(f"got {len(weight)} sample weights for {n} rows")
    if np.any(weight < 0):
        raise ValueError("sample weights must be non-negative")
    return weight


class SoftLabelSoftmaxRegression(FittedStateMixin):
    """L2-regularized multinomial logistic regression with soft targets.

    Parameters
    ----------
    n_classes:
        The number of classes ``K``.
    l2:
        L2 penalty strength on the weights (intercepts are unpenalized,
        matching the binary end model's default).
    max_iter / tol:
        L-BFGS iteration cap and gradient tolerance.
    warm_start:
        Reuse the previous solution as the initial point on refit — the
        interactive loop changes the soft labels only a little per
        iteration.

    Examples
    --------
    >>> import numpy as np
    >>> X = np.array([[0.0], [1.0], [4.0], [5.0]])
    >>> Q = np.array([[0.9, 0.1], [0.8, 0.2], [0.1, 0.9], [0.05, 0.95]])
    >>> clf = SoftLabelSoftmaxRegression(n_classes=2).fit(X, Q)
    >>> int(clf.predict(np.array([[5.0]]))[0])
    1

    Besides the full L-BFGS :meth:`fit`, the model offers
    :meth:`fit_minibatch` — a warm Adam continuation over the same
    analytic gradient, used by the incremental session between cold
    backstops (ENGINE.md §7).  Its optimizer state is part of
    ``_FITTED_ATTRS`` so a checkpointed session resumes the exact same
    minibatch trajectory.
    """

    _FITTED_ATTRS = (
        "coef_",
        "intercept_",
        "n_features_",
        "mb_m_",
        "mb_v_",
        "mb_t_",
        "mb_rng_state_",
    )

    def __init__(
        self,
        n_classes: int,
        l2: float = 1e-2,
        max_iter: int = 200,
        tol: float = 1e-6,
        warm_start: bool = True,
    ) -> None:
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        if l2 < 0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        self.n_classes = n_classes
        self.l2 = l2
        self.max_iter = max_iter
        self.tol = tol
        self.warm_start = warm_start
        self.coef_: np.ndarray | None = None  # (d, K)
        self.intercept_: np.ndarray | None = None  # (K,)
        self.n_features_: int | None = None
        # Minibatch-continuation (Adam) state — see fit_minibatch.
        self.mb_m_: np.ndarray | None = None
        self.mb_v_: np.ndarray | None = None
        self.mb_t_: int = 0
        self.mb_rng_state_: dict | None = None

    def fit(
        self,
        X,
        soft_labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
        max_iter: int | None = None,
    ) -> "SoftLabelSoftmaxRegression":
        """Fit to soft targets ``Q[i, k] = P(y_i = k)`` (rows sum to 1).

        A 1-D integer class vector may be passed as well; it is one-hot
        encoded.  ``max_iter`` optionally caps L-BFGS iterations for this
        call only (used by the incremental session on warm refits; see the
        binary end model).
        """
        X = sp.csr_matrix(X) if not sp.issparse(X) else X.tocsr()
        n, d = X.shape
        K = self.n_classes
        Q = _canonical_targets(soft_labels, n, K)
        weight = _canonical_weights(sample_weight, n)

        theta0 = np.zeros((d + 1) * K)
        if self.warm_start and self.coef_ is not None and self.n_features_ == d:
            theta0[: d * K] = self.coef_.ravel()
            theta0[d * K :] = self.intercept_

        def objective(theta):
            W = theta[: d * K].reshape(d, K)
            b = theta[d * K :]
            scores = np.asarray(X @ W) + b[None, :]
            # log-sum-exp per row for the expected cross-entropy
            shifted = scores - scores.max(axis=1, keepdims=True)
            log_norm = np.log(np.exp(shifted).sum(axis=1)) + scores.max(axis=1)
            loss = float(weight @ (log_norm - (Q * scores).sum(axis=1)))
            loss += 0.5 * self.l2 * float((W * W).sum())
            P = _softmax(scores)
            residual = weight[:, None] * (P - Q)  # (n, K)
            grad_W = np.asarray(X.T @ residual) + self.l2 * W
            grad_b = residual.sum(axis=0)
            return loss, np.concatenate([grad_W.ravel(), grad_b])

        maxiter = self.max_iter if max_iter is None else max(1, min(self.max_iter, max_iter))
        result = minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": maxiter, "gtol": self.tol, "maxcor": LBFGS_HISTORY},
        )
        self.coef_ = result.x[: d * K].reshape(d, K)
        self.intercept_ = result.x[d * K :]
        self.n_features_ = d
        reset_adam_moments(self)
        return self

    def fit_minibatch(
        self,
        X,
        soft_labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
        epochs: int | None = None,
        batch_size: int = 2048,
        lr: float = 0.05,
        rng=None,
    ) -> "SoftLabelSoftmaxRegression":
        """Warm Adam continuation over the same expected-CE objective.

        The K-class mirror of the binary end model's
        :meth:`~repro.endmodel.logistic.SoftLabelLogisticRegression.fit_minibatch`:
        shuffled minibatch Adam from the current coefficients over the
        per-example mean of :meth:`fit`'s analytic gradient (L2 scaled by
        1/n), with ``epochs=None`` running the same flat
        ``MIN_STEPS_PER_CALL`` step budget as the binary model
        (:func:`repro.endmodel.minibatch.resolve_step_budget`).
        Deterministic given the adopted RNG stream; falls back to a full
        :meth:`fit` when there is no compatible fitted state.
        """
        X = sp.csr_matrix(X) if not sp.issparse(X) else X.tocsr()
        n, d = X.shape
        n_steps = resolve_step_budget(epochs, n, batch_size, lr)
        K = self.n_classes
        Q = _canonical_targets(soft_labels, n, K)
        weight = _canonical_weights(sample_weight, n)
        if self.coef_ is None or self.n_features_ != d or n == 0:
            return self.fit(X, Q, sample_weight=sample_weight)

        gen = resume_minibatch_rng(self, rng)
        theta = np.concatenate([self.coef_.ravel(), self.intercept_])
        l2_scale = self.l2 / n
        grad = np.empty((d + 1) * K)
        step = 0
        while step < n_steps:
            order = gen.permutation(n)
            for start in range(0, n, batch_size):
                if step == n_steps:
                    break
                batch = order[start : start + batch_size]
                Xb = X[batch]
                W = theta[: d * K].reshape(d, K)
                scores = np.asarray(Xb @ W) + theta[d * K :][None, :]
                residual = weight[batch, None] * (_softmax(scores) - Q[batch])
                inv_b = 1.0 / len(batch)
                grad[: d * K] = (
                    np.asarray(Xb.T @ residual).ravel() * inv_b + l2_scale * theta[: d * K]
                )
                grad[d * K :] = residual.sum(axis=0) * inv_b
                adam_step(self, theta, grad, lr)
                step += 1
        self.coef_ = theta[: d * K].reshape(d, K).copy()
        self.intercept_ = theta[d * K :].copy()
        self.n_features_ = d
        self.mb_rng_state_ = gen.bit_generator.state
        return self

    def decision_function(self, X) -> np.ndarray:
        """Raw class scores ``X·W + b``, shape ``(n, K)``."""
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        return np.asarray(X @ self.coef_) + self.intercept_[None, :]

    def predict_proba(self, X) -> np.ndarray:
        """``(n, K)`` class probabilities."""
        return _softmax(self.decision_function(X))

    def predict_proba_rows(self, X, rows) -> np.ndarray:
        """``(len(rows), K)`` class probabilities for the given rows only.

        Sliced prediction for partial-split consumers; matches the
        corresponding rows of the full :meth:`predict_proba`.
        """
        rows = np.asarray(rows, dtype=np.intp)
        if rows.size == 0:
            return np.zeros((0, self.n_classes))
        lo, hi = int(rows.min()), int(rows.max())
        if lo < 0 or hi >= X.shape[0]:
            raise IndexError(
                f"row indices must lie in [0, {X.shape[0]}), got range [{lo}, {hi}]"
            )
        return _softmax(self.decision_function(X[rows]))

    def predict(self, X) -> np.ndarray:
        """Hard class predictions (argmax)."""
        return np.argmax(self.decision_function(X), axis=1).astype(int)

    def clone_unfitted(self) -> "SoftLabelSoftmaxRegression":
        """A fresh estimator with the same hyperparameters."""
        return SoftLabelSoftmaxRegression(
            n_classes=self.n_classes,
            l2=self.l2,
            max_iter=self.max_iter,
            tol=self.tol,
            warm_start=self.warm_start,
        )
