"""Evaluation metrics and the paper's learning-curve summary.

The paper reports Accuracy for all datasets except SMS (F1, positive =
spam), and summarizes each learning curve by the mean of its evaluated
points — "the average performance on the learning curve, which essentially
corresponds to its area under curve" (Sec. 5.1).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.utils.validation import check_binary_labels, check_matching_length


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact ±1 agreements."""
    y_true = check_binary_labels("y_true", y_true)
    y_pred = check_binary_labels("y_pred", y_pred)
    check_matching_length("y_true", y_true, "y_pred", y_pred)
    return float((y_true == y_pred).mean())


def precision_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Precision of the +1 class (0.0 when nothing is predicted positive)."""
    y_true = check_binary_labels("y_true", y_true)
    y_pred = check_binary_labels("y_pred", y_pred)
    check_matching_length("y_true", y_true, "y_pred", y_pred)
    predicted_pos = y_pred == 1
    if not predicted_pos.any():
        return 0.0
    return float((y_true[predicted_pos] == 1).mean())


def recall_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Recall of the +1 class (0.0 when no positives exist)."""
    y_true = check_binary_labels("y_true", y_true)
    y_pred = check_binary_labels("y_pred", y_pred)
    check_matching_length("y_true", y_true, "y_pred", y_pred)
    actual_pos = y_true == 1
    if not actual_pos.any():
        return 0.0
    return float((y_pred[actual_pos] == 1).mean())


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Harmonic mean of precision and recall for the +1 class."""
    p = precision_score(y_true, y_pred)
    r = recall_score(y_true, y_pred)
    if p + r == 0:
        return 0.0
    return 2.0 * p * r / (p + r)


def soft_label_accuracy(y_true: np.ndarray, proba: np.ndarray) -> float:
    """Accuracy of thresholded soft labels — the contextualizer's tuning signal.

    Used by Nemo to pick the refinement-radius percentile on the validation
    split (Sec. 4.3: "selected based on the validation accuracy of the
    resultant estimated soft labels").
    """
    y_true = check_binary_labels("y_true", y_true)
    proba = np.asarray(proba, dtype=float)
    check_matching_length("y_true", y_true, "proba", proba)
    preds = np.where(proba >= 0.5, 1, -1)
    return float((preds == y_true).mean())


METRICS: dict[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "accuracy": accuracy_score,
    "f1": f1_score,
    "precision": precision_score,
    "recall": recall_score,
}


def get_metric(name: str) -> Callable[[np.ndarray, np.ndarray], float]:
    """Look up a metric function by name."""
    try:
        return METRICS[name]
    except KeyError:
        raise ValueError(f"unknown metric {name!r}; choose from {sorted(METRICS)}") from None


def learning_curve_summary(scores: list[float] | np.ndarray) -> float:
    """The paper's curve summary: the mean of the evaluated points.

    Given curve points ``{(x_i, y_i)}``, returns ``(1/n) Σ y_i`` — the
    (normalized) area under the learning curve for evenly-spaced
    evaluations.
    """
    arr = np.asarray(scores, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty learning curve")
    return float(arr.mean())
