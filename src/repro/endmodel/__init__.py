"""End models (soft-label logistic/softmax regression), calibration, metrics."""

from repro.endmodel.calibration import PlattCalibrator
from repro.endmodel.logistic import SoftLabelLogisticRegression
from repro.endmodel.softmax import SoftLabelSoftmaxRegression
from repro.endmodel.metrics import (
    METRICS,
    accuracy_score,
    f1_score,
    get_metric,
    learning_curve_summary,
    precision_score,
    recall_score,
    soft_label_accuracy,
)

__all__ = [
    "SoftLabelLogisticRegression",
    "SoftLabelSoftmaxRegression",
    "PlattCalibrator",
    "METRICS",
    "get_metric",
    "accuracy_score",
    "f1_score",
    "precision_score",
    "recall_score",
    "soft_label_accuracy",
    "learning_curve_summary",
]
