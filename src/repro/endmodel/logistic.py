"""Soft-label logistic regression — the paper's fixed end model.

The end model is trained on the label model's probabilistic labels
(paper Sec. 2, stage 3): the loss is the expected cross-entropy under the
soft targets, minimized with L-BFGS on an analytic gradient.  Supports
warm starts so the interactive loop can refit cheaply every iteration.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.optimize import minimize

from repro.endmodel.minibatch import (
    adam_step,
    reset_adam_moments,
    resolve_step_budget,
    resume_minibatch_rng,
)
from repro.utils.state import FittedStateMixin


#: L-BFGS history size (scipy's default is 10).  The objective dimension
#: is the TF-IDF vocabulary (roughly a thousand features), and backstop
#: refits restart from an anchor that is a full warm cycle stale — with
#: only 10 curvature pairs those fits crawl through ~100+ gradient evals,
#: while a deeper history converges in a fraction of that.  Memory cost
#: is 2·maxcor·d doubles, well under a megabyte at this scale.
LBFGS_HISTORY = 30


def _sigmoid(x):
    return 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))


def _canonical_targets(soft_labels, n: int) -> np.ndarray:
    """Targets as ``q_i = P(y_i = +1) ∈ [0, 1]``; hard ±1 labels allowed."""
    q = np.asarray(soft_labels, dtype=float).ravel()
    if len(q) != n:
        raise ValueError(f"got {len(q)} targets for {n} rows")
    if q.size and q.min() < 0.0:  # negative targets only occur as hard ±1
        if not ((q == -1.0) | (q == 1.0)).all():
            raise ValueError("soft labels must lie in [0, 1] (or be ±1 hard labels)")
        q = (q + 1.0) / 2.0
    if np.any(q > 1):
        raise ValueError("soft labels must lie in [0, 1] (or be ±1 hard labels)")
    return q


def _canonical_weights(sample_weight, n: int) -> np.ndarray:
    if sample_weight is None:
        return np.ones(n)
    weight = np.asarray(sample_weight, dtype=float).ravel()
    if len(weight) != n:
        raise ValueError(f"got {len(weight)} sample weights for {n} rows")
    if np.any(weight < 0):
        raise ValueError("sample weights must be non-negative")
    return weight


class SoftLabelLogisticRegression(FittedStateMixin):
    """L2-regularized logistic regression with probabilistic targets.

    Parameters
    ----------
    l2:
        L2 penalty strength on the weights (applied to the summed loss).
    penalize_intercept:
        Optionally include the intercept in the L2 penalty
        (liblinear-style).  Off by default, matching scikit-learn's lbfgs
        solver; enabling it tames the intercept blow-up that occurs when
        fitting one-sided soft labels (every LF voting the same class),
        at the cost of a bias on imbalanced data.
    max_iter:
        L-BFGS iteration cap.
    tol:
        L-BFGS convergence tolerance.
    warm_start:
        Reuse the previous solution as the initial point on refit — the
        interactive loop changes the soft labels only a little per
        iteration, so this cuts fitting cost substantially.

    Besides the full L-BFGS :meth:`fit`, the model offers
    :meth:`fit_minibatch` — a warm Adam continuation over the same
    analytic gradient, used by the incremental session between cold
    backstops (ENGINE.md §7).  Its optimizer state (first/second moments,
    step count, shuffle-RNG state) is part of ``_FITTED_ATTRS`` so a
    checkpointed session resumes the exact same minibatch trajectory.

    Examples
    --------
    >>> import numpy as np
    >>> X = np.array([[0.0], [1.0], [2.0], [3.0]])
    >>> q = np.array([0.05, 0.1, 0.9, 0.95])
    >>> clf = SoftLabelLogisticRegression().fit(X, q)
    >>> bool(clf.predict(np.array([[3.0]]))[0] == 1)
    True
    """

    _FITTED_ATTRS = (
        "coef_",
        "intercept_",
        "n_features_",
        "mb_m_",
        "mb_v_",
        "mb_t_",
        "mb_rng_state_",
    )

    def __init__(
        self,
        l2: float = 1e-2,
        penalize_intercept: bool = False,
        max_iter: int = 200,
        tol: float = 1e-6,
        warm_start: bool = True,
    ) -> None:
        if l2 < 0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        self.l2 = l2
        self.penalize_intercept = penalize_intercept
        self.max_iter = max_iter
        self.tol = tol
        self.warm_start = warm_start
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_features_: int | None = None
        # Minibatch-continuation (Adam) state — see fit_minibatch.
        self.mb_m_: np.ndarray | None = None
        self.mb_v_: np.ndarray | None = None
        self.mb_t_: int = 0
        self.mb_rng_state_: dict | None = None

    def fit(
        self,
        X,
        soft_labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
        max_iter: int | None = None,
    ) -> "SoftLabelLogisticRegression":
        """Fit to soft targets ``q_i = P(y_i = +1) ∈ [0, 1]``.

        Hard ±1 labels may be passed as well; they are converted to
        {0, 1} targets.  ``max_iter`` optionally caps L-BFGS iterations
        for this call only (the incremental session passes a small cap on
        warm refits — the loss is strictly convex, so the capped solution
        stays on the path to the unique optimum that a later full refit
        reaches exactly).
        """
        X = sp.csr_matrix(X) if not sp.issparse(X) else X.tocsr()
        n, d = X.shape
        q = _canonical_targets(soft_labels, n)
        weight = _canonical_weights(sample_weight, n)

        theta0 = np.zeros(d + 1)
        if self.warm_start and self.coef_ is not None and self.n_features_ == d:
            theta0[:d] = self.coef_
            theta0[d] = self.intercept_

        def objective(theta):
            w, b = theta[:d], theta[d]
            scores = np.asarray(X @ w).ravel() + b
            # Expected CE:  -q·log σ(s) - (1-q)·log σ(-s)
            #             = softplus(-s) + s·(1-q)   [softplus(s) = s + softplus(-s)]
            loss = weight @ (np.logaddexp(0.0, -scores) + scores * (1.0 - q))
            loss += 0.5 * self.l2 * (w @ w)
            residual = weight * (_sigmoid(scores) - q)
            grad_w = np.asarray(X.T @ residual).ravel() + self.l2 * w
            grad_b = residual.sum()
            if self.penalize_intercept:
                loss += 0.5 * self.l2 * b * b
                grad_b += self.l2 * b
            return loss, np.concatenate([grad_w, [grad_b]])

        maxiter = self.max_iter if max_iter is None else max(1, min(self.max_iter, max_iter))
        result = minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": maxiter, "gtol": self.tol, "maxcor": LBFGS_HISTORY},
        )
        self.coef_ = result.x[:d]
        self.intercept_ = float(result.x[d])
        self.n_features_ = d
        reset_adam_moments(self)
        return self

    def fit_minibatch(
        self,
        X,
        soft_labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
        epochs: int | None = None,
        batch_size: int = 2048,
        lr: float = 0.05,
        rng=None,
    ) -> "SoftLabelLogisticRegression":
        """Warm Adam continuation over the same expected-CE objective.

        A fixed budget of shuffled minibatch Adam steps starting from the
        current coefficients — the cheap between-backstop refit for the
        incremental session (ENGINE.md §7).  Gradients are the per-example
        mean of the analytic gradient :meth:`fit` uses (L2 scaled by 1/n
        accordingly), so both optimizers descend the same loss surface.
        ``epochs=None`` runs exactly ``MIN_STEPS_PER_CALL`` Adam steps —
        per-call cost flat in ``n`` — while an explicit ``epochs`` runs
        that many whole passes
        (:func:`repro.endmodel.minibatch.resolve_step_budget`).
        Deterministic given the adopted RNG stream; falls back to a full
        :meth:`fit` when there is no compatible fitted state to continue
        from.  ``rng`` seeds the private shuffle stream on first use only
        (see :func:`repro.endmodel.minibatch.resume_minibatch_rng`).
        """
        X = sp.csr_matrix(X) if not sp.issparse(X) else X.tocsr()
        n, d = X.shape
        n_steps = resolve_step_budget(epochs, n, batch_size, lr)
        q = _canonical_targets(soft_labels, n)
        weight = _canonical_weights(sample_weight, n)
        if self.coef_ is None or self.n_features_ != d or n == 0:
            return self.fit(X, q, sample_weight=sample_weight)

        gen = resume_minibatch_rng(self, rng)
        theta = np.concatenate([self.coef_, [self.intercept_]])
        l2_scale = self.l2 / n
        grad = np.empty(d + 1)
        step = 0
        while step < n_steps:
            order = gen.permutation(n)
            for start in range(0, n, batch_size):
                if step == n_steps:
                    break
                batch = order[start : start + batch_size]
                Xb = X[batch]
                scores = np.asarray(Xb @ theta[:d]).ravel() + theta[d]
                residual = weight[batch] * (_sigmoid(scores) - q[batch])
                inv_b = 1.0 / len(batch)
                grad[:d] = np.asarray(Xb.T @ residual).ravel() * inv_b + l2_scale * theta[:d]
                grad[d] = residual.sum() * inv_b
                if self.penalize_intercept:
                    grad[d] += l2_scale * theta[d]
                adam_step(self, theta, grad, lr)
                step += 1
        self.coef_ = theta[:d].copy()
        self.intercept_ = float(theta[d])
        self.n_features_ = d
        self.mb_rng_state_ = gen.bit_generator.state
        return self

    def decision_function(self, X) -> np.ndarray:
        """Raw scores ``w·x + b``."""
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        return np.asarray(X @ self.coef_).ravel() + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """``P(y = +1 | x)``."""
        return _sigmoid(self.decision_function(X))

    def predict_proba_rows(self, X, rows) -> np.ndarray:
        """``P(y = +1 | x)`` for the given ``rows`` of ``X`` only.

        Sliced prediction for partial-split consumers: cost scales with
        the slice, and each row's probability is the same per-row dot
        product the full :meth:`predict_proba` computes, so the outputs
        match row-for-row.
        """
        rows = np.asarray(rows, dtype=np.intp)
        if rows.size == 0:
            return np.zeros(0)
        lo, hi = int(rows.min()), int(rows.max())
        if lo < 0 or hi >= X.shape[0]:
            raise IndexError(
                f"row indices must lie in [0, {X.shape[0]}), got range [{lo}, {hi}]"
            )
        return _sigmoid(self.decision_function(X[rows]))

    def predict(self, X) -> np.ndarray:
        """Hard ±1 predictions."""
        return np.where(self.decision_function(X) >= 0.0, 1, -1).astype(int)

    def clone_unfitted(self) -> "SoftLabelLogisticRegression":
        """A fresh estimator with the same hyperparameters."""
        return SoftLabelLogisticRegression(
            l2=self.l2,
            penalize_intercept=self.penalize_intercept,
            max_iter=self.max_iter,
            tol=self.tol,
            warm_start=self.warm_start,
        )
