"""Soft-label logistic regression — the paper's fixed end model.

The end model is trained on the label model's probabilistic labels
(paper Sec. 2, stage 3): the loss is the expected cross-entropy under the
soft targets, minimized with L-BFGS on an analytic gradient.  Supports
warm starts so the interactive loop can refit cheaply every iteration.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.optimize import minimize

from repro.utils.state import FittedStateMixin


def _sigmoid(x):
    return 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))


class SoftLabelLogisticRegression(FittedStateMixin):
    """L2-regularized logistic regression with probabilistic targets.

    Parameters
    ----------
    l2:
        L2 penalty strength on the weights (applied to the summed loss).
    penalize_intercept:
        Optionally include the intercept in the L2 penalty
        (liblinear-style).  Off by default, matching scikit-learn's lbfgs
        solver; enabling it tames the intercept blow-up that occurs when
        fitting one-sided soft labels (every LF voting the same class),
        at the cost of a bias on imbalanced data.
    max_iter:
        L-BFGS iteration cap.
    tol:
        L-BFGS convergence tolerance.
    warm_start:
        Reuse the previous solution as the initial point on refit — the
        interactive loop changes the soft labels only a little per
        iteration, so this cuts fitting cost substantially.

    Examples
    --------
    >>> import numpy as np
    >>> X = np.array([[0.0], [1.0], [2.0], [3.0]])
    >>> q = np.array([0.05, 0.1, 0.9, 0.95])
    >>> clf = SoftLabelLogisticRegression().fit(X, q)
    >>> bool(clf.predict(np.array([[3.0]]))[0] == 1)
    True
    """

    _FITTED_ATTRS = ("coef_", "intercept_", "n_features_")

    def __init__(
        self,
        l2: float = 1e-2,
        penalize_intercept: bool = False,
        max_iter: int = 200,
        tol: float = 1e-6,
        warm_start: bool = True,
    ) -> None:
        if l2 < 0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        self.l2 = l2
        self.penalize_intercept = penalize_intercept
        self.max_iter = max_iter
        self.tol = tol
        self.warm_start = warm_start
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_features_: int | None = None

    def fit(
        self,
        X,
        soft_labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
        max_iter: int | None = None,
    ) -> "SoftLabelLogisticRegression":
        """Fit to soft targets ``q_i = P(y_i = +1) ∈ [0, 1]``.

        Hard ±1 labels may be passed as well; they are converted to
        {0, 1} targets.  ``max_iter`` optionally caps L-BFGS iterations
        for this call only (the incremental session passes a small cap on
        warm refits — the loss is strictly convex, so the capped solution
        stays on the path to the unique optimum that a later full refit
        reaches exactly).
        """
        X = sp.csr_matrix(X) if not sp.issparse(X) else X.tocsr()
        n, d = X.shape
        q = np.asarray(soft_labels, dtype=float).ravel()
        if len(q) != n:
            raise ValueError(f"got {len(q)} targets for {n} rows")
        if q.size and q.min() < 0.0:  # negative targets only occur as hard ±1
            if not ((q == -1.0) | (q == 1.0)).all():
                raise ValueError("soft labels must lie in [0, 1] (or be ±1 hard labels)")
            q = (q + 1.0) / 2.0
        if np.any(q > 1):
            raise ValueError("soft labels must lie in [0, 1] (or be ±1 hard labels)")
        if sample_weight is None:
            weight = np.ones(n)
        else:
            weight = np.asarray(sample_weight, dtype=float).ravel()
            if len(weight) != n:
                raise ValueError(f"got {len(weight)} sample weights for {n} rows")
            if np.any(weight < 0):
                raise ValueError("sample weights must be non-negative")

        theta0 = np.zeros(d + 1)
        if self.warm_start and self.coef_ is not None and self.n_features_ == d:
            theta0[:d] = self.coef_
            theta0[d] = self.intercept_

        def objective(theta):
            w, b = theta[:d], theta[d]
            scores = np.asarray(X @ w).ravel() + b
            # Expected CE:  -q·log σ(s) - (1-q)·log σ(-s)
            loss = weight @ (np.logaddexp(0.0, -scores) * q + np.logaddexp(0.0, scores) * (1 - q))
            loss += 0.5 * self.l2 * (w @ w)
            residual = weight * (_sigmoid(scores) - q)
            grad_w = np.asarray(X.T @ residual).ravel() + self.l2 * w
            grad_b = residual.sum()
            if self.penalize_intercept:
                loss += 0.5 * self.l2 * b * b
                grad_b += self.l2 * b
            return loss, np.concatenate([grad_w, [grad_b]])

        maxiter = self.max_iter if max_iter is None else max(1, min(self.max_iter, max_iter))
        result = minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": maxiter, "gtol": self.tol},
        )
        self.coef_ = result.x[:d]
        self.intercept_ = float(result.x[d])
        self.n_features_ = d
        return self

    def decision_function(self, X) -> np.ndarray:
        """Raw scores ``w·x + b``."""
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        return np.asarray(X @ self.coef_).ravel() + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """``P(y = +1 | x)``."""
        return _sigmoid(self.decision_function(X))

    def predict_proba_rows(self, X, rows) -> np.ndarray:
        """``P(y = +1 | x)`` for the given ``rows`` of ``X`` only.

        Sliced prediction for partial-split consumers: cost scales with
        the slice, and each row's probability is the same per-row dot
        product the full :meth:`predict_proba` computes, so the outputs
        match row-for-row.
        """
        rows = np.asarray(rows, dtype=np.intp)
        if rows.size == 0:
            return np.zeros(0)
        return _sigmoid(self.decision_function(X[rows]))

    def predict(self, X) -> np.ndarray:
        """Hard ±1 predictions."""
        return np.where(self.decision_function(X) >= 0.0, 1, -1).astype(int)

    def clone_unfitted(self) -> "SoftLabelLogisticRegression":
        """A fresh estimator with the same hyperparameters."""
        return SoftLabelLogisticRegression(
            l2=self.l2,
            penalize_intercept=self.penalize_intercept,
            max_iter=self.max_iter,
            tol=self.tol,
            warm_start=self.warm_start,
        )
