"""Platt calibration of end-model probabilities.

SEU approximates ground truth with the end model's predictions (paper
Sec. 4.2).  Raw logistic-regression probabilities are badly overconfident
*off the training support* — early in the interactive loop the LF set is
often one-sided, the covered region is small, and the model extrapolates
a single class everywhere with near-certainty.  Feeding that to SEU is
self-confirming: the selector scores "imagined harm" for exactly the LFs
that would correct the model, and locks onto one polarity.

Platt scaling on the labeled validation split repairs this with the same
resource the paper already uses for hyperparameter tuning: fit
``p_cal = σ(a·s + b)`` on validation decision scores.  When the model is
no better than chance, the fitted slope ``a ≈ 0`` flattens every
probability toward the base rate (a *neutral* proxy); as the model becomes
genuinely accurate the slope grows and confidence is restored.
"""

from __future__ import annotations

import numpy as np

from repro.endmodel.logistic import SoftLabelLogisticRegression
from repro.utils.validation import check_binary_labels, check_matching_length


class PlattCalibrator:
    """One-dimensional logistic recalibration of decision scores.

    Parameters
    ----------
    l2:
        Mild regularization of the slope/offset — keeps the map stable on
        small validation splits.
    min_slope:
        The slope is clamped below at this value; a *negative* slope would
        mean trusting the model's predictions inverted, which turns a
        transiently-bad model into actively-poisonous supervision.
    """

    def __init__(self, l2: float = 1.0, min_slope: float = 0.0) -> None:
        self.l2 = l2
        self.min_slope = min_slope
        self.slope_: float | None = None
        self.offset_: float = 0.0

    def fit(self, scores: np.ndarray, y: np.ndarray) -> "PlattCalibrator":
        """Fit the calibration map on validation ``(scores, ±1 labels)``."""
        scores = np.asarray(scores, dtype=float).ravel()
        y = check_binary_labels("y", y)
        check_matching_length("scores", scores, "y", y)
        # Standardize scores so l2 means the same thing at every model scale.
        scale = float(np.std(scores))
        if scale < 1e-12:
            # Constant scores carry no ranking information: calibrate to the
            # base rate alone.
            self.slope_ = 0.0
            base = float(np.clip((y == 1).mean(), 1e-3, 1 - 1e-3))
            self.offset_ = float(np.log(base / (1 - base)))
            self._scale = 1.0
            return self
        model = SoftLabelLogisticRegression(
            l2=self.l2, penalize_intercept=False, warm_start=False
        )
        model.fit((scores / scale)[:, None], (y + 1) / 2.0)
        self.slope_ = max(float(model.coef_[0]), self.min_slope)
        self.offset_ = float(model.intercept_)
        self._scale = scale
        return self

    def transform(self, scores: np.ndarray) -> np.ndarray:
        """Map raw decision scores to calibrated ``P(y=+1)``."""
        if self.slope_ is None:
            raise RuntimeError("PlattCalibrator.transform called before fit")
        scores = np.asarray(scores, dtype=float).ravel()
        z = self.slope_ * (scores / self._scale) + self.offset_
        return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))

    def fit_transform_from(
        self,
        model: SoftLabelLogisticRegression,
        X_valid,
        y_valid: np.ndarray,
        X_target,
    ) -> np.ndarray:
        """Calibrate ``model`` on a validation split, then score ``X_target``."""
        self.fit(model.decision_function(X_valid), y_valid)
        return self.transform(model.decision_function(X_target))
