"""Shared minibatch-continuation (Adam) machinery for the end models.

Both soft-label end models expose ``fit_minibatch`` — a warm stochastic
continuation of their convex objective used by the incremental session
between cold backstops (ENGINE.md §7).  The optimizer is plain Adam over
the same analytic per-example gradients the L-BFGS path uses, so the two
paths descend the identical loss surface; only the step rule differs.

Everything that makes a minibatch pass non-deterministic lives here and
is owned *by the model* as fitted state (``mb_m_``/``mb_v_``/``mb_t_``
moments and step count, ``mb_rng_state_`` shuffle-stream state), so a
checkpoint round-trip resumes the exact trajectory: the first
``fit_minibatch`` call adopts the caller-provided seed stream, and every
later call resumes from the stored bit-generator state, ignoring the
argument.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng

#: Adam hyperparameters (the standard defaults).
ADAM_BETA1 = 0.9
ADAM_BETA2 = 0.999
ADAM_EPS = 1e-8

#: Adam steps per ``fit_minibatch`` call when ``epochs`` is left on auto:
#: at small n (a single batch) the pass repeats until the update count is
#: useful, and at large n the pass stops mid-epoch once the budget is
#: spent — either way the per-call cost is O(steps × batch), *flat* in
#: the training size, which is what keeps warm refit cost from scaling
#: with n between backstops.
MIN_STEPS_PER_CALL = 16


def resolve_step_budget(epochs: int | None, n: int, batch_size: int, lr: float) -> int:
    """Validate the minibatch arguments and resolve the Adam step budget.

    Explicit ``epochs`` means whole shuffled passes — ``epochs`` ×
    ``ceil(n / batch_size)`` steps, the historical semantics.  Auto mode
    (``epochs=None``) runs exactly :data:`MIN_STEPS_PER_CALL` steps,
    drawing fresh permutations as needed and abandoning the remainder of
    the final epoch: warm refits track the shifting soft targets with a
    useful number of updates per call without ever paying a full O(n)
    pass on a large covered set.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if lr <= 0:
        raise ValueError(f"lr must be > 0, got {lr}")
    if epochs is None:
        return MIN_STEPS_PER_CALL
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    return epochs * max(1, -(-n // batch_size))


def resume_minibatch_rng(model, rng) -> np.random.Generator:
    """The model's private shuffle generator, resumed from fitted state.

    On the first call the stream is *adopted* from ``rng`` (a seed, a
    ``Generator``, or ``None``) by copying its current bit-generator
    state — the caller's stream is never advanced, so an engine handing
    over a spawned child keeps its own draw sequence untouched.  Every
    subsequent call resumes from ``model.mb_rng_state_`` regardless of
    the argument, which is what makes restored checkpoints continue the
    identical shuffle sequence.
    """
    if model.mb_rng_state_ is None:
        model.mb_rng_state_ = ensure_rng(rng).bit_generator.state
    gen = np.random.default_rng()  # repro-lint: disable=seeded-rng -- scratch generator; its state is overwritten from mb_rng_state_ on the next line
    gen.bit_generator.state = model.mb_rng_state_
    return gen


def adam_step(model, theta: np.ndarray, grad: np.ndarray, lr: float) -> None:
    """One in-place Adam update of ``theta``; moments live on the model.

    The moment buffers are (re)initialized whenever their shape stops
    matching ``theta`` — a dimensionality change means a new feature
    space, where stale moments are meaningless.
    """
    if model.mb_m_ is None or model.mb_m_.shape != theta.shape:
        model.mb_m_ = np.zeros_like(theta)
        model.mb_v_ = np.zeros_like(theta)
        model.mb_t_ = 0
    model.mb_t_ += 1
    m, v = model.mb_m_, model.mb_v_
    m += (1.0 - ADAM_BETA1) * (grad - m)
    v += (1.0 - ADAM_BETA2) * (grad * grad - v)
    mhat = m / (1.0 - ADAM_BETA1**model.mb_t_)
    vhat = v / (1.0 - ADAM_BETA2**model.mb_t_)
    theta -= lr * mhat / (np.sqrt(vhat) + ADAM_EPS)


def reset_adam_moments(model) -> None:
    """Drop the moment estimates (a full fit moved the parameters far).

    The shuffle-stream state is deliberately kept: the minibatch RNG is a
    single session-long stream, not a per-fit one.
    """
    model.mb_m_ = None
    model.mb_v_ = None
    model.mb_t_ = 0


