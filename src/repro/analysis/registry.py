"""Rule registry and the two-phase rule contract.

A rule is a class with a unique ``name``, a one-line ``description``,
and two hooks the engine calls with a :class:`FileContext` per file:

* ``collect(ctx)`` — optional pre-pass over *every* walked file, run to
  completion before any checking.  Rules that need cross-file facts
  (e.g. the ``FittedStateMixin`` class hierarchy, which spans modules)
  build their index here.
* ``check(ctx)`` — yield :class:`~repro.analysis.findings.Finding`
  objects for this file.  ``self.finding(ctx, node, message)`` anchors
  one to an AST node.

Registering a rule is one decorator::

    from repro.analysis.registry import Rule, register

    @register
    class MyRule(Rule):
        name = "my-rule"
        description = "what contract this enforces"

        def check(self, ctx):
            yield self.finding(ctx, some_node, "explanation")

and importing its module from ``repro.analysis.rules`` makes it part of
every ``repro lint`` run.  Rules are instantiated fresh per run, so
``collect`` state never leaks across invocations.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import Finding


@dataclass
class FileContext:
    """Everything a rule may inspect about one walked file."""

    path: Path  # absolute on-disk location
    rel_path: str  # POSIX path relative to the lint root (finding anchor)
    source: str
    tree: ast.Module
    lines: list[str]

    _parents: dict | None = None

    def parent_map(self) -> dict:
        """``child -> parent`` over the whole tree (built once, memoized)."""
        if self._parents is None:
            self._parents = {
                child: parent
                for parent in ast.walk(self.tree)
                for child in ast.iter_child_nodes(parent)
            }
        return self._parents


class Rule:
    """Base class for lint rules; subclass, set ``name``, implement ``check``."""

    name: str = "abstract"
    description: str = ""

    def collect(self, ctx: FileContext) -> None:
        """Optional cross-file pre-pass (runs on every file before checks)."""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        raise NotImplementedError
        yield  # pragma: no cover

    def finding(self, ctx: FileContext, node: ast.AST | None, message: str) -> Finding:
        """A finding of this rule anchored to ``node`` (or the file's line 1)."""
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(rule=self.name, path=ctx.rel_path, line=line, col=col, message=message)


#: name -> rule class.  Populated by the ``@register`` decorator at import
#: time of ``repro.analysis.rules``.
RULE_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (names must be unique)."""
    if not cls.name or cls.name == "abstract":
        raise ValueError(f"rule class {cls.__name__} must define a non-default 'name'")
    existing = RULE_REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule name {cls.name!r} ({existing.__name__} vs {cls.__name__})")
    RULE_REGISTRY[cls.name] = cls
    return cls


def default_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in stable name order."""
    import repro.analysis.rules  # noqa: F401  (importing registers the rules)

    return [RULE_REGISTRY[name]() for name in sorted(RULE_REGISTRY)]


def all_rule_names(extra: Iterable[str] = ()) -> set[str]:
    """Registered rule names plus the engine's meta-finding names."""
    import repro.analysis.rules  # noqa: F401

    names = set(RULE_REGISTRY)
    names.update(extra)
    return names
