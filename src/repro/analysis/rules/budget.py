"""Adapter line budget: the multiclass adapter modules must stay thin.

Re-homed from the standalone ``tools/adapter_budget.py`` guard (which
remains as a thin shim over these constants): the mirror-removal
refactor rewrote the formerly duplicated ``repro.multiclass`` subsystems
as adapters over the cardinality-generic core (ARCHITECTURE.md), and a
module growing past the budget is the tell-tale of logic being
re-duplicated into the adapter layer instead of generalized in ``core``.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import FileContext, Rule, register

#: Per-module total line budget (blank lines and docstrings included: the
#: point is that these files stay *small*, not merely logic-free).
LINE_BUDGET = 55

#: Lint-root-relative adapter modules under budget guard.
ADAPTER_MODULES = (
    "src/repro/multiclass/contextualizer.py",
    "src/repro/multiclass/selection.py",
    "src/repro/multiclass/seu.py",
    "src/repro/multiclass/simulated_user.py",
    "src/repro/multiclass/user_model.py",
    "src/repro/multiclass/utility.py",
)


@register
class AdapterBudget(Rule):
    name = "adapter-budget"
    description = (
        f"multiclass adapter modules must stay within {LINE_BUDGET} total "
        "lines — grow the cardinality-generic core instead"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel_path not in ADAPTER_MODULES:
            return
        n_lines = len(ctx.lines)
        if n_lines > LINE_BUDGET:
            yield self.finding(
                ctx,
                None,
                f"{n_lines} lines exceeds the {LINE_BUDGET}-line adapter "
                "budget — move the logic into the cardinality-generic core "
                "instead",
            )
