"""Dense vote-matrix scans stay out of the label-model hot path.

The label-model package's cold and warm paths are contractually O(nnz):
sufficient statistics, posteriors, and EM tables are computed from the
:class:`~repro.labelmodel.matrix.ColumnStats` flat entry arrays, never by
re-scanning the dense ``(n, m)`` matrix (ENGINE.md §10).  A dense
coverage scan — ``(L != 0)``, ``L != ABSTAIN``, ``(L != 0).any(axis=1)``
— allocates an ``n·m`` boolean and walks every cell, which is exactly
the floor the sparse kernels removed; one stray scan on a refit path
silently reverts the package to ``O(n·m)``.

The rule flags ``==``/``!=`` comparisons against the abstain sentinel
(literal ``0``, ``ABSTAIN``, ``MC_ABSTAIN``, or an ``.abstain``
attribute) whose boolean result is consumed as an array — assigned,
returned, indexed with, reduced, or passed to a call — inside the
label-model package (and the multiclass Dawid–Skene model).  Scalar
guards (``if m == 0:``) never fire: a comparison used directly as a
branch condition is not a matrix scan.

Designated dense code is exempt:

* functions whose name ends in ``_dense`` — the preserved legacy
  arithmetic kept as the ``cold_path="dense"`` defeat switch and parity
  oracle;
* ``marginal_ll`` / ``_marginal_ll`` — diagnostic log-likelihood
  oracles, dense by design and referenced by tests;
* the validation and diagnostics helpers of ``matrix.py``
  (``validate_label_matrix``, ``coverage_mask``, ``lf_accuracies``, …)
  — the designated place dense matrices are inspected;
* dense-only models with no stats path (``majority.py``, ``triplet.py``,
  ``implyloss.py``) — they take the matrix as given and are never on the
  incremental refit path.

Anything else needs a ``# repro-lint: disable=dense-vote-scan`` pragma
with a reason, which is the intended speed bump.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import FileContext, Rule, register

#: Path prefix / exact files the rule applies to.
_SCOPE_PREFIX = "src/repro/labelmodel/"
_SCOPE_EXTRA = frozenset({"src/repro/multiclass/dawid_skene.py"})

#: Modules under the prefix that are dense-only by design (no stats path).
_EXEMPT_MODULES = frozenset({"majority.py", "triplet.py", "implyloss.py"})

#: Function names that are designated dense helpers (validation,
#: diagnostics, dense→stats conversion, log-lik oracles).
_DESIGNATED_FUNCS = frozenset(
    {
        "validate_label_matrix",
        "coverage_mask",
        "coverage",
        "lf_coverages",
        "lf_accuracies",
        "conflict_counts",
        "abstain_counts",
        "overlap_fraction",
        "conflict_fraction",
        "vote_tallies",
        "summary",
        "column_stats_from_dense",
        "from_dense",
        "append_sparse",
        "append_column",
        "stage_rows",
        "marginal_ll",
        "_marginal_ll",
    }
)

#: Names and attribute names that denote the abstain sentinel.
_ABSTAIN_NAMES = frozenset({"ABSTAIN", "MC_ABSTAIN"})
_ABSTAIN_ATTRS = frozenset({"ABSTAIN", "MC_ABSTAIN", "abstain", "abstain_value"})

#: Parent node types under which the comparison's boolean result is
#: consumed as an *array* (mask algebra) rather than a scalar branch test.
_ARRAY_CONSUMERS = (
    ast.Attribute,  # (L != 0).any(axis=1)
    ast.Call,  # np.where(L != 0, ...)
    ast.Subscript,  # L[:, j][L[:, j] != 0]
    ast.Assign,  # covered = L != 0
    ast.AnnAssign,
    ast.Return,  # return L != 0
)


def _is_abstain_const(node: ast.expr) -> bool:
    """``node`` spells the abstain sentinel (``0``, a named constant, or
    an ``.abstain``-style attribute)."""
    if isinstance(node, ast.Constant):
        return type(node.value) is int and node.value == 0
    if isinstance(node, ast.Name):
        return node.id in _ABSTAIN_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _ABSTAIN_ATTRS
    return False


@register
class DenseVoteScan(Rule):
    name = "dense-vote-scan"
    description = (
        "label-model refit paths must compute from ColumnStats entry "
        "arrays, not dense (L != abstain)-style matrix scans; dense "
        "arithmetic lives only in designated *_dense oracles and "
        "validation/diagnostics helpers"
    )

    def _in_scope(self, ctx: FileContext) -> bool:
        rel = ctx.rel_path
        if rel in _SCOPE_EXTRA:
            return True
        if not rel.startswith(_SCOPE_PREFIX):
            return False
        return rel.rsplit("/", 1)[-1] not in _EXEMPT_MODULES

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._in_scope(ctx):
            return
        parents = ctx.parent_map()
        # Map each node to its innermost enclosing function, so designated
        # dense helpers can be exempted by name.
        enclosing: dict[ast.AST, str] = {}
        for func in ast.walk(ctx.tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.walk(func):
                    enclosing[child] = func.name  # innermost wins: walk order
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if len(node.ops) != 1 or not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
                continue
            if not (_is_abstain_const(node.left) or _is_abstain_const(node.comparators[0])):
                continue
            if not isinstance(parents.get(node), _ARRAY_CONSUMERS):
                continue
            func_name = enclosing.get(node, "")
            if func_name.endswith("_dense") or func_name in _DESIGNATED_FUNCS:
                continue
            yield self.finding(
                ctx,
                node,
                "dense abstain-sentinel scan on a label-model path — "
                "compute from the ColumnStats entry arrays (O(nnz)) or "
                "move the scan into a designated *_dense oracle / "
                "validation helper",
            )
