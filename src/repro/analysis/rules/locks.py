"""Serve-path lock discipline: ``*_locked`` methods need a held lock.

``serve/manager.py`` documents the convention the whole session service
rests on: methods suffixed ``_locked`` mutate shared session state and
may only run while the caller holds the relevant lock (the session's
``live.lock``, the manager's ``self._lock``, or the ``_command``
context manager that acquires the session lock eviction-safely).  This
rule is the static half of that contract — a lightweight race detector:

A call to any ``*_locked`` method is legal only when, *within the
enclosing function*, it sits lexically inside a ``with`` statement whose
context expression mentions a lock (``... .lock`` / ``self._lock``) or
enters ``self._command(...)``, or when the enclosing function is itself
``*_locked``-suffixed (the contract then propagates to *its* callers).
Lock handoffs the AST cannot see (e.g. a victim lock acquired
non-blocking by a helper and released in ``finally``) carry a pragma
with the reason spelled out.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import FileContext, Rule, register

#: A with-item expression that evidences a held lock: any dotted path
#: ending in ``lock``/``_lock`` (``live.lock``, ``self._lock``,
#: ``self._datasets_lock``) or a ``_command(...)`` entry.
_LOCKISH_RE = re.compile(r"(^|[._])_?lock(\b|$)|_command\(", re.IGNORECASE)


def _lockish(item: ast.withitem) -> bool:
    return bool(_LOCKISH_RE.search(ast.unparse(item.context_expr)))


@register
class ServeLockDiscipline(Rule):
    name = "serve-lock-discipline"
    description = (
        "*_locked methods may only be called under a with-lock / _command "
        "block, or from another *_locked method"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        parents = ctx.parent_map()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute):
                callee = node.func.attr
            elif isinstance(node.func, ast.Name):
                callee = node.func.id
            else:
                continue
            if not callee.endswith("_locked"):
                continue
            if self._lock_held(node, parents):
                continue
            yield self.finding(
                ctx,
                node,
                f"call to {callee}(...) outside any `with <lock>` / "
                "`with self._command(...)` block and outside a *_locked "
                "method — the _locked suffix is a contract that the caller "
                "holds the lock (serve/manager.py)",
            )

    @staticmethod
    def _lock_held(call: ast.Call, parents: dict) -> bool:
        node: ast.AST | None = parents.get(call)
        while node is not None:
            if isinstance(node, (ast.With, ast.AsyncWith)) and any(
                _lockish(item) for item in node.items
            ):
                return True
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A lexically-outer `with` beyond this boundary belongs to
                # the *defining* frame, not the calling one: stop here.
                return node.name.endswith("_locked")
            if isinstance(node, ast.Lambda):
                return False
            node = parents.get(node)
        return False
