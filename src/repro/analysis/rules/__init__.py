"""Rule modules; importing this package registers every shipped rule."""

from repro.analysis.rules import budget, fitted_state, locks, obs_state, rng

__all__ = ["budget", "fitted_state", "locks", "obs_state", "rng"]
