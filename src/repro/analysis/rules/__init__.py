"""Rule modules; importing this package registers every shipped rule."""

from repro.analysis.rules import (
    budget,
    dense_vote_scan,
    fitted_state,
    locks,
    obs_state,
    rng,
)

__all__ = ["budget", "dense_vote_scan", "fitted_state", "locks", "obs_state", "rng"]
