"""Seeded-RNG discipline: all randomness flows through ``utils/rng.py``.

Checkpoint-deterministic sessions (the property the whole warm-refit
stack rests on — ENGINE.md §5/§7) require every random stream to be
derivable from a seed the session owns.  A bare
``np.random.default_rng()`` call mid-library creates OS-entropy state no
checkpoint can reproduce, and module-level draws (``np.random.rand``,
``RandomState``) share hidden global state between components.  This
rule bans *calling into* ``numpy.random`` anywhere outside the allowlist
(:mod:`repro.utils.rng`, the one place the normalization lives), forcing
call sites through ``ensure_rng`` / ``spawn_children`` /
``stable_hash_seed``.

Non-call attribute access stays legal: ``np.random.Generator`` in a type
annotation or an ``isinstance`` check creates no stream.  Intentional
exceptions carry a pragma with a reason (e.g. the minibatch scratch
generator whose state is overwritten on the next line).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import FileContext, Rule, register

#: Files allowed to construct numpy generators directly, relative to the
#: lint root.  Deliberately tiny: the whole point is one choke point.
ALLOWED_FILES = frozenset({"src/repro/utils/rng.py"})


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` as a string when the expression is a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register
class SeededRngDiscipline(Rule):
    name = "seeded-rng"
    description = (
        "numpy.random may only be called from utils/rng.py — use "
        "ensure_rng/spawn_children so every stream is checkpoint-derivable"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel_path in ALLOWED_FILES:
            return
        # Names the file binds to the numpy.random *module*.
        module_aliases: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        module_aliases.add(f"{alias.asname or 'numpy'}.random")
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            module_aliases.add(alias.asname)
                        else:
                            module_aliases.add("numpy.random")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            module_aliases.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    yield self.finding(
                        ctx,
                        node,
                        "importing from numpy.random bypasses the seeded-RNG "
                        "choke point — use repro.utils.rng (ensure_rng, "
                        "spawn_children, stable_hash_seed) instead",
                    )
        if not module_aliases:
            return
        call_funcs: set[int] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            owner = _dotted(func.value)
            if owner in module_aliases:
                call_funcs.add(id(func))
                yield self.finding(
                    ctx,
                    node,
                    f"call to {owner}.{func.attr}(...) outside utils/rng.py — "
                    "randomness must flow through ensure_rng/spawn_children so "
                    "the stream is derivable from a session seed",
                )
        # Bare references to factory *functions* (lowercase names such as
        # default_rng passed as a default_factory) escape the choke point
        # just as surely as calling them here; class references
        # (np.random.Generator in annotations/isinstance) create no stream
        # and stay legal.
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute) or id(node) in call_funcs:
                continue
            owner = _dotted(node.value)
            if owner in module_aliases and node.attr[:1].islower():
                yield self.finding(
                    ctx,
                    node,
                    f"reference to {owner}.{node.attr} outside utils/rng.py — "
                    "passing the factory around still creates a stream no "
                    "checkpoint can re-derive; route it through "
                    "ensure_rng/spawn_children",
                )
