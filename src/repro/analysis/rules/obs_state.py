"""Observability must stay out of checkpointed state (ENGINE.md §9).

The instrumentation layer (:mod:`repro.obs`) is determinism-neutral by
contract: registries, observers, and spans are transient process state,
never part of a session's ``state_dict``, and checkpoint payloads never
carry wall-clock readings (two snapshots of the same session must be
bit-identical).  One rule enforces both halves:

* an obs object (``Counter``, ``Histogram``, ``EngineObserver``, …)
  assigned to a *checkpointed* attribute — one declared in
  ``_FITTED_ATTRS``, or a sklearn-style ``<name>_`` fitted attribute of a
  ``FittedStateMixin`` subclass — would be captured by ``state_dict`` and
  either fail to serialize or smuggle live instrument references into
  snapshots;
* a wall-clock read (``time.time()``, ``datetime.now()``,
  ``datetime.utcnow()``) inside any ``state_dict`` method stamps the
  payload with the time of the snapshot, so two checkpoints of identical
  state compare different.

Class-hierarchy resolution reuses the fitted-state rules' cross-file
index (same simple-name approximation, same collect pass).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import FileContext, register
from repro.analysis.rules.fitted_state import _FittedRuleBase, _self_attr

#: Public instrument/observer types of :mod:`repro.obs` — any of these on
#: the right-hand side of a checkpointed-attribute assignment is a leak.
OBS_TYPE_NAMES = frozenset(
    {
        "Counter",
        "Gauge",
        "Histogram",
        "MetricsRegistry",
        "EngineObserver",
        "Span",
    }
)

#: ``(module-ish base, attribute)`` call pairs that read the wall clock.
_WALL_CLOCK_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "localtime"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
    }
)


def _call_type_name(value: ast.expr) -> str | None:
    """The simple callee name when ``value`` is a ``Name(...)`` style call."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _wall_clock_call(node: ast.Call) -> str | None:
    """``"time.time"``-style dotted name when ``node`` reads the clock."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    base = func.value
    if isinstance(base, ast.Name):
        base_name = base.id
    elif isinstance(base, ast.Attribute):  # datetime.datetime.now(...)
        base_name = base.attr
    else:
        return None
    if (base_name, func.attr) in _WALL_CLOCK_CALLS:
        return f"{base_name}.{func.attr}"
    return None


@register
class ObsNoStateLeak(_FittedRuleBase):
    name = "obs-no-state-leak"
    description = (
        "repro.obs instruments must never be assigned to checkpointed "
        "attributes, and state_dict methods must not read the wall clock "
        "(instrumentation is determinism-neutral by contract)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_obs_assignments(ctx)
        yield from self._check_state_dict_clocks(ctx)

    # -- half 1: obs objects into checkpointed attributes ---------------- #
    def _check_obs_assignments(self, ctx: FileContext) -> Iterator[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            fitted = self.index.is_fitted(cls.name)
            declared = self.index.effective_attrs(cls.name) or set()
            if not fitted and not declared:
                continue
            for node in ast.walk(cls):
                targets: list[ast.expr]
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                else:
                    continue
                type_name = _call_type_name(value)
                if type_name not in OBS_TYPE_NAMES:
                    continue
                for target in targets:
                    elements = target.elts if isinstance(target, ast.Tuple) else [target]
                    for el in elements:
                        attr = _self_attr(el)
                        if attr is None:
                            continue
                        checkpointed = attr in declared or (
                            fitted
                            and attr.endswith("_")
                            and not attr.endswith("__")
                            and not attr.startswith("_")
                        )
                        if checkpointed:
                            yield self.finding(
                                ctx,
                                node,
                                f"{cls.name} assigns a {type_name} to "
                                f"self.{attr}, a checkpointed attribute — "
                                "obs instruments are transient process state "
                                "and must stay out of state_dict; hold it on "
                                "a non-fitted attribute instead",
                            )

    # -- half 2: wall-clock reads inside state_dict ----------------------- #
    def _check_state_dict_clocks(self, ctx: FileContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if func.name != "state_dict":
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                dotted = _wall_clock_call(node)
                if dotted is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"{dotted}() inside state_dict stamps the checkpoint "
                        "payload with the wall clock — two snapshots of "
                        "identical state would compare different; keep "
                        "timestamps in sidecar metadata, not the payload",
                    )
