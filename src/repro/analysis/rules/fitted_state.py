"""Checkpoint-contract rules over ``FittedStateMixin`` subclasses.

The checkpoint layer (ENGINE.md §5) persists exactly the attributes a
model declares in ``_FITTED_ATTRS``; ``state_dict`` copies array values
but captures everything else — notably the dict-valued
``mb_rng_state_`` — *by reference* (``utils/state.py``).  Two invariants
follow, each enforced here:

* **fitted-state-complete** — every ``self.<name>_`` a ``fit*`` method
  assigns must be declared, or checkpoints silently drop that state and
  a restored session diverges from the live one.
* **fitted-dict-mutation** — declared fitted attributes must never be
  mutated in place (``[...] = ``, ``.update``, ``.pop``, …): a snapshot
  holding a reference would be retroactively corrupted.  Models reassign
  a fresh object instead.

Both rules resolve the ``FittedStateMixin`` hierarchy *across* walked
files in the collect pass (subclass chains span ``labelmodel/base.py``
and the concrete models), by simple class name — a deliberate
approximation that matches this repo's flat, unique model names.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import FileContext, Rule, register

#: The mixin whose subclasses the rules apply to (``repro.utils.state``).
MIXIN_NAME = "FittedStateMixin"

#: Dict/list methods that mutate the receiver in place.
_MUTATING_METHODS = frozenset(
    {"update", "pop", "popitem", "setdefault", "clear", "append", "extend", "insert", "remove"}
)


def _base_name(node: ast.expr) -> str | None:
    """The simple name a base-class expression refers to (best effort)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class _ClassIndex:
    """Cross-file class hierarchy keyed by simple class name."""

    def __init__(self) -> None:
        #: name -> (base names, own literal _FITTED_ATTRS or None, declares_any)
        self.classes: dict[str, tuple[tuple[str, ...], tuple[str, ...] | None, bool]] = {}

    def collect(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = tuple(b for b in (_base_name(base) for base in node.bases) if b)
            own_attrs: tuple[str, ...] | None = None
            declares = False
            for stmt in node.body:
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets, value = [stmt.target], stmt.value
                if not any(
                    isinstance(t, ast.Name) and t.id == "_FITTED_ATTRS" for t in targets
                ):
                    continue
                declares = True
                if isinstance(value, (ast.Tuple, ast.List)) and all(
                    isinstance(el, ast.Constant) and isinstance(el.value, str)
                    for el in value.elts
                ):
                    own_attrs = tuple(el.value for el in value.elts)
            self.classes[node.name] = (bases, own_attrs, declares)

    def is_fitted(self, name: str, _seen: frozenset[str] = frozenset()) -> bool:
        """Whether ``name`` transitively subclasses the mixin (or declares attrs)."""
        if name == MIXIN_NAME:
            return True
        if name in _seen or name not in self.classes:
            return False
        bases, _own, declares = self.classes[name]
        if declares:
            return True
        seen = _seen | {name}
        return any(self.is_fitted(base, seen) for base in bases)

    def effective_attrs(self, name: str, _seen: frozenset[str] = frozenset()) -> set[str] | None:
        """Union of literal ``_FITTED_ATTRS`` up the resolvable chain.

        ``None`` means some class in the chain declares ``_FITTED_ATTRS``
        with a non-literal value — completeness cannot be checked then.
        """
        if name == MIXIN_NAME or name in _seen or name not in self.classes:
            return set()
        bases, own, declares = self.classes[name]
        if declares and own is None:
            return None
        attrs = set(own or ())
        seen = _seen | {name}
        for base in bases:
            inherited = self.effective_attrs(base, seen)
            if inherited is None:
                return None
            attrs.update(inherited)
        return attrs


def _self_attr(node: ast.expr) -> str | None:
    """``attr`` when ``node`` is exactly ``self.<attr>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _FittedRuleBase(Rule):
    """Shared hierarchy collection for the two fitted-state rules."""

    def __init__(self) -> None:
        self.index = _ClassIndex()

    def collect(self, ctx: FileContext) -> None:
        self.index.collect(ctx)

    def fitted_classes(self, ctx: FileContext) -> Iterator[ast.ClassDef]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and self.index.is_fitted(node.name):
                yield node


@register
class FittedStateComplete(_FittedRuleBase):
    name = "fitted-state-complete"
    description = (
        "every self.<name>_ assigned in a fit* method of a FittedStateMixin "
        "subclass must appear in _FITTED_ATTRS (else checkpoints drop it)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for cls in self.fitted_classes(ctx):
            declared = self.index.effective_attrs(cls.name)
            if declared is None:
                continue  # dynamic _FITTED_ATTRS: completeness is unknowable
            for meth in cls.body:
                if not isinstance(meth, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if not meth.name.startswith("fit"):
                    continue
                for node in ast.walk(meth):
                    targets: list[ast.expr]
                    if isinstance(node, ast.Assign):
                        targets = node.targets
                    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                        targets = [node.target]
                    else:
                        continue
                    for target in targets:
                        elements = target.elts if isinstance(target, ast.Tuple) else [target]
                        for el in elements:
                            attr = _self_attr(el)
                            if attr is None:
                                continue
                            if not attr.endswith("_") or attr.endswith("__"):
                                continue  # only sklearn-style fitted names
                            if attr.startswith("_"):
                                continue  # private scratch, not public fitted state
                            if attr not in declared:
                                yield self.finding(
                                    ctx,
                                    node,
                                    f"{cls.name}.{meth.name} assigns self.{attr} "
                                    f"but {attr!r} is not in _FITTED_ATTRS — "
                                    "checkpoints will silently drop it "
                                    "(declare it, or rename it without the "
                                    "trailing underscore if it is not fitted "
                                    "state)",
                                )


@register
class FittedDictMutation(_FittedRuleBase):
    name = "fitted-dict-mutation"
    description = (
        "declared _FITTED_ATTRS members must be reassigned, never mutated in "
        "place (state_dict captures non-array values by reference)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for cls in self.fitted_classes(ctx):
            declared = self.index.effective_attrs(cls.name) or set()
            if not declared:
                continue
            for node in ast.walk(cls):
                # self.attr[...] = ... / self.attr[...] += ... / del self.attr[...]
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
                    if isinstance(node, ast.Assign):
                        targets = node.targets
                    elif isinstance(node, ast.Delete):
                        targets = node.targets
                    else:
                        targets = [node.target]
                    for target in targets:
                        elements = target.elts if isinstance(target, ast.Tuple) else [target]
                        for el in elements:
                            if not isinstance(el, ast.Subscript):
                                continue
                            attr = _self_attr(el.value)
                            if attr in declared:
                                yield self.finding(
                                    ctx,
                                    node,
                                    f"in-place mutation of fitted attribute "
                                    f"self.{attr} in {cls.name} — state_dict "
                                    "captures non-array values by reference, so "
                                    "a checkpoint taken earlier would be "
                                    "retroactively corrupted; reassign a fresh "
                                    "object instead",
                                )
                # self.attr.update(...) / .pop(...) / ...
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    if node.func.attr not in _MUTATING_METHODS:
                        continue
                    attr = _self_attr(node.func.value)
                    if attr in declared:
                        yield self.finding(
                            ctx,
                            node,
                            f"self.{attr}.{node.func.attr}(...) mutates fitted "
                            f"attribute {attr!r} of {cls.name} in place — "
                            "state_dict captures non-array values by reference; "
                            "reassign a fresh object instead",
                        )
