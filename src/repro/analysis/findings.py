"""The machine-readable finding record shared by every lint rule.

A finding pins one contract violation to one source line.  Suppressed
findings are kept in the report (with the pragma's mandatory reason)
rather than dropped: the JSON artifact CI uploads is the full audit
trail, and "suppressed with reason X" is information, not noise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        Registry name of the rule that fired (or a meta name such as
        ``bad-pragma`` emitted by the engine itself).
    path:
        Path of the offending file, relative to the lint root, in POSIX
        form (stable across platforms for golden JSON comparisons).
    line / col:
        1-based line and 0-based column of the violating node.
    message:
        Human-readable description of the violation.
    suppressed:
        Whether a same-line ``# repro-lint: disable=<rule> -- <reason>``
        pragma covers this finding.
    suppress_reason:
        The pragma's reason when ``suppressed`` (reasons are mandatory;
        a reason-less pragma suppresses nothing and is itself reported).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    suppress_reason: str | None = field(default=None)

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "suppress_reason": self.suppress_reason,
        }

    def format(self) -> str:
        """One-line human-readable rendering (``path:line:col rule message``)."""
        tag = " [suppressed]" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}{tag}: {self.message}"


def findings_to_json(findings: list[Finding]) -> str:
    """Serialize findings (sorted, stable) as the CI artifact payload."""
    ordered = sorted(findings, key=lambda f: f.sort_key)
    payload = {
        "format": "repro-lint-findings",
        "version": 1,
        "n_findings": len(ordered),
        "n_unsuppressed": sum(1 for f in ordered if not f.suppressed),
        "findings": [f.to_dict() for f in ordered],
    }
    return json.dumps(payload, indent=2) + "\n"
