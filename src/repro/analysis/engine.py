"""The lint engine: walk files, run rules, apply pragma suppressions.

The engine owns everything rule-agnostic: the file walk (``__pycache__``,
hidden directories, and egg-info trees are always skipped so compiled
noise can never shadow a source finding), the two-phase collect/check
drive, per-line pragma application, and three meta findings it emits
itself:

* ``parse-error`` — a walked file does not parse; nothing can be checked.
* ``bad-pragma`` — a suppression comment is malformed, reason-less, or
  names an unknown rule.
* ``unused-pragma`` — a pragma that suppressed no finding on its line
  (stale suppressions must not outlive the code they excused).

Meta findings are never suppressible: a pragma cannot excuse itself.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding, findings_to_json
from repro.analysis.pragmas import parse_pragmas
from repro.analysis.registry import RULE_REGISTRY, FileContext, Rule

#: Directories ``repro lint`` walks when invoked without explicit paths.
DEFAULT_LINT_PATHS = ("src", "tools", "benchmarks", "examples")

META_PARSE_ERROR = "parse-error"
META_BAD_PRAGMA = "bad-pragma"
META_UNUSED_PRAGMA = "unused-pragma"
META_RULES = (META_PARSE_ERROR, META_BAD_PRAGMA, META_UNUSED_PRAGMA)

#: Directory names never descended into.
_SKIPPED_DIR_NAMES = ("__pycache__",)


def _skip_dir(name: str) -> bool:
    return name in _SKIPPED_DIR_NAMES or name.startswith(".") or name.endswith(".egg-info")


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (sorted, noise directories skipped)."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_file():
            candidates: Iterable[Path] = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(path.rglob("*.py"))
        for candidate in candidates:
            if any(_skip_dir(part) for part in candidate.parent.parts):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


@dataclass
class LintReport:
    """The outcome of one lint run (all findings, suppressed included)."""

    findings: list[Finding] = field(default_factory=list)
    n_files: int = 0

    @property
    def unsuppressed(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def exit_code(self) -> int:
        """Process exit code: 0 only when no finding is unsuppressed."""
        return 1 if self.unsuppressed else 0

    def to_json(self) -> str:
        return findings_to_json(self.findings)


def _rel_posix(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    paths: Sequence[str | Path] | None = None,
    root: str | Path | None = None,
    rules: Sequence[Rule] | None = None,
) -> LintReport:
    """Run the rule engine and return the full report.

    Parameters
    ----------
    paths:
        Files or directories to walk, relative to ``root``; defaults to
        :data:`DEFAULT_LINT_PATHS` (missing entries are skipped, so the
        default works from any checkout subset).
    root:
        Directory findings are reported relative to (default: cwd).
        Rules that key on repo-relative paths (the adapter budget, the
        RNG allowlist) resolve against the same root.
    rules:
        Rule instances to run; defaults to every registered rule.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    if paths is None:
        walk = [root_path / p for p in DEFAULT_LINT_PATHS if (root_path / p).exists()]
    else:
        walk = [root_path / p for p in paths]
        missing = [p for p in walk if not p.exists()]
        if missing:
            raise FileNotFoundError(f"lint paths do not exist: {[str(p) for p in missing]}")
    if rules is None:
        from repro.analysis.registry import default_rules

        rules = default_rules()

    known_names = set(RULE_REGISTRY) | set(META_RULES)
    known_names.update(rule.name for rule in rules)

    report = LintReport()
    contexts: list[FileContext] = []
    for file_path in iter_python_files(walk):
        rel = _rel_posix(file_path, root_path)
        source = file_path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file_path))
        except SyntaxError as exc:
            report.findings.append(
                Finding(
                    rule=META_PARSE_ERROR,
                    path=rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        contexts.append(
            FileContext(
                path=file_path,
                rel_path=rel,
                source=source,
                tree=tree,
                lines=source.splitlines(),
            )
        )
    report.n_files = len(contexts)

    # Phase 1: cross-file collection, complete before any check runs.
    for rule in rules:
        for ctx in contexts:
            rule.collect(ctx)

    # Phase 2: per-file checks + pragma application.
    for ctx in contexts:
        pragmas = parse_pragmas(ctx.source)
        for rule in rules:
            for finding in rule.check(ctx):
                pragma = pragmas.get(finding.line)
                if pragma is not None and pragma.covers(finding.rule):
                    finding.suppressed = True
                    finding.suppress_reason = pragma.reason
                    pragma.used.add(finding.rule)
                report.findings.append(finding)
        for pragma in pragmas.values():
            if pragma.problem is not None:
                report.findings.append(
                    Finding(
                        rule=META_BAD_PRAGMA,
                        path=ctx.rel_path,
                        line=pragma.line,
                        col=0,
                        message=pragma.problem,
                    )
                )
                continue
            unknown = [r for r in pragma.rules if r not in known_names]
            for name in unknown:
                report.findings.append(
                    Finding(
                        rule=META_BAD_PRAGMA,
                        path=ctx.rel_path,
                        line=pragma.line,
                        col=0,
                        message=f"pragma disables unknown rule {name!r}",
                    )
                )
            stale = [r for r in pragma.rules if r in known_names and r not in pragma.used]
            for name in stale:
                report.findings.append(
                    Finding(
                        rule=META_UNUSED_PRAGMA,
                        path=ctx.rel_path,
                        line=pragma.line,
                        col=0,
                        message=(
                            f"pragma disables {name!r} but no such finding fires on "
                            "this line; delete the stale suppression"
                        ),
                    )
                )

    report.findings.sort(key=lambda f: f.sort_key)
    return report
