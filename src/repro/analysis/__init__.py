"""Repo-specific static analysis: the ``repro lint`` invariant checker.

The speedups and durability guarantees of the incremental engine rest on
contracts that plain Python cannot express — checkpoint-deterministic
warm refits, fully-declared fitted state, serve-path mutation only under
the session lock.  This package turns those prose contracts (ENGINE.md,
``utils/state.py``, ``serve/manager.py``) into AST-enforced invariants:
a small rule engine (stdlib ``ast``/``tokenize`` only), a rule registry,
per-line pragma suppressions with mandatory reasons, and a
machine-readable findings format, wired to the ``repro lint`` CLI
subcommand and CI.

See ENGINE.md §8 for the enforced invariants and the pragma syntax, and
:mod:`repro.analysis.registry` for how to register a new rule.
"""

from repro.analysis.engine import DEFAULT_LINT_PATHS, LintReport, run_lint
from repro.analysis.findings import Finding
from repro.analysis.pragmas import PRAGMA_TAG, Pragma, parse_pragmas
from repro.analysis.registry import Rule, all_rule_names, default_rules, register

__all__ = [
    "DEFAULT_LINT_PATHS",
    "Finding",
    "LintReport",
    "PRAGMA_TAG",
    "Pragma",
    "Rule",
    "all_rule_names",
    "default_rules",
    "parse_pragmas",
    "register",
    "run_lint",
]
