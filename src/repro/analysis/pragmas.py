"""Per-line pragma suppressions: ``# repro-lint: disable=<rule> -- <reason>``.

A pragma suppresses findings of the named rule(s) *on its own line only*
— suppression is a surgical, reviewable act, not a file-wide switch.
The reason after ``--`` is mandatory: every suppression in the tree must
say why the contract deliberately does not apply, and a pragma without a
reason (or naming no rule, or an unknown rule) is itself reported by the
engine as a ``bad-pragma`` finding.  Pragmas that suppress nothing are
reported as ``unused-pragma`` so stale suppressions cannot outlive the
code they excused.

Comments are located with :mod:`tokenize`, not substring search, so the
pragma tag inside a string literal is never mistaken for a suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

#: The comment prefix every pragma starts with.
PRAGMA_TAG = "repro-lint:"

#: Full pragma shape (hash, tag, rule list, ``--``, mandatory reason).
_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,-]+)\s*--\s*(?P<reason>\S.*)$"
)


@dataclass
class Pragma:
    """One parsed suppression comment.

    ``problem`` is ``None`` for a well-formed pragma; otherwise it holds
    the malformation message the engine reports as ``bad-pragma``.
    ``used`` accumulates the rule names that actually suppressed a
    finding, so the engine can flag the stale remainder.
    """

    line: int
    rules: tuple[str, ...]
    reason: str | None
    problem: str | None = None
    used: set = field(default_factory=set)

    def covers(self, rule: str) -> bool:
        return self.problem is None and rule in self.rules


def parse_pragmas(source: str) -> dict[int, Pragma]:
    """Extract every ``repro-lint`` pragma comment, keyed by line number.

    Malformed pragmas are returned too (with ``problem`` set) — silently
    ignoring a typo'd suppression would leave the author believing a
    finding is excused when it is not.
    """
    pragmas: dict[int, Pragma] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The engine reports unparseable files separately; no pragmas here.
        return pragmas
    for tok in tokens:
        if tok.type != tokenize.COMMENT or PRAGMA_TAG not in tok.string:
            continue
        line = tok.start[0]
        match = _PRAGMA_RE.search(tok.string)
        if match is None:
            pragmas[line] = Pragma(
                line=line,
                rules=(),
                reason=None,
                problem=(
                    "malformed pragma: expected "
                    "'# repro-lint: disable=<rule>[,<rule>] -- <reason>' "
                    "(the reason is mandatory)"
                ),
            )
            continue
        rules = tuple(r for r in match.group("rules").split(",") if r)
        reason = match.group("reason").strip()
        if not rules:
            pragmas[line] = Pragma(
                line=line,
                rules=(),
                reason=reason,
                problem="pragma names no rules to disable",
            )
            continue
        pragmas[line] = Pragma(line=line, rules=rules, reason=reason)
    return pragmas
