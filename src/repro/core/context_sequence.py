"""Weighted context-sequence contextualizer (the paper's stated future work).

Section 3 of the paper notes that the development context of an LF created
at iteration ``t`` is really the whole sequence of development data the
user has seen, ``(S_1, ..., S_t)``, but restricts the context window to the
current example and "leave[s] the incorporation of longer weighted
context-sequence as a future direction".  This module implements that
direction.

Rationale: by iteration ``t`` the user has internalized patterns from every
example seen so far; the heuristic they extract from ``S_t`` is shaped by —
and plausibly generalizes toward — earlier examples too, with influence
fading for older ones.  We therefore measure each example's distance to an
LF not from the single development point but from the *recency-weighted
context sequence*:

    d_ctx(x, λ_j) = Σ_{k ≤ t_j} w_k · dist(x, s_k)  /  Σ_{k ≤ t_j} w_k,
    w_k = γ^{t_j − k}

where ``s_k`` is the development point of iteration ``k``, ``t_j`` the
iteration at which λ_j was created, and ``γ ∈ [0, 1]`` the recency-decay
factor.  ``γ = 0`` uses only the current development point (``0^0 = 1``),
recovering the paper's Eq. 4 exactly; ``γ = 1`` weighs the entire history
uniformly.  Radii are, as in Eq. 4, the ``p``-th percentile of the
context distances over the train split, so the two variants are directly
comparable at equal ``p``.
"""

from __future__ import annotations

import numpy as np

from repro.core.contextualizer import LFContextualizer
from repro.core.lineage import LineageStore
from repro.labelmodel.matrix import validate_label_matrix
from repro.utils.validation import check_in_range


class ContextSequenceContextualizer(LFContextualizer):
    """Eq. 4 with recency-weighted multi-point development context.

    Parameters
    ----------
    gamma:
        Recency-decay factor ``γ ∈ [0, 1]``.  Older development points get
        weight ``γ^age``; ``γ = 0`` reduces to the single-point
        :class:`~repro.core.contextualizer.LFContextualizer`.
    metric:
        ``"cosine"`` (default) or ``"euclidean"``.
    percentile:
        The radius percentile ``p`` (overridable per call).
    max_window:
        Optional hard cap on how many most-recent development points enter
        the context (``None`` = unbounded).  With γ < 1 the tail weights
        vanish anyway; the cap bounds compute for γ = 1.
    """

    def __init__(
        self,
        gamma: float = 0.5,
        metric: str = "cosine",
        percentile: float = 75.0,
        max_window: int | None = None,
    ) -> None:
        super().__init__(metric=metric, percentile=percentile)
        check_in_range("gamma", gamma, 0.0, 1.0)
        if max_window is not None and max_window < 1:
            raise ValueError(f"max_window must be >= 1, got {max_window}")
        self.gamma = gamma
        self.max_window = max_window

    # ------------------------------------------------------------------ #
    # context distances
    # ------------------------------------------------------------------ #
    def context_distances(self, lineage: LineageStore, split: str) -> np.ndarray:
        """``(n_split, m)`` recency-weighted context distances.

        Column ``j`` holds ``d_ctx(x_i, λ_j)`` for every example ``i`` of
        the split.  The context of λ_j consists of the development points
        of all records with ``iteration <= iteration_j`` (the user had seen
        them when writing λ_j), ordered by iteration.
        """
        base = lineage.distances(split, self.metric)  # (n, m) single-point columns
        m = base.shape[1]
        if m == 0:
            return base
        iterations = np.array([r.iteration for r in lineage.records], dtype=int)
        out = np.empty_like(base)
        for j in range(m):
            # Records visible to the author of λ_j, most recent last.
            visible = np.flatnonzero(iterations <= iterations[j])
            visible = visible[np.argsort(iterations[visible], kind="stable")]
            if self.max_window is not None:
                visible = visible[-self.max_window :]
            ages = iterations[j] - iterations[visible]
            with np.errstate(invalid="ignore"):
                weights = np.where(ages == 0, 1.0, self.gamma**ages)
            total = weights.sum()
            out[:, j] = (base[:, visible] @ weights) / total
        return out

    # ------------------------------------------------------------------ #
    # LFContextualizer interface (radii/refine on context distances)
    # ------------------------------------------------------------------ #
    def radii(self, lineage: LineageStore, percentile: float | None = None) -> np.ndarray:
        """Per-LF radii: the ``p``-th percentile of *context* distances."""
        p = self.percentile if percentile is None else percentile
        check_in_range("percentile", p, 0.0, 100.0)
        train_dists = self.context_distances(lineage, "train")
        if train_dists.shape[1] == 0:
            return np.zeros(0)
        return np.percentile(train_dists, p, axis=0)

    def refine(
        self,
        L: np.ndarray,
        lineage: LineageStore,
        split: str = "train",
        percentile: float | None = None,
    ) -> np.ndarray:
        """Apply Eq. 4 against the recency-weighted context distances."""
        L = validate_label_matrix(L)
        if L.shape[1] != len(lineage):
            raise ValueError(
                f"label matrix has {L.shape[1]} columns but lineage has "
                f"{len(lineage)} records"
            )
        if L.shape[1] == 0:
            return L.copy()
        radii = self.radii(lineage, percentile)
        dists = self.context_distances(lineage, split)
        if dists.shape[0] != L.shape[0]:
            raise ValueError(
                f"distance rows ({dists.shape[0]}) do not match label matrix "
                f"rows ({L.shape[0]})"
            )
        keep = dists <= radii[None, :]
        return np.where(keep, L, 0).astype(np.int8)
