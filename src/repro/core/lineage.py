"""LF ↔ development-data lineage tracking.

The paper's third hypothesis is that the *lineage* of each LF to the
development example it was created from carries exploitable signal
(Sec. 1, "Dropped Data-to-LF Lineage").  The :class:`LineageStore` records
the ``(Λ_t, S_t)`` tuples of the IDP loop (Sec. 3) and serves the cached
distance vectors the contextualizer needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.lf import PrimitiveLF
from repro.data.dataset import FeaturizedDataset
from repro.text.distance import get_distance_fn


@dataclass(frozen=True)
class LineageRecord:
    """One LF together with its development context.

    Attributes
    ----------
    lf:
        The labeling function the user created.
    dev_index:
        Row of the *train* split the user was looking at (``x_λ``).
    iteration:
        IDP iteration at which the LF was created.
    """

    lf: PrimitiveLF
    dev_index: int
    iteration: int


class LineageStore:
    """Ordered collection of lineage records with distance caching.

    Distances from each development point to every example of a split are
    computed once per (record, split, metric) and cached — the interactive
    loop re-refines the full label matrix every iteration, so caching here
    is what keeps the contextualized pipeline cheap.
    """

    def __init__(self, dataset: FeaturizedDataset) -> None:
        self.dataset = dataset
        self.records: list[LineageRecord] = []
        self._distance_cache: dict[tuple[str, str, int], np.ndarray] = {}

    def __len__(self) -> int:
        return len(self.records)

    def add(self, lf: PrimitiveLF, dev_index: int, iteration: int) -> LineageRecord:
        """Append a record; returns it."""
        n_train = self.dataset.train.n
        if not 0 <= dev_index < n_train:
            raise ValueError(f"dev_index {dev_index} out of range [0, {n_train})")
        record = LineageRecord(lf=lf, dev_index=int(dev_index), iteration=int(iteration))
        self.records.append(record)
        return record

    @property
    def lfs(self) -> list[PrimitiveLF]:
        return [r.lf for r in self.records]

    @property
    def dev_indices(self) -> np.ndarray:
        return np.array([r.dev_index for r in self.records], dtype=int)

    @property
    def exemplar_labels(self) -> np.ndarray:
        """The label each LF assigns — the exemplar label for ImplyLoss."""
        return np.array([r.lf.label for r in self.records], dtype=int)

    def distances(self, split: str, metric: str = "cosine") -> np.ndarray:
        """``(n_split, m)`` distances from every split example to each dev point.

        Column ``j`` is ``dist(x_i, x_{λ_j})`` for all ``i`` in the split.
        """
        if not self.records:
            return np.zeros((self.dataset.splits[split].n, 0))
        fn = get_distance_fn(metric)
        X_split = self.dataset.splits[split].X
        X_train = self.dataset.train.X
        columns = []
        for record in self.records:
            key = (split, metric, record.dev_index)
            if key not in self._distance_cache:
                point = X_train[record.dev_index]
                self._distance_cache[key] = fn(X_split, point)
            columns.append(self._distance_cache[key])
        return np.stack(columns, axis=1)
