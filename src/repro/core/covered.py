"""Grow-only buffer of covered feature rows for warm end-model refits.

Under append-only votes, coverage is monotone: once any LF votes on a
row, the row stays covered forever.  The incremental session exploits
this by keeping the covered rows' feature vectors in a grow-only buffer
that appends only *newly* covered rows after each develop commit —
turning the per-refit ``X[np.flatnonzero(covered)]`` fancy-index copy
(O(n_covered · d)) into an amortized O(new · d) append (ENGINE.md §7).

Buffer rows are kept in coverage-first-seen order, a pure function of
the committed LF column sequence, so a session rebuilt from a checkpoint
reproduces the identical buffer by replaying :meth:`sync` on the same
coverage history.  :meth:`sync` verifies monotonicity and reports a
regression (a previously covered row going uncovered — impossible under
the append-only contract, but asserted rather than assumed) by returning
``False``; the engine then falls back to the exact slice.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def _grown(arr: np.ndarray, used: int, extra: int) -> np.ndarray:
    """``arr`` with capacity for ``used + extra`` items, doubling to amortize."""
    needed = used + extra
    if len(arr) >= needed:
        return arr
    capacity = max(needed, 2 * len(arr), 16)
    out = np.empty((capacity,) + arr.shape[1:], dtype=arr.dtype)
    out[:used] = arr[:used]
    return out


class CoveredFeatureBuffer:
    """Incrementally maintained ``X[covered]`` in first-covered order.

    Parameters
    ----------
    X:
        The full training feature matrix (CSR sparse or dense ndarray).
        Held by reference; newly covered rows are copied out of it on
        :meth:`sync`.
    """

    def __init__(self, X) -> None:
        self._sparse = sp.issparse(X)
        self._X = X.tocsr() if self._sparse else np.asarray(X)
        n, d = self._X.shape
        self._n, self._d = n, d
        self._seen = np.zeros(n, dtype=bool)
        self._rows = np.empty(0, dtype=np.intp)
        self._n_rows = 0
        if self._sparse:
            self._data = np.empty(0, dtype=self._X.data.dtype)
            self._indices = np.empty(0, dtype=self._X.indices.dtype)
            self._indptr = np.zeros(1, dtype=np.int64)
            self._nnz = 0
        else:
            self._dense = np.empty((0, d), dtype=self._X.dtype)

    @property
    def size(self) -> int:
        """Number of buffered (covered) rows."""
        return self._n_rows

    @property
    def rows(self) -> np.ndarray:
        """Buffered row indices into ``X``, in first-covered order."""
        return self._rows[: self._n_rows]

    def sync(self, covered: np.ndarray) -> bool:
        """Append rows newly covered since the last sync.

        Returns ``True`` if the buffer is consistent with ``covered``
        afterwards, ``False`` if coverage regressed (some previously
        buffered row is no longer covered) — the buffer is then stale and
        the caller must fall back to the exact slice.
        """
        covered = np.asarray(covered, dtype=bool)
        if covered.shape != (self._n,):
            return False
        if np.any(self._seen & ~covered):  # monotonicity violated
            return False
        new = np.flatnonzero(covered & ~self._seen)
        if new.size:
            self._append(new)
            self._seen[new] = True
        return True

    def preload(self, rows: np.ndarray) -> None:
        """Seed an empty buffer with an explicit row order.

        Checkpoint restore: the first-covered order is part of session
        state (it fixes minibatch gradient summation order), so a restored
        buffer must reproduce it exactly rather than rebuild from the
        coverage mask.
        """
        if self._n_rows:
            raise ValueError("preload requires an empty buffer")
        rows = np.asarray(rows, dtype=np.intp)
        if rows.size:
            self._append(rows)
            self._seen[rows] = True

    def _append(self, new_rows: np.ndarray) -> None:
        k = self._n_rows
        self._rows = _grown(self._rows, k, new_rows.size)
        self._rows[k : k + new_rows.size] = new_rows
        if self._sparse:
            block = self._X[new_rows]
            self._data = _grown(self._data, self._nnz, block.nnz)
            self._indices = _grown(self._indices, self._nnz, block.nnz)
            self._data[self._nnz : self._nnz + block.nnz] = block.data
            self._indices[self._nnz : self._nnz + block.nnz] = block.indices
            self._indptr = _grown(self._indptr, k + 1, new_rows.size)
            self._indptr[k + 1 : k + 1 + new_rows.size] = (
                block.indptr[1:].astype(np.int64) + self._nnz
            )
            self._nnz += block.nnz
        else:
            self._dense = _grown(self._dense, k, new_rows.size)
            self._dense[k : k + new_rows.size] = self._X[new_rows]
        self._n_rows = k + new_rows.size

    def matrix(self):
        """The buffered feature rows as a ``(size, d)`` matrix.

        Sparse buffers return a zero-copy CSR view over the internal
        arrays; treat it as read-only and do not hold it across the next
        :meth:`sync`.
        """
        k = self._n_rows
        if self._sparse:
            return sp.csr_matrix(
                (self._data[: self._nnz], self._indices[: self._nnz], self._indptr[: k + 1]),
                shape=(k, self._d),
                copy=False,
            )
        return self._dense[:k]
