"""The shared incremental IDP session engine.

Both the binary (:class:`repro.core.session.DataProgrammingSession`) and the
multiclass (:class:`repro.multiclass.session.MultiClassSession`) pipelines
drive the same atomic loop (paper Fig. 4): select one development example,
obtain one LF from the user, optionally contextualize, then refit the label
model and the end model.  Historically the two implementations were
line-for-line mirrors; this module hosts the single engine both now extend,
parameterized by cardinality through a handful of hooks.

The engine is *incremental* along three axes, each individually defeatable
(see ENGINE.md for the contract):

1. **Append-only vote storage** — the train/valid vote matrices are
   :class:`~repro.labelmodel.matrix.VoteMatrix` buffers that grow by column
   without re-copying, and new LF columns are materialized from a CSC
   column slice of the incidence matrix (O(nnz_col), no densification).
2. **Warm-started refits** — the label model is re-fitted via
   ``fit_warm`` seeded from the previous refit's posterior, with a full
   cold refit forced every ``full_refit_every`` iterations as a
   correctness backstop (and whenever warm-starting is unsound, e.g. the
   very first refit).  The end models warm-start natively.
3. **Per-refit aggregate caching** — a cache dict scoped to the interval
   between refits is threaded to selectors through the session state, so
   SEU's sparse aggregates (``B.T @ proxy``, utility tables, the expected
   utility vector itself) are computed at most once per refit.

4. **Incremental sufficient statistics & on-demand proxy** — warm
   label-model refits receive the vote matrix's
   :class:`~repro.labelmodel.matrix.ColumnStats` handle so every EM
   iteration runs on the per-column fire structure (O(nnz)) instead of
   re-scanning ``(L != 0)`` over the dense matrix; cold backstops keep
   the exact dense arithmetic and use the handle only to skip the
   redundant re-validation of votes the matrix already validated on
   append.  On warm refits the end model no longer predicts the train
   split eagerly: the refresh is deferred to the first time a selector
   actually reads the proxy (bit-identical values when it does, no
   prediction at all for selectors that never read it), with every cold
   refit refreshing eagerly (``lazy_proxy=False`` defeats this axis).

Setting ``warm_start=False`` and ``full_refit_every=1`` reproduces the
from-scratch semantics of the original sessions exactly — that
configuration is both the regression baseline for the equivalence tests and
the recorded baseline of ``benchmarks/bench_perf_session.py``.

The atomic step itself is expressed as a two-phase **command protocol**
(ENGINE.md §6): :meth:`IncrementalSessionEngine.propose` runs the
selector without consuming the iteration, and
:meth:`~IncrementalSessionEngine.submit` /
:meth:`~IncrementalSessionEngine.decline` close the interaction with a
transactional develop commit.  :meth:`~IncrementalSessionEngine.step` and
:meth:`~IncrementalSessionEngine.run` are a thin
:class:`~repro.core.protocol.SimulatedDriver` over those commands with
the in-process user — bit-identical to the historical hard-wired loop —
while the serve layer (:mod:`repro.serve`) drives the same commands from
remote clients.
"""

from __future__ import annotations

import inspect
import time

import numpy as np

from repro.core.convention import VoteConvention
from repro.core.covered import CoveredFeatureBuffer
from repro.core.lineage import LineageStore
from repro.core.protocol import PendingInteraction, ProtocolError, SimulatedDriver
from repro.labelmodel.matrix import VoteMatrix, column_nonzero_rows
from repro.utils.rng import ensure_rng, stable_hash_seed

#: Accepted values for the engine's ``warm_end_mode`` knob.
WARM_END_MODES = ("minibatch", "lbfgs")

#: Saturation point of the covered-row gate on warm minibatch end refits
#: (``_fit_end_model``): the gate tracks ``warm_min_train`` below this
#: value but never demands more covered rows than this.  Deliberately
#: decoupled upward: ``warm_min_train`` decides whether a *session* is
#: big enough for warm paths at all, and raising that floor must not
#: silently push out the point where the end model switches optimizers —
#: past ~a thousand covered rows the capped L-BFGS is already the
#: expensive path the minibatch continuation exists to replace.
MINIBATCH_MIN_COVERED = 1000

#: The IDP phases attributed by the engine's built-in timing bookkeeping.
PHASES = ("select", "develop", "label_model", "end_model")

#: Base cadence of the drift-adaptive backstop (``full_refit_every="auto"``):
#: every ``AUTO_REFIT_BASE``-th refit is a backstop *candidate*, skipped
#: when the warm trajectory measurably stayed near the last cold anchor.
AUTO_REFIT_BASE = 10

#: Max-abs parameter drift (current warm label model vs the last cold
#: anchor, aligned on the shared column prefix) below which an "auto"
#: backstop candidate is skipped.  All label-model parameters here are
#: probabilities/accuracies in [0, 1], so one absolute threshold is
#: meaningful across models.
AUTO_DRIFT_TOL = 0.02

#: Consecutive skips allowed before an "auto" backstop fires regardless of
#: measured drift — bounds worst-case staleness at
#: ``AUTO_REFIT_BASE * (AUTO_MAX_SKIPS + 1)`` refits.
AUTO_MAX_SKIPS = 3


class IncrementalSessionEngine:
    """Cardinality-agnostic select → develop → contextualize → learn loop.

    Subclasses bind the label-space specifics through a
    :class:`~repro.core.convention.VoteConvention` (``self.convention``,
    set before :meth:`_init_engine`): the abstain sentinel, posterior
    entropy, and coverage masking all default to the convention's
    implementations.  Two hooks remain genuinely per-session:

    * :meth:`_update_proxy` — refresh the ground-truth proxy from the
      freshly fitted end model (shape and calibration differ);
    * :meth:`build_state` — the selector/user-facing state snapshot.

    Subclasses are expected to set ``dataset``, ``rng``, ``family``,
    ``soft_labels``, ``entropies`` and their proxy fields before calling
    :meth:`_init_engine`.

    The engine keeps cumulative per-phase wall-clock totals in
    ``self.phase_timings`` (seconds per :data:`PHASES` entry, plus
    ``"contextualize"`` for the Eq.-4 refinement inside the label-model
    phase) — the attribution record ``benchmarks/bench_perf_session.py``
    reports.  ``"develop"`` times only the commit compute of
    :meth:`submit`; the wall time a proposal sat open awaiting the user
    (human think-time) accrues separately on the transient
    ``open_interval_seconds`` so serve latency attribution is never
    polluted by it.  Per-command attribution additionally flows to an
    optional transient ``observer`` (see ``repro.obs`` and ENGINE.md §9);
    none of that state enters :meth:`state_dict`.
    """

    #: The session's vote convention; subclasses MUST assign one (class or
    #: instance attribute) before calling _init_engine — fail-closed so a
    #: new label-space session cannot silently run with wrong semantics.
    convention: VoteConvention | None = None

    #: Abstain sentinel of the vote convention (kept as a mirror of
    #: ``convention.abstain`` for backward compatibility).
    abstain_value: int = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _init_engine(
        self,
        selector,
        user,
        label_model_factory,
        end_model,
        contextualizer,
        percentile_tuner,
        tune_every: int,
        warm_start: bool = True,
        full_refit_every: int | str = 10,
        warm_after: int = 8,
        warm_label_iter: int = 3,
        warm_end_iter: int = 15,
        warm_min_train: int = 2000,
        lazy_proxy: bool = True,
        warm_end_mode: str = "minibatch",
    ) -> None:
        if tune_every < 1:
            raise ValueError(f"tune_every must be >= 1, got {tune_every}")
        if warm_end_mode not in WARM_END_MODES:
            raise ValueError(
                f"warm_end_mode must be one of {WARM_END_MODES}, got {warm_end_mode!r}"
            )
        if isinstance(full_refit_every, str):
            if full_refit_every != "auto":
                raise ValueError(
                    f"full_refit_every must be an int >= 1 or 'auto', "
                    f"got {full_refit_every!r}"
                )
        elif full_refit_every < 1:
            raise ValueError(f"full_refit_every must be >= 1, got {full_refit_every}")
        if warm_after < 0:
            raise ValueError(f"warm_after must be >= 0, got {warm_after}")
        if warm_label_iter < 1:
            raise ValueError(f"warm_label_iter must be >= 1, got {warm_label_iter}")
        if warm_end_iter < 1:
            raise ValueError(f"warm_end_iter must be >= 1, got {warm_end_iter}")
        if warm_min_train < 0:
            raise ValueError(f"warm_min_train must be >= 0, got {warm_min_train}")
        if not isinstance(self.convention, VoteConvention):
            raise TypeError(
                "session must assign a VoteConvention to self.convention "
                "before calling _init_engine"
            )
        self.selector = selector
        self.user = user
        self.label_model_factory = label_model_factory
        self.end_model = end_model
        self.contextualizer = contextualizer
        self.percentile_tuner = percentile_tuner
        self.tune_every = tune_every
        self.warm_start = warm_start
        self.full_refit_every = full_refit_every
        self.warm_after = warm_after
        self.warm_label_iter = warm_label_iter
        self.warm_end_iter = warm_end_iter
        self.warm_min_train = warm_min_train
        self.lazy_proxy = lazy_proxy
        self.warm_end_mode = warm_end_mode
        self._end_model_accepts_max_iter = (
            "max_iter" in inspect.signature(end_model.fit).parameters
        )
        self._end_model_accepts_minibatch = hasattr(end_model, "fit_minibatch")
        self._end_model_snapshotable = hasattr(end_model, "state_dict") and hasattr(
            end_model, "load_state_dict"
        )
        self._lm_accepts_stats: bool | None = None  # resolved on first refit
        # Warm end-model plumbing (ENGINE.md §7): the grow-only covered
        # feature buffer, the minibatch shuffle seed stream, and the
        # last-backstop coefficient anchor that keeps backstop fits
        # path-independent of the warm mode.
        self._covered_buf: CoveredFeatureBuffer | None = None
        self._end_mb_rng: np.random.Generator | None = None
        self._end_anchor_: dict | None = None

        self.lineage = LineageStore(self.dataset)
        self.iteration = 0
        self.selected: set[int] = set()
        self.abstain_value = self.convention.abstain
        self.phase_timings: dict[str, float] = {p: 0.0 for p in PHASES}
        self.phase_timings["contextualize"] = 0.0
        self._L_train = VoteMatrix(self.dataset.train.n, abstain=self.abstain_value)
        self._L_valid = VoteMatrix(self.dataset.valid.n, abstain=self.abstain_value)
        self.selection_soft_labels: np.ndarray | None = None
        self.selection_entropies: np.ndarray | None = None
        self.label_model_ = None
        self._selection_model_ = None
        self._end_model_fitted = False
        self._refit_count = 0
        self._cold_warranted_ = True
        self._end_uncapped_ = True
        # Drift-adaptive backstop state (``full_refit_every="auto"``): the
        # last cold fit's parameter snapshot and the consecutive-skip
        # counter.  Both are checkpointed, and the skip decision is a pure
        # function of them plus the (checkpointed) label model — the
        # cadence is deterministic across checkpoint/restore.
        self._label_anchor_: dict | None = None
        self._backstops_skipped_ = 0
        self._selector_cache: dict = {}
        # Whether a warm refit deferred its proxy refresh to the first
        # selector read (see _resolve_proxy).
        self._proxy_stale = False
        # The open interaction of the two-phase command protocol (see
        # repro.core.protocol) and its transient proposal counter.
        self._pending: PendingInteraction | None = None
        self._proposal_token = 0
        # Transient observability (never checkpointed — the obs-no-state-leak
        # lint rule keeps it that way): an optional observer sink with an
        # ``on_command(info)`` method (repro.obs.EngineObserver), cumulative
        # open-interval wall (proposal sat open awaiting the user — human
        # latency, deliberately NOT part of phase_timings since the
        # develop-split fix), and per-refit attribution scratch.
        self.observer = None
        self.open_interval_seconds = 0.0
        self.last_open_interval: float | None = None
        self.last_refit_obs: dict | None = None
        self.last_command_obs: dict | None = None
        self.refit_counts: dict[str, int] = {"warm": 0, "cold": 0}
        self.end_fit_counts: dict[str, int] = {}
        # Transient per-path label-model cost attribution (EM iterations
        # actually run, label-fit wall seconds) — the obs layer's
        # repro_labelmodel_* counters read these; never checkpointed.
        self.em_iteration_counts: dict[str, int] = {"warm": 0, "cold": 0}
        self.label_fit_seconds: dict[str, float] = {"warm": 0.0, "cold": 0.0}
        self._last_end_fit_mode = "skipped"
        self.active_percentile_: float | None = (
            contextualizer.percentile if contextualizer is not None else None
        )

    # ------------------------------------------------------------------ #
    # vote storage
    # ------------------------------------------------------------------ #
    @property
    def lfs(self) -> list:
        return self.lineage.lfs

    @property
    def L_train(self) -> np.ndarray:
        """``(n_train, m)`` unrefined vote matrix (a view into the buffer)."""
        return self._L_train.values

    @L_train.setter
    def L_train(self, L: np.ndarray) -> None:
        self._L_train = VoteMatrix.from_dense(L, abstain=self.abstain_value)
        # A wholesale matrix replacement voids the append-only coverage
        # history the buffer was built from; it is rebuilt lazily.
        self._covered_buf = None

    @property
    def L_valid(self) -> np.ndarray:
        """``(n_valid, m)`` unrefined validation vote matrix (a view)."""
        return self._L_valid.values

    @L_valid.setter
    def L_valid(self, L: np.ndarray) -> None:
        self._L_valid = VoteMatrix.from_dense(L, abstain=self.abstain_value)

    def _stage_votes(self, lf) -> tuple[np.ndarray, np.ndarray]:
        """Validate one LF's train/valid vote columns; mutate nothing.

        Returns the canonical staged row arrays for both splits.  The
        train lookup reuses the family's cached CSC (the family is built
        over the train incidence matrix, so materializing
        ``dataset.train.B_csc`` as well would hold a second copy).
        """
        if not 0 <= int(lf.primitive_id) < self.family.n_primitives:
            raise ValueError(
                f"LF primitive_id {lf.primitive_id} is out of range "
                f"[0, {self.family.n_primitives})"
            )
        rows_train = self._L_train.stage_rows(
            column_nonzero_rows(self.family.B_csc, lf.primitive_id), lf.label
        )
        rows_valid = self._L_valid.stage_rows(
            column_nonzero_rows(self.dataset.valid.B_csc, lf.primitive_id), lf.label
        )
        return rows_train, rows_valid

    def _commit_develop(self, lf, dev_index: int, iteration_index: int) -> None:
        """All-or-nothing develop commit: both vote columns + the lineage.

        Everything fallible — primitive bounds, vote staging against both
        splits, the dev-index range — is validated before the first
        mutation, and the staged appends cannot fail, so an exception
        leaves no phantom lineage entry or half-appended votes.  Shared
        by :meth:`submit` and the batched session's step.  Counters and
        the refit stay with the caller.
        """
        if not 0 <= int(dev_index) < self.dataset.train.n:
            raise ValueError(
                f"dev_index {dev_index} out of range [0, {self.dataset.train.n})"
            )
        rows_train, rows_valid = self._stage_votes(lf)
        # -- commit point: nothing below can fail ------------------------ #
        self._L_train.append_staged(rows_train, lf.label)
        self._L_valid.append_staged(rows_valid, lf.label)
        self.lineage.add(lf, dev_index, iteration_index)

    # ------------------------------------------------------------------ #
    # the two-phase command protocol (ENGINE.md §6)
    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> PendingInteraction | None:
        """The open interaction, or ``None`` between interactions."""
        return self._pending

    def propose(self) -> PendingInteraction:
        """Phase 1: run the selector; return the candidate interaction.

        Nothing is consumed yet — no counter, vote, or lineage mutation
        happens until the interaction is closed with :meth:`submit` or
        :meth:`decline`.  Idempotent while an interaction is open: the
        same :class:`~repro.core.protocol.PendingInteraction` is returned
        rather than re-running the selector (whose RNG draw must happen
        exactly once per interaction).
        """
        if self._pending is not None:
            return self._pending
        t0 = time.perf_counter()
        state = self.build_state()
        dev_index = self.selector.select(state)
        t1 = time.perf_counter()
        self.phase_timings["select"] += t1 - t0
        self._proposal_token += 1
        self._pending = PendingInteraction(
            token=self._proposal_token,
            iteration=self.iteration,
            dev_index=None if dev_index is None else int(dev_index),
            state=state,
            ready_at=t1,
        )
        self._notify_obs("propose", {"select": t1 - t0})
        return self._pending

    def _require_pending(self) -> PendingInteraction:
        if self._pending is None:
            raise ProtocolError("no open interaction: call propose() first")
        return self._pending

    def submit(self, lf) -> PendingInteraction:
        """Phase 2a: commit the user's LF for the open interaction.

        The develop commit — both vote-column appends, the lineage
        record, the selected-set entry, and the iteration counter — is
        applied all-or-nothing: everything fallible (primitive bounds,
        vote staging against both splits) is validated *before* the first
        mutation, so a rejected LF leaves the session exactly as proposed
        (the interaction stays open for a corrected retry).  After the
        commit the learning pipeline refits; a refit failure propagates
        with the commit already durable and self-consistent (votes and
        lineage agree — the next successful refit incorporates them).
        """
        pending = self._require_pending()
        if pending.dev_index is None:
            raise ProtocolError(
                "the selector found no eligible example; decline() is the only "
                "legal close for this interaction"
            )
        if lf is None:
            raise ProtocolError("submit() requires an LF; use decline() instead")
        # Open-interval wall: how long the proposal sat awaiting the user.
        # Human think-time, not compute — it goes to the transient span
        # accumulator, NOT phase_timings["develop"], which since the
        # develop-split fix times only the commit itself.
        open_wall = time.perf_counter() - pending.ready_at
        before = dict(self.phase_timings)
        t0 = time.perf_counter()
        self._commit_develop(lf, pending.dev_index, pending.iteration)
        self.selected.add(pending.dev_index)
        self.iteration = pending.iteration + 1
        self._pending = None
        self.phase_timings["develop"] += time.perf_counter() - t0
        self._record_open_interval(open_wall)
        self._refit()
        self._notify_obs(
            "submit",
            self._phase_deltas(before),
            refit=self.last_refit_obs,
            open_interval_seconds=open_wall,
        )
        return pending

    def decline(self) -> PendingInteraction:
        """Phase 2b: close the open interaction without an LF.

        Models a user unable to extract a (sufficiently accurate, novel)
        heuristic from the shown example: the iteration is consumed and
        the example is marked as shown, but the learning state is
        untouched.  Also the only legal close when the selector found no
        eligible example.
        """
        pending = self._require_pending()
        open_wall = None
        if pending.dev_index is not None:
            self.selected.add(pending.dev_index)
            # No commit compute happens on decline — the old accrual of
            # the whole open interval into phase_timings["develop"] was
            # the think-time conflation the develop-split fix removed.
            open_wall = time.perf_counter() - pending.ready_at
            self._record_open_interval(open_wall)
        self.iteration = pending.iteration + 1
        self._pending = None
        self._notify_obs("decline", {}, open_interval_seconds=open_wall)
        return pending

    # ------------------------------------------------------------------ #
    # transient observability (ENGINE.md §9)
    # ------------------------------------------------------------------ #
    def _record_open_interval(self, seconds: float) -> None:
        self.last_open_interval = seconds
        self.open_interval_seconds += seconds

    def _phase_deltas(self, before: dict) -> dict:
        """Per-command phase seconds: current totals minus a snapshot."""
        return {
            k: v - before.get(k, 0.0)
            for k, v in self.phase_timings.items()
            if v != before.get(k, 0.0)
        }

    def _notify_obs(
        self,
        command: str,
        phases: dict,
        refit: dict | None = None,
        open_interval_seconds: float | None = None,
    ) -> None:
        """Build this command's attribution dict and hand it to the observer.

        Everything here is transient and JSON-safe; it never enters
        :meth:`state_dict`, touches no RNG, and a ``None`` observer makes
        the whole path a dict build — cheap enough to leave always-on.
        """
        self.last_command_obs = {
            "command": command,
            "iteration": int(self.iteration),
            "phases": phases,
            "refit": refit,
            "open_interval_seconds": open_interval_seconds,
        }
        if self.observer is not None:
            self.observer.on_command(self.last_command_obs)

    def cancel(self) -> PendingInteraction | None:
        """Discard the open interaction without consuming the iteration.

        The selector's side effects (its RNG draw, cache fills) are *not*
        rewound — a cancelled-then-reproposed session diverges from one
        that never proposed.  Bit-identical restart semantics come from
        restoring a pre-propose snapshot instead (see :meth:`state_dict`).
        """
        pending, self._pending = self._pending, None
        return pending

    # ------------------------------------------------------------------ #
    # IDP loop (the simulated-user driver over the protocol)
    # ------------------------------------------------------------------ #
    def step(self) -> None:
        """One IDP iteration: select → develop → contextualize → learn.

        A thin :class:`~repro.core.protocol.SimulatedDriver` pass over
        :meth:`propose`/:meth:`submit`/:meth:`decline` with the session's
        in-process user — bit-identical to the historical hard-wired loop
        (pinned by the golden parity tests).
        """
        SimulatedDriver(self, self.user).step()

    def run(self, n_iterations: int):
        """Run ``n_iterations`` steps; returns self for chaining.

        Dispatches through :meth:`step` (not the driver directly) so
        subclasses overriding the step shape — e.g. the batched Sec.-7
        session — keep their semantics.  Any proxy refresh deferred by
        the final refit is materialized before returning, so the public
        ``proxy_proba``/``proxy_labels`` attributes reflect the current
        end model at the API boundary (callers driving :meth:`step`
        directly can read ``build_state().resolve_proxy()`` for the same
        guarantee).
        """
        for _ in range(n_iterations):
            self.step()
        self._resolve_proxy()
        return self

    # ------------------------------------------------------------------ #
    # learning stage
    # ------------------------------------------------------------------ #
    def _cold_refit_due(self) -> bool:
        """Whether this refit must be a from-scratch fit.

        Cold refits happen (a) always, when warm-starting is off; (b) on
        the ``full_refit_every`` cadence — the correctness backstop; (c)
        while fewer than ``warm_after`` LFs exist *and* every LF votes the
        same class; and (d) whenever the training split is smaller than
        ``warm_min_train``.  The low-LF regime is where the label model's
        likelihood is most multimodal — but the failure mode the guard
        exists for is specific: a *one-sided* LF coalition can collapse
        the posterior onto one class (the label-swap mode discussed in
        :mod:`repro.labelmodel.metal`), and a warm continuation seeded
        from that posterior would stay stuck there.  Once the developed
        LFs span at least two classes the swap mode is penalized by the
        fire-propensity evidence and the majority-vote-seeded balance
        estimate, so warm continuation is safe — and at large ``n_train``
        those early full-``n`` cold EM runs are the dominant label-model
        cost of an incremental session, so keying the guard on the actual
        risk condition instead of a fixed LF count is a real throughput
        lever.  The size gate is a cost argument: every refit cost scales
        with ``n_train``, so below ``warm_min_train`` the exact path is
        already fast and the engine keeps its from-scratch semantics
        outright.
        """
        if self._backstop_due():
            return True
        if len(self.lineage) > self.warm_after:
            return False
        return self._lf_set_one_sided() or self._newest_lf_opened_class()

    def _lf_set_one_sided(self) -> bool:
        """Whether every developed LF votes the same class.

        The degenerate label-model optimum that motivates the low-LF cold
        guard needs a one-sided coalition; with two classes represented the
        propensity terms make the swap mode strictly worse.  Selector
        warm-up phases (e.g. :class:`~repro.core.seu.SEUSelector`) keep
        the LF set two-sided from the second iteration precisely to
        protect the label model, so in practice this clears the guard
        almost immediately.
        """
        return len({int(lf.label) for lf in self.lineage.lfs}) < 2

    def _newest_lf_opened_class(self) -> bool:
        """Whether the most recent LF is its class's only representative.

        The first LF of a class re-opens the multimodality hazard for that
        class's parameters: the previous refit's posterior has never
        placed mass there, so a warm continuation seeded from it can
        settle far from the from-scratch optimum (observed as a drift
        spike exactly at class-introduction iterations).  A pure function
        of the lineage, so the warm cadence stays checkpoint/resume
        deterministic without extra persisted state.
        """
        lfs = self.lineage.lfs
        if not lfs:
            return True
        newest = lfs[-1]
        return all(int(lf.label) != int(newest.label) for lf in lfs[:-1])

    def _refit_base(self) -> int:
        """The integer backstop cadence (``AUTO_REFIT_BASE`` under "auto")."""
        if self.full_refit_every == "auto":
            return AUTO_REFIT_BASE
        return self.full_refit_every

    def _auto_cadence(self) -> bool:
        """Whether the drift-adaptive backstop cadence is configured."""
        return self.full_refit_every == "auto"

    def _backstop_due(self) -> bool:
        """The exact-semantics opt-outs plus the periodic backstop cadence.

        Shared by both uncapped-fit conditions so the end-model cap can
        never silently desynchronize from the label-model backstop.

        Under ``full_refit_every="auto"`` a periodic hit is additionally
        *skipped* when the warm trajectory's measured parameter drift from
        the last cold anchor is below ``AUTO_DRIFT_TOL`` (and fewer than
        ``AUTO_MAX_SKIPS`` consecutive skips have accrued) — a pure
        function of checkpointed state (:meth:`_drift_skip_allowed`), so
        the cadence is deterministic across checkpoint/restore and sweep
        resume.  The fixed-integer cadence is the default defeat switch.
        """
        if not self.warm_start or self._refit_base() == 1:
            return True
        if self.dataset.train.n < self.warm_min_train:
            return True
        due = self._refit_count % self._refit_base() == 0
        if due and self._auto_cadence() and self._drift_skip_allowed():
            return False
        return due

    def _label_drift(self) -> float | None:
        """Max-abs parameter drift of the label model vs the cold anchor.

        Compares every float-typed fitted attribute shared by the current
        label model and the last cold anchor, aligned on the shared axis-0
        (per-LF) prefix — the columns appended since the anchor have no
        reference point and are excluded.  ``None`` when no comparison is
        possible (no anchor yet, no fitted model, or a different model
        class), which the caller treats as "cannot justify a skip".
        """
        anchor = self._label_anchor_
        model = self.label_model_
        if anchor is None or model is None or not hasattr(model, "state_dict"):
            return None
        current = model.state_dict()
        if current.get("class") != anchor.get("class"):
            return None
        current_attrs = current.get("attrs", {})
        drift = None
        for name, anchor_value in anchor.get("attrs", {}).items():
            value = current_attrs.get(name)
            if value is None or anchor_value is None:
                continue
            a = np.atleast_1d(np.asarray(anchor_value))
            c = np.atleast_1d(np.asarray(value))
            if a.dtype.kind != "f" or c.dtype.kind != "f":
                continue
            shared = min(a.shape[0], c.shape[0])
            if shared == 0 or a[:shared].shape != c[:shared].shape:
                continue
            gap = float(np.max(np.abs(a[:shared] - c[:shared])))
            drift = gap if drift is None else max(drift, gap)
        return drift

    def _drift_skip_allowed(self) -> bool:
        """Whether an "auto" backstop candidate may be skipped this refit."""
        if self._backstops_skipped_ >= AUTO_MAX_SKIPS:
            return False
        drift = self._label_drift()
        return drift is not None and drift < AUTO_DRIFT_TOL

    def _end_refit_uncapped_due(self) -> bool:
        """Whether this refit's *end-model* fit must be uncapped.

        Same opt-outs and backstop cadence as :meth:`_cold_refit_due`, but
        **without** the low-LF (``warm_after``) clause: that guard exists
        for the label model's multimodal likelihood, while the end models'
        losses are strictly convex — a capped warm L-BFGS continuation is
        always on the path to the unique optimum, and the periodic
        uncapped fit at the backstop cadence bounds the truncation drift.
        Uncapping the convex fit through the early-LF regime was pure
        waste (100+ L-BFGS iterations per refit at large n).
        """
        return self._backstop_due()

    def _label_model_accepts_stats(self, model) -> bool:
        if self._lm_accepts_stats is None:
            params_ok = all(
                "stats" in inspect.signature(fn).parameters
                for fn in (model.fit, model.fit_warm, model.predict_proba)
            )
            self._lm_accepts_stats = params_ok
        return self._lm_accepts_stats

    def _fit_label_model(self, L: np.ndarray, previous, stats=None):
        """Fresh label model fitted on ``L``, warm-seeded when allowed.

        ``stats`` is the vote matrix's sufficient-statistics handle; it is
        forwarded to models that accept it: warm fits run O(nnz) EM
        iterations on it, and cold fits both skip the redundant
        re-validation scan and (above the ``cold_path="auto"`` row
        threshold) run the full EM on the same O(nnz) kernels
        (ENGINE.md §10).
        """
        model = self.label_model_factory()
        kwargs = (
            {"stats": stats}
            if stats is not None and self._label_model_accepts_stats(model)
            else {}
        )
        if self._cold_warranted_ or previous is None or type(previous) is not type(model):
            model.fit(L, **kwargs)
        else:
            model.fit_warm(L, previous, max_iter=self.warm_label_iter, **kwargs)
        return model

    def _predict_label_model(self, model, L: np.ndarray, stats=None) -> np.ndarray:
        if stats is not None and self._label_model_accepts_stats(model):
            return model.predict_proba(L, stats=stats)
        return model.predict_proba(L)

    def _refit(self) -> None:
        t0 = time.perf_counter()
        # Whether this refit lands on the periodic backstop cadence before
        # the "auto" skip logic — a skipped candidate advances the
        # consecutive-skip counter below.
        backstop_hit = (
            self._auto_cadence()
            and self._warm_cadence_active()
            and self._refit_count % self._refit_base() == 0
        )
        self._cold_warranted_ = self._cold_refit_due()
        self._end_uncapped_ = self._end_refit_uncapped_due()
        self._refit_count += 1
        self._last_end_fit_mode = "skipped"
        L_effective = self._effective_label_matrix()
        refined = self.contextualizer is not None
        # The handle is only valid for the raw vote matrix; refinement
        # produces a detached dense matrix (warm fits on it build their own
        # stats by a single scan).
        stats = None if refined else self._L_train.stats
        model = self._fit_label_model(L_effective, self.label_model_, stats)
        label_fit_seconds = time.perf_counter() - t0
        self.label_model_ = model
        if self._auto_cadence():
            if self._cold_warranted_:
                # A cold fit is the drift reference: re-anchor and reset
                # the skip budget.
                self._label_anchor_ = (
                    model.state_dict() if hasattr(model, "state_dict") else None
                )
                self._backstops_skipped_ = 0
            elif backstop_hit:
                self._backstops_skipped_ += 1
        self.soft_labels = self._predict_label_model(model, L_effective, stats)
        self.entropies = self._entropy(self.soft_labels)
        self._refit_selection_view(refined)
        t1 = time.perf_counter()
        self.phase_timings["label_model"] += t1 - t0
        if refined:
            covered = self._coverage_mask(L_effective)
        else:
            covered = self._L_train.coverage_mask()
        if covered.any():
            self._fit_end_model(covered, refined)
            self._end_model_fitted = True
            self._update_proxy()
        self.phase_timings["end_model"] += time.perf_counter() - t1
        self._selector_cache.clear()
        # Transient refit attribution for the observer / sweep payloads.
        path = "cold" if self._cold_warranted_ else "warm"
        self.refit_counts[path] = self.refit_counts.get(path, 0) + 1
        mode = self._last_end_fit_mode
        self.end_fit_counts[mode] = self.end_fit_counts.get(mode, 0) + 1
        em_iterations = int(getattr(model, "em_iterations_", 0) or 0)
        self.em_iteration_counts[path] = (
            self.em_iteration_counts.get(path, 0) + em_iterations
        )
        self.label_fit_seconds[path] = (
            self.label_fit_seconds.get(path, 0.0) + label_fit_seconds
        )
        self.last_refit_obs = {
            "path": path,
            "end_fit_mode": mode,
            "em_iterations": em_iterations,
            "fit_seconds": label_fit_seconds,
        }

    # ------------------------------------------------------------------ #
    # end-model refits (ENGINE.md §7)
    # ------------------------------------------------------------------ #
    def _warm_cadence_active(self) -> bool:
        """Whether warm end fits actually happen between backstops.

        The complement of the always-backstop opt-outs in
        :meth:`_backstop_due`; the backstop anchor is only maintained
        under this cadence, so the exact-semantics configurations
        (``warm_start=False`` / ``full_refit_every=1`` / small train
        split) keep their historical fit sequence untouched.
        """
        return (
            self.warm_start
            and self._refit_base() > 1
            and self.dataset.train.n >= self.warm_min_train
        )

    def _end_minibatch_rng(self) -> np.random.Generator:
        """The minibatch shuffle seed stream (lazily spawned once).

        A child spawned off the session RNG's seed sequence: adopting it
        never advances the parent stream, so selector/user draws stay
        bit-identical between the ``minibatch`` and ``lbfgs`` modes.  It
        only seeds the end model's *first* ``fit_minibatch`` call — the
        model owns (and checkpoints) the stream state from then on — and
        spawning is deterministic per session seed, so a restored session
        re-derives the identical stream.
        """
        if self._end_mb_rng is None:
            if isinstance(self.rng, np.random.Generator) and hasattr(self.rng, "spawn"):
                self._end_mb_rng = self.rng.spawn(1)[0]
            else:
                self._end_mb_rng = ensure_rng(stable_hash_seed("warm_end_minibatch"))
        return self._end_mb_rng

    def _covered_training_set(self, covered: np.ndarray):
        """``(X_covered, targets)`` for a warm minibatch refit.

        Served from the grow-only :class:`CoveredFeatureBuffer` (amortized
        O(new·d) per refit); falls back to the exact fancy-index slice if
        the buffer reports a coverage regression — impossible under the
        append-only vote contract, but asserted rather than assumed.
        """
        X = self.dataset.train.X
        if self._covered_buf is None:
            self._covered_buf = CoveredFeatureBuffer(X)
        if self._covered_buf.sync(covered):
            return self._covered_buf.matrix(), self.soft_labels[self._covered_buf.rows]
        self._covered_buf = None  # stale — rebuilt lazily on the next sync
        idx = np.flatnonzero(covered)
        return X[idx], self.soft_labels[idx]

    def _restore_end_anchor(self) -> None:
        """Reset the end model to the last backstop's state (ENGINE.md §7).

        Restoring the anchor before every uncapped fit makes the backstop
        sequence a pure function of the backstop inputs — each full
        L-BFGS fit warm-starts from the previous backstop's solution, not
        from wherever the warm path drifted — so backstop label/end state
        is bit-identical across ``warm_end_mode`` settings.  The minibatch
        shuffle stream is carried over: it advances monotonically with
        the session, never rewinding to the anchor's position.
        """
        if self._end_anchor_ is None:
            return
        keep_rng = getattr(self.end_model, "mb_rng_state_", None)
        self.end_model.load_state_dict(self._end_anchor_)
        if keep_rng is not None:
            self.end_model.mb_rng_state_ = keep_rng

    def _fit_end_model(self, covered: np.ndarray, refined: bool) -> None:
        """Route one end-model refit: backstop, warm-capped, or minibatch.

        Uncapped (backstop) fits always use the exact ascending-order
        fancy-index slice, so their inputs are bit-for-bit those of the
        from-scratch path.  Warm refits in ``minibatch`` mode stream the
        covered buffer through ``fit_minibatch``; refined (contextualized)
        coverage is not monotone, so those sessions keep the exact slice
        as input even for minibatch fits.

        Like warm starts themselves, stochastic refits are a *scale*
        feature: on a small covered set a "minibatch" is just full-batch
        gradient descent — no cheaper than the capped L-BFGS it replaces
        and lower-fidelity — so the covered-row gate tracks
        ``warm_min_train``, saturating at ``MINIBATCH_MIN_COVERED``
        (raising the session floor must not push the optimizer switch
        point out with it).
        """
        use_minibatch = (
            self.warm_end_mode == "minibatch"
            and not self._end_uncapped_
            and self._end_model_fitted
            and self._end_model_accepts_minibatch
            and int(covered.sum()) >= max(min(self.warm_min_train, MINIBATCH_MIN_COVERED), 1)
        )
        if use_minibatch:
            if refined:
                idx = np.flatnonzero(covered)
                X_covered, targets = self.dataset.train.X[idx], self.soft_labels[idx]
            else:
                X_covered, targets = self._covered_training_set(covered)
            self.end_model.fit_minibatch(X_covered, targets, rng=self._end_minibatch_rng())
            self._last_end_fit_mode = "minibatch"
            return
        idx = np.flatnonzero(covered)
        X_covered = self.dataset.train.X[idx]
        targets = self.soft_labels[covered]
        if self._end_uncapped_ or not self._end_model_accepts_max_iter:
            anchored = (
                self._end_uncapped_
                and self._warm_cadence_active()
                and self._end_model_snapshotable
            )
            if anchored:
                self._restore_end_anchor()
            self.end_model.fit(X_covered, targets)
            if anchored:
                self._end_anchor_ = self.end_model.state_dict()
            self._last_end_fit_mode = "uncapped"
        else:
            self.end_model.fit(X_covered, targets, max_iter=self.warm_end_iter)
            self._last_end_fit_mode = "warm_capped"

    def _effective_label_matrix(self) -> np.ndarray:
        if self.contextualizer is None:
            return self.L_train
        t0 = time.perf_counter()
        if self.percentile_tuner is not None and self._should_tune():
            self.active_percentile_ = self.percentile_tuner.best_percentile(
                self.contextualizer,
                self.L_train,
                self.L_valid,
                self.lineage,
                self.label_model_factory,
                self.dataset.valid.y,
            )
        refined = self.contextualizer.refine(
            self.L_train, self.lineage, "train", percentile=self.active_percentile_
        )
        self.phase_timings["contextualize"] += time.perf_counter() - t0
        return refined

    def _refit_selection_view(self, refined: bool) -> None:
        """Posterior over the *unrefined* votes, for selectors only.

        Refinement makes over-generalizing LFs abstain far from their
        development data — good for learning, but it erases the conflict
        signal there, and conflicts are exactly where the
        uncertainty-seeking selectors should look (Eq. 3's ψ peaks on
        "examples on which the LFs disagree the most").  Selectors
        therefore see the posterior of the raw vote matrix; the learning
        pipeline keeps the refined one.
        """
        if not refined:
            self.selection_soft_labels = None
            self.selection_entropies = None
            self._selection_model_ = None
            return
        stats = self._L_train.stats  # the selection view always fits raw votes
        raw_model = self._fit_label_model(self.L_train, self._selection_model_, stats)
        self._selection_model_ = raw_model
        self.selection_soft_labels = self._predict_label_model(
            raw_model, self.L_train, stats
        )
        self.selection_entropies = self._entropy(self.selection_soft_labels)

    def _should_tune(self) -> bool:
        # The refinement radius matters most in the low-LF regime (each vote
        # carries a large posterior weight), so tune on every new LF early,
        # then back off to every ``tune_every`` LFs.
        m = len(self.lineage)
        return m >= 1 and (m <= 6 or m % self.tune_every == 0)

    # ------------------------------------------------------------------ #
    # cardinality hooks (defaults read the vote convention)
    # ------------------------------------------------------------------ #
    def _entropy(self, soft_labels: np.ndarray) -> np.ndarray:
        return self.convention.posterior_entropy(soft_labels)

    def _coverage_mask(self, L: np.ndarray) -> np.ndarray:
        return self.convention.coverage_mask(L)

    # ------------------------------------------------------------------ #
    # on-demand proxy plumbing
    # ------------------------------------------------------------------ #
    def _lazy_proxy_allowed(self) -> bool:
        """Whether this refit may defer the proxy refresh to first read.

        Only warm refits defer — cold refits always refresh eagerly, so
        the exact-at-backstop contract covers the proxy too.
        """
        return self.lazy_proxy and not self._cold_warranted_

    def _mark_proxy_stale(self) -> None:
        """Defer this refit's proxy refresh to the first selector read."""
        self._proxy_stale = True

    def _resolve_proxy(self) -> np.ndarray:
        """Materialize a deferred proxy refresh; return the proxy array.

        Called (through ``SessionState.resolve_proxy``) the first time a
        selector actually reads the ground-truth proxy after a refit: a
        session whose selector never reads it (Random/Abstain/Disagree/
        Uncertainty) never pays for end-model prediction between cold
        refits.  The refresh covers the full split with the *current* end
        model — exactly the values the eager path would have produced at
        refit time (the model has not changed in between), so reading
        selectors like SEU see bit-identical proxies with or without
        deferral.  A sliced refresh of only the changed rows was measured
        to be a false economy: the untouched rows' staleness compounds
        across warm refits and costs SEU real selection quality, while a
        full 50k-row prediction costs ~2 ms.
        """
        if self._proxy_stale:
            self._proxy_stale = False
            self._refresh_proxy()
        return self.proxy_proba

    def _refresh_proxy(self) -> None:
        """Recompute the proxy from the current end model (session hook)."""
        raise NotImplementedError

    def _update_proxy(self) -> None:
        raise NotImplementedError

    def build_state(self):
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # durable snapshot / restore (ENGINE.md §5)
    # ------------------------------------------------------------------ #
    #: Array-valued session fields captured by state_dict (``None`` values
    #: are recorded as absent).  Subclasses extend this with their
    #: cardinality-specific proxy fields.
    _CHECKPOINT_ARRAY_FIELDS: tuple[str, ...] = (
        "soft_labels",
        "entropies",
        "selection_soft_labels",
        "selection_entropies",
        "proxy_proba",
    )

    def _capture_rng_state(self, rng) -> dict | None:
        if isinstance(rng, np.random.Generator):
            return rng.bit_generator.state
        return None

    def state_dict(self) -> dict:
        """Everything needed to continue this session bit-identically.

        The snapshot covers the vote matrices (sparse column structure —
        the :class:`~repro.labelmodel.matrix.ColumnStats` handle is rebuilt
        identically from it), the lineage (LFs stored by token, verified
        against the restored dataset's primitive domain), the fitted label
        / selection-view / end models, the session and user RNG streams,
        and every loop counter the refit cadence depends on.  Deliberately
        *not* covered: the refit-scoped selector cache and the lineage's
        distance cache (memoized pure functions of the captured state —
        recomputed bit-identically on demand) and all component
        hyperparameters (the restoring session is constructed with the
        same configuration; see :meth:`load_state_dict`).

        Any proxy refresh deferred by ``lazy_proxy`` is materialized first
        — the end model has not changed since it was deferred, so the
        values are exactly what the first selector read would have
        produced, and the snapshot stays self-contained.

        Snapshotting is only legal *between* interactions: an open
        :meth:`propose` has already advanced the session RNG, so a
        restore followed by a fresh ``propose()`` would run the selector
        a second time and diverge from the uninterrupted session.  The
        serve layer therefore snapshots at commit boundaries only.
        """
        if self._pending is not None:
            raise ProtocolError(
                "cannot snapshot with an open interaction: the selector has "
                "already advanced the session RNG, so a restored session would "
                "re-run it and diverge; submit(), decline(), or cancel() first"
            )
        self._resolve_proxy()
        arrays = {}
        for name in self._CHECKPOINT_ARRAY_FIELDS:
            value = getattr(self, name)
            if value is not None:
                arrays[name] = np.asarray(value).copy()
        return {
            "kind": "session-engine",
            "engine_class": type(self).__name__,
            "dataset_name": self.dataset.name,
            "n_train": int(self.dataset.train.n),
            "n_valid": int(self.dataset.valid.n),
            "abstain": int(self.abstain_value),
            "iteration": int(self.iteration),
            "refit_count": int(self._refit_count),
            "cold_warranted": bool(self._cold_warranted_),
            "end_uncapped": bool(self._end_uncapped_),
            "label_anchor": self._label_anchor_,
            "backstops_skipped": int(self._backstops_skipped_),
            "end_model_fitted": bool(self._end_model_fitted),
            "selected": sorted(int(i) for i in self.selected),
            "active_percentile": (
                None if self.active_percentile_ is None else float(self.active_percentile_)
            ),
            "phase_timings": {k: float(v) for k, v in self.phase_timings.items()},
            "rng_state": self._capture_rng_state(self.rng),
            "user_rng_state": self._capture_rng_state(getattr(self.user, "rng", None)),
            "lineage": [
                {
                    "iteration": int(r.iteration),
                    "dev_index": int(r.dev_index),
                    "primitive": str(r.lf.primitive),
                    "primitive_id": int(r.lf.primitive_id),
                    "label": int(r.lf.label),
                }
                for r in self.lineage.records
            ],
            "votes_train": self._L_train.state_arrays(),
            "votes_valid": self._L_valid.state_arrays(),
            "arrays": arrays,
            "label_model": (
                None if self.label_model_ is None else self.label_model_.state_dict()
            ),
            "selection_model": (
                None
                if self._selection_model_ is None
                else self._selection_model_.state_dict()
            ),
            "end_model": self.end_model.state_dict(),
            "end_anchor": self._end_anchor_,
            "covered_rows": (
                None if self._covered_buf is None else self._covered_buf.rows.copy()
            ),
        }

    def load_state_dict(self, state: dict) -> "IncrementalSessionEngine":
        """Restore a :meth:`state_dict` snapshot onto this fresh session.

        The session must have been constructed with the same dataset
        (name, split sizes, featurization) and an equivalent component
        configuration as the one that was snapshotted — the checkpoint
        carries fitted state only, never configuration.  Identity checks
        are fail-closed: engine class, dataset name, split sizes, abstain
        sentinel, and every LF's primitive token → column mapping must
        match, otherwise the restore raises instead of continuing a
        session that would silently diverge.  After a successful restore,
        :meth:`step` continues exactly as the snapshotted session would
        have (see the checkpoint round-trip tests).
        """
        if not isinstance(state, dict) or state.get("kind") != "session-engine":
            raise ValueError("not a session-engine state dict")
        if state.get("engine_class") != type(self).__name__:
            raise ValueError(
                f"checkpoint was captured from {state.get('engine_class')!r} but is "
                f"being loaded into {type(self).__name__!r}"
            )
        if state.get("dataset_name") != self.dataset.name:
            raise ValueError(
                f"checkpoint was captured on dataset {state.get('dataset_name')!r} "
                f"but this session runs on {self.dataset.name!r}"
            )
        if (
            int(state.get("n_train", -1)) != self.dataset.train.n
            or int(state.get("n_valid", -1)) != self.dataset.valid.n
        ):
            raise ValueError(
                "checkpoint split sizes do not match the session's dataset "
                f"(got train={state.get('n_train')}, valid={state.get('n_valid')}, "
                f"expected train={self.dataset.train.n}, valid={self.dataset.valid.n})"
            )
        if int(state.get("abstain", self.abstain_value)) != self.abstain_value:
            raise ValueError(
                f"checkpoint abstain sentinel {state.get('abstain')} does not match "
                f"the session's {self.abstain_value}"
            )

        # Lineage first: LFs are rebuilt by token against the *current*
        # featurization and verified against the recorded column, so a
        # vocabulary drift fails loudly here before any state is touched.
        lineage = LineageStore(self.dataset)
        for entry in state.get("lineage", ()):
            rebuilt = self.family.make_by_token(entry["primitive"], int(entry["label"]))
            if rebuilt.primitive_id != int(entry["primitive_id"]):
                raise ValueError(
                    f"primitive {entry['primitive']!r} moved from column "
                    f"{entry['primitive_id']} to {rebuilt.primitive_id}; the dataset "
                    "was featurized differently from the checkpointed session"
                )
            lineage.add(rebuilt, int(entry["dev_index"]), int(entry["iteration"]))
        self.lineage = lineage

        self._L_train = VoteMatrix.from_state_arrays(
            self.dataset.train.n, self.abstain_value, state["votes_train"]
        )
        self._L_valid = VoteMatrix.from_state_arrays(
            self.dataset.valid.n, self.abstain_value, state["votes_valid"]
        )

        self.iteration = int(state["iteration"])
        self._refit_count = int(state["refit_count"])
        self._cold_warranted_ = bool(state["cold_warranted"])
        self._end_uncapped_ = bool(state["end_uncapped"])
        self._end_model_fitted = bool(state["end_model_fitted"])
        self.selected = {int(i) for i in state["selected"]}
        ap = state.get("active_percentile")
        self.active_percentile_ = None if ap is None else float(ap)
        timings = {p: 0.0 for p in PHASES}
        timings["contextualize"] = 0.0
        timings.update({k: float(v) for k, v in state.get("phase_timings", {}).items()})
        self.phase_timings = timings

        rng_state = state.get("rng_state")
        if rng_state is not None:
            self.rng.bit_generator.state = rng_state
        user_rng_state = state.get("user_rng_state")
        user_rng = getattr(self.user, "rng", None)
        if user_rng_state is not None:
            if not isinstance(user_rng, np.random.Generator):
                raise ValueError(
                    "checkpoint carries a user RNG stream but this session's user "
                    "has none — the user configuration does not match"
                )
            user_rng.bit_generator.state = user_rng_state

        arrays = state.get("arrays", {})
        for name in self._CHECKPOINT_ARRAY_FIELDS:
            setattr(self, name, arrays[name].copy() if name in arrays else None)

        def _restore_model(payload, factory):
            if payload is None:
                return None
            model = factory()
            model.load_state_dict(payload)
            return model

        self.label_model_ = _restore_model(state.get("label_model"), self.label_model_factory)
        self._selection_model_ = _restore_model(
            state.get("selection_model"), self.label_model_factory
        )
        self.end_model.load_state_dict(state["end_model"])
        anchor = state.get("end_anchor")
        self._end_anchor_ = anchor if anchor else None
        label_anchor = state.get("label_anchor")
        self._label_anchor_ = label_anchor if label_anchor else None
        self._backstops_skipped_ = int(state.get("backstops_skipped", 0))
        covered_rows = state.get("covered_rows")
        if covered_rows is None:
            self._covered_buf = None
        else:
            # The buffer's row order is first-covered order, which a lazy
            # rebuild from the current coverage mask would not reproduce —
            # restore the exact recorded order so minibatch gradient sums
            # stay bit-identical to the uninterrupted session.
            buf = CoveredFeatureBuffer(self.dataset.train.X)
            buf.preload(np.asarray(covered_rows, dtype=np.intp))
            self._covered_buf = buf

        # The refit-scoped cache holds memoized pure functions of the
        # restored state; dropping it is bit-identical (entries are
        # recomputed on first read).  The snapshot materialized any
        # deferred proxy refresh, so the restored proxy is current.
        # Snapshots are taken at commit boundaries only, so a restored
        # session never has an open interaction.
        self._selector_cache = {}
        self._proxy_stale = False
        self._pending = None
        return self
