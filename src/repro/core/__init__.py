"""Nemo core: the paper's primary contribution.

LF family and lineage, the SEU selector (Eq. 1–3), the LF contextualizer
(Eq. 4), and the interactive session engine tying them together.
"""

from repro.core.batch_session import (
    BatchDataProgrammingSession,
    BatchRandomSelector,
    BatchSEUSelector,
)
from repro.core.config import NemoConfig, nemo_config, snorkel_config
from repro.core.context_sequence import ContextSequenceContextualizer
from repro.core.contextualizer import LFContextualizer, PercentileTuner
from repro.core.convention import (
    BINARY,
    BinaryVoteConvention,
    MulticlassVoteConvention,
    VoteConvention,
    convention_for,
    multiclass_convention,
)
from repro.core.lf import LFFamily, PrimitiveLF
from repro.core.lineage import LineageRecord, LineageStore
from repro.core.protocol import (
    PendingInteraction,
    ProtocolError,
    SimulatedDriver,
    StepOutcome,
)
from repro.core.selection import (
    BASIC_SELECTORS,
    AbstainSelector,
    BaseSessionState,
    DevDataSelector,
    DisagreeSelector,
    MulticlassSessionState,
    RandomSelector,
    SessionState,
    UncertaintySelector,
    make_basic_selector,
)
from repro.core.session import DataProgrammingSession, InteractiveMethod, LFDeveloper
from repro.core.seu import SEUSelector
from repro.core.user_model import (
    USER_MODELS,
    AccuracyWeightedUserModel,
    ThresholdedUserModel,
    UniformUserModel,
    UserModel,
    make_user_model,
)
from repro.core.utility import (
    UTILITIES,
    FullUtility,
    LFUtility,
    NoCorrectnessUtility,
    NoInformativenessUtility,
    make_utility,
)

__all__ = [
    "VoteConvention",
    "BinaryVoteConvention",
    "MulticlassVoteConvention",
    "BINARY",
    "convention_for",
    "multiclass_convention",
    "BaseSessionState",
    "MulticlassSessionState",
    "RandomSelector",
    "AbstainSelector",
    "DisagreeSelector",
    "UncertaintySelector",
    "BASIC_SELECTORS",
    "make_basic_selector",
    "PrimitiveLF",
    "LFFamily",
    "LineageRecord",
    "LineageStore",
    "LFContextualizer",
    "ContextSequenceContextualizer",
    "PercentileTuner",
    "SessionState",
    "DevDataSelector",
    "SEUSelector",
    "UserModel",
    "AccuracyWeightedUserModel",
    "UniformUserModel",
    "ThresholdedUserModel",
    "USER_MODELS",
    "make_user_model",
    "LFUtility",
    "FullUtility",
    "NoInformativenessUtility",
    "NoCorrectnessUtility",
    "UTILITIES",
    "make_utility",
    "InteractiveMethod",
    "LFDeveloper",
    "DataProgrammingSession",
    "PendingInteraction",
    "ProtocolError",
    "SimulatedDriver",
    "StepOutcome",
    "BatchDataProgrammingSession",
    "BatchSEUSelector",
    "BatchRandomSelector",
    "NemoConfig",
    "nemo_config",
    "snorkel_config",
]
