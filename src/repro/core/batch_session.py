"""The general (batched) IDP setup of paper Section 7.

The evaluated system is *atomic*: one development example, one LF per
iteration (|S_t| = |Λ_t| = 1).  Section 7 sketches the general setup where
the user consumes ``batch_size`` examples and may return several LFs per
iteration, with the multi-LF user model of Eq. 5/6:

    x* = argmax_x E_{P(Λ|x)}[ Σ_{λ∈Λ} Ψ_t(λ) ],
    P(Λ|x) = Π_λ P(λ|x),
    P(λ_{z,y}|x) ∝ acc(λ_{z,y}) · 1[acc(λ_{z,y}) > 0.5].

Under independent picks, the expectation of the summed utility decomposes
into per-example single-LF expectations, so batch selection reduces to
taking the top-``batch_size`` examples under the *thresholded* user model —
which is exactly how :class:`BatchDataProgrammingSession` selects.
"""

from __future__ import annotations

import numpy as np

from repro.core.selection import DevDataSelector, SessionState
from repro.core.session import DataProgrammingSession
from repro.core.seu import SEUSelector


class BatchSEUSelector(SEUSelector):
    """Top-k SEU selection with the Sec.-7 thresholded user model (Eq. 6)."""

    name = "batch-seu"

    def __init__(self, batch_size: int = 3, warmup: int = 3) -> None:
        super().__init__(user_model="thresholded", utility="full", warmup=warmup)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size

    def select_batch(self, state: SessionState) -> list[int]:
        """The ``batch_size`` highest-expected-utility eligible examples."""
        mask = state.candidate_mask()
        if not mask.any():
            return []
        eligible = np.flatnonzero(mask)
        if self._in_cold_start(state):
            size = min(self.batch_size, eligible.size)
            return [int(i) for i in state.rng.choice(eligible, size=size, replace=False)]
        scores = self.expected_utilities(state)
        order = eligible[np.argsort(scores[eligible])[::-1]]
        return [int(i) for i in order[: self.batch_size]]


class BatchRandomSelector(DevDataSelector):
    """Uniform batch selection (the batched Snorkel baseline)."""

    name = "batch-random"

    def __init__(self, batch_size: int = 3) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size

    def select(self, state: SessionState) -> int | None:  # pragma: no cover - unused
        batch = self.select_batch(state)
        return batch[0] if batch else None

    def select_batch(self, state: SessionState) -> list[int]:
        mask = state.candidate_mask()
        if not mask.any():
            return []
        eligible = np.flatnonzero(mask)
        size = min(self.batch_size, eligible.size)
        return [int(i) for i in state.rng.choice(eligible, size=size, replace=False)]


class BatchDataProgrammingSession(DataProgrammingSession):
    """IDP session consuming a *batch* of development examples per iteration.

    Each :meth:`step` selects ``selector.select_batch(...)`` examples, asks
    the user for an LF on each, and refits the pipeline **once** at the end
    of the batch — the efficiency trade-off Sec. 7 discusses: the selector
    cannot adapt within a batch, so batched sessions may collect redundant
    LFs relative to the atomic setting.

    All other configuration matches :class:`DataProgrammingSession`.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not hasattr(self.selector, "select_batch"):
            raise TypeError(
                "BatchDataProgrammingSession needs a selector with select_batch() "
                "(e.g. BatchSEUSelector or BatchRandomSelector)"
            )

    def step(self) -> None:
        state = self.build_state()
        batch = self.selector.select_batch(state)
        self.iteration += 1
        if not batch:
            return
        appended = 0
        for dev_index in batch:
            self.selected.add(dev_index)
            lf = self.user.create_lf(dev_index, state)
            if lf is None:
                continue
            # The engine's all-or-nothing develop commit (votes + lineage
            # staged before any mutation) — same guarantee as submit().
            self._commit_develop(lf, dev_index, self.iteration - 1)
            state.lfs.append(lf)  # visible to later picks in the same batch
            appended += 1
        if appended:
            self._refit()
