"""The Interactive Data Programming session engine (paper Fig. 4 / Sec. 3).

:class:`DataProgrammingSession` drives the atomic IDP loop: select one
development example, obtain one LF from the (simulated) user, optionally
contextualize the collected LFs, then refit the label model and end model.
Every paper method that supplies LFs — Snorkel, Snorkel-Abs/Dis, SEU-only,
contextualized-only, and full Nemo — is an instantiation of this class with
different components plugged in; the active-learning and IWS baselines
implement the same :class:`InteractiveMethod` interface in
:mod:`repro.interactive`.

The user need not be in-process: the loop is expressed as the two-phase
command protocol of :mod:`repro.core.protocol`
(``propose``/``submit``/``decline``, ENGINE.md §6), with ``step()`` a
:class:`~repro.core.protocol.SimulatedDriver` binding an
:class:`LFDeveloper` to it.  A remote client — e.g. a human behind the
:mod:`repro.serve` HTTP service — issues exactly the same commands.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable

import numpy as np

from repro.core.contextualizer import LFContextualizer, PercentileTuner
from repro.core.convention import BINARY
from repro.core.engine import IncrementalSessionEngine
from repro.core.lf import LFFamily, PrimitiveLF
from repro.core.selection import DevDataSelector, SessionState
from repro.data.dataset import FeaturizedDataset
from repro.endmodel.logistic import SoftLabelLogisticRegression
from repro.endmodel.metrics import get_metric
from repro.labelmodel.base import LabelModel, posterior_entropy
from repro.utils.rng import ensure_rng


class InteractiveMethod(ABC):
    """One interactive learning scheme, driven one interaction at a time.

    The experiment protocol (Sec. 5.1) calls :meth:`step` once per
    iteration and :meth:`test_score` at evaluation points.
    """

    def __init__(self, dataset: FeaturizedDataset, seed=None) -> None:
        self.dataset = dataset
        self.rng = ensure_rng(seed)
        self._metric_fn = get_metric(dataset.metric)

    @abstractmethod
    def step(self) -> None:
        """Run one user interaction and update internal models."""

    @abstractmethod
    def predict_test(self) -> np.ndarray:
        """±1 predictions of the current end model on the test split."""

    def test_score(self) -> float:
        """The dataset's metric (accuracy or F1) on the test split."""
        return self._metric_fn(self.dataset.test.y, self.predict_test())

    def _prior_predictions(self, n: int) -> np.ndarray:
        """Fallback predictions before any model exists: the prior class."""
        majority = 1 if self.dataset.label_prior >= 0.5 else -1
        return np.full(n, majority, dtype=int)


class LFDeveloper(ABC):
    """The user in the loop: turns a development example into an LF.

    Concrete implementations: the oracle simulated user of Sec. 5.1
    (:class:`repro.interactive.simulated_user.SimulatedUser`) and the noisy
    per-participant variant used for the user-study bench.
    """

    @abstractmethod
    def create_lf(self, dev_index: int, state: SessionState) -> PrimitiveLF | None:
        """Return a new LF developed from ``dev_index``, or ``None``.

        ``None`` models a user unable to extract a (sufficiently accurate,
        non-duplicate) heuristic from the shown example; the iteration is
        still consumed.
        """


class DataProgrammingSession(IncrementalSessionEngine, InteractiveMethod):
    """The end-to-end DP pipeline with pluggable IDP components.

    The select → develop → contextualize → learn loop itself lives in
    :class:`~repro.core.engine.IncrementalSessionEngine` (shared with the
    multiclass session); this class binds the binary
    :class:`~repro.core.convention.VoteConvention` — which carries the ±1
    vote alphabet, the MeTaL default aggregator, and the logistic end
    model — and supplies the ``proxy_labels`` / calibration plumbing.

    Parameters
    ----------
    dataset:
        Featurized dataset.
    selector:
        Development-data selection strategy (Random/Abstain/Disagree/SEU).
    user:
        The :class:`LFDeveloper` producing LFs from selected examples.
    label_model_factory:
        Zero-argument callable returning a fresh
        :class:`~repro.labelmodel.base.LabelModel`; defaults to the
        MeTaL-style model with the dataset's class prior (the paper's
        default aggregator).
    end_model:
        Soft-label classifier; defaults to logistic regression (the paper
        fixes logistic regression for all methods).
    contextualizer:
        Optional :class:`~repro.core.contextualizer.LFContextualizer`;
        ``None`` gives the *standard* (uncontextualized) learning pipeline.
    percentile_tuner:
        Optional :class:`~repro.core.contextualizer.PercentileTuner`; when
        provided (and contextualization is on), the refinement percentile is
        re-tuned on validation soft-label accuracy every ``tune_every``
        iterations.
    tune_every:
        Cadence of percentile re-tuning.
    calibrate_proxy:
        Optionally Platt-calibrate the end model's probabilities on the
        validation split before handing them to selectors as the
        ground-truth proxy.  Off by default — the paper feeds raw end-model
        predictions to SEU; the calibrated variant is provided for study
        (see :mod:`repro.endmodel.calibration`).
    warm_start:
        Warm-start the label model from the previous refit's posterior
        (see :mod:`repro.core.engine`).  ``False`` forces every refit to
        be a from-scratch fit — the original (seed) behaviour.
    full_refit_every:
        Force a cold label-model refit every this many refits, the
        incremental path's correctness backstop.  ``1`` means every refit
        is cold (equivalent to ``warm_start=False``).  ``"auto"`` keeps
        the default integer base but skips a due backstop when the warm
        model has drifted less than ``AUTO_DRIFT_TOL`` from the last cold
        anchor (at most ``AUTO_MAX_SKIPS`` consecutive skips; see
        ENGINE.md §10).
    warm_after:
        Keep refits cold until this many LFs exist — the low-LF regime is
        both the cheapest to refit from scratch and the most multimodal
        to warm-start through (see :mod:`repro.core.engine`).
    warm_label_iter / warm_end_iter:
        Inner-iteration caps for warm label-model (EM) and end-model
        (L-BFGS) refits; full refits are never capped.
    warm_min_train:
        Keep the exact from-scratch semantics whenever the training split
        is smaller than this — refit cost scales with ``n_train``, so
        small sessions gain nothing from incrementality.
    lazy_proxy:
        On warm refits, defer the end-model prediction of the
        ground-truth proxy to the first selector read.  Selectors that
        read it (SEU) see bit-identical values — the end model does not
        change between the refit and the read — while selectors that
        never read it (Random/Abstain/Disagree/Uncertainty) skip
        end-model prediction entirely between cold refits.  ``False``
        restores the eager refresh every refit (the original behaviour).
        Ignored when ``calibrate_proxy=True`` (calibration is inherently
        eager).
    warm_end_mode:
        How warm (between-backstop) end-model refits run: ``"minibatch"``
        streams them through the end model's Adam continuation
        (:meth:`~repro.endmodel.logistic.SoftLabelLogisticRegression.fit_minibatch`)
        fed by the engine's grow-only covered-feature buffer; ``"lbfgs"``
        is the defeat switch keeping the capped warm L-BFGS fit.  Cold
        backstops are bit-identical full fits either way (ENGINE.md §7).
    seed:
        Seed for all session randomness.
    """

    convention = BINARY
    abstain_value = BINARY.abstain

    #: The binary session adds the hard ±1 proxy to the checkpointed arrays.
    _CHECKPOINT_ARRAY_FIELDS = IncrementalSessionEngine._CHECKPOINT_ARRAY_FIELDS + (
        "proxy_labels",
    )

    def __init__(
        self,
        dataset: FeaturizedDataset,
        selector: DevDataSelector,
        user: LFDeveloper,
        label_model_factory: Callable[[], LabelModel] | None = None,
        end_model: SoftLabelLogisticRegression | None = None,
        contextualizer: LFContextualizer | None = None,
        percentile_tuner: PercentileTuner | None = None,
        tune_every: int = 5,
        calibrate_proxy: bool = False,
        warm_start: bool = True,
        full_refit_every: int | str = 10,
        warm_after: int = 8,
        warm_label_iter: int = 3,
        warm_end_iter: int = 15,
        warm_min_train: int = 2000,
        lazy_proxy: bool = True,
        warm_end_mode: str = "minibatch",
        seed=None,
    ) -> None:
        InteractiveMethod.__init__(self, dataset, seed)
        if label_model_factory is None:
            label_model_factory = self.convention.default_label_model_factory(dataset)
        if end_model is None:
            end_model = self.convention.default_end_model(dataset)
        self.calibrate_proxy = calibrate_proxy
        self.family = LFFamily(dataset.primitive_names, dataset.train.B)

        n_train = dataset.train.n
        prior = dataset.label_prior
        self.soft_labels = np.full(n_train, prior)
        self.entropies = posterior_entropy(self.soft_labels)
        # Prior-sampled proxy labels until the first end model exists.
        self.proxy_labels = np.where(self.rng.random(n_train) < prior, 1, -1)
        self.proxy_proba = np.full(n_train, prior)
        self._init_engine(
            selector=selector,
            user=user,
            label_model_factory=label_model_factory,
            end_model=end_model,
            contextualizer=contextualizer,
            percentile_tuner=percentile_tuner,
            tune_every=tune_every,
            warm_start=warm_start,
            full_refit_every=full_refit_every,
            warm_after=warm_after,
            warm_label_iter=warm_label_iter,
            warm_end_iter=warm_end_iter,
            warm_min_train=warm_min_train,
            lazy_proxy=lazy_proxy,
            warm_end_mode=warm_end_mode,
        )

    # ------------------------------------------------------------------ #
    # engine hooks
    # ------------------------------------------------------------------ #
    def build_state(self) -> SessionState:
        """Snapshot the session for selectors and the user."""
        return SessionState(
            dataset=self.dataset,
            family=self.family,
            iteration=self.iteration,
            lfs=self.lfs,
            L_train=self.L_train,
            soft_labels=(
                self.selection_soft_labels
                if self.selection_soft_labels is not None
                else self.soft_labels
            ),
            entropies=(
                self.selection_entropies
                if self.selection_entropies is not None
                else self.entropies
            ),
            proxy_labels=self.proxy_labels,
            proxy_proba=self.proxy_proba,
            selected=self.selected,
            rng=self.rng,
            cache=self._selector_cache,
            proxy_provider=self._resolve_proxy,
        )

    def _update_proxy(self) -> None:
        if self.calibrate_proxy:
            from repro.endmodel.calibration import PlattCalibrator

            calibrator = PlattCalibrator()
            self.proxy_proba = calibrator.fit_transform_from(
                self.end_model,
                self.dataset.valid.X,
                self.dataset.valid.y,
                self.dataset.train.X,
            )
            self.proxy_labels = np.where(self.proxy_proba >= 0.5, 1, -1)
            self._proxy_stale = False
        elif self._lazy_proxy_allowed():
            # Warm refit: defer the refresh to the first selector read
            # (ENGINE.md §4) — selectors that never read the proxy never
            # pay for end-model prediction between cold refits.
            self._mark_proxy_stale()
        else:
            self._refresh_proxy()

    def _refresh_proxy(self) -> None:
        self.proxy_proba = self.end_model.predict_proba(self.dataset.train.X)
        self.proxy_labels = np.where(self.proxy_proba >= 0.5, 1, -1)
        self._proxy_stale = False

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #
    def predict_test(self) -> np.ndarray:
        if not self._end_model_fitted:
            return self._prior_predictions(self.dataset.test.n)
        return self.end_model.predict(self.dataset.test.X)

    def predict_proba_test(self) -> np.ndarray:
        """``P(y=+1|x)`` on the test split (prior before any model exists)."""
        if not self._end_model_fitted:
            return np.full(self.dataset.test.n, self.dataset.label_prior)
        return self.end_model.predict_proba(self.dataset.test.X)
