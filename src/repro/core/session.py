"""The Interactive Data Programming session engine (paper Fig. 4 / Sec. 3).

:class:`DataProgrammingSession` drives the atomic IDP loop: select one
development example, obtain one LF from the (simulated) user, optionally
contextualize the collected LFs, then refit the label model and end model.
Every paper method that supplies LFs — Snorkel, Snorkel-Abs/Dis, SEU-only,
contextualized-only, and full Nemo — is an instantiation of this class with
different components plugged in; the active-learning and IWS baselines
implement the same :class:`InteractiveMethod` interface in
:mod:`repro.interactive`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable

import numpy as np

from repro.core.contextualizer import LFContextualizer, PercentileTuner
from repro.core.lf import LFFamily, PrimitiveLF
from repro.core.lineage import LineageStore
from repro.core.selection import DevDataSelector, SessionState
from repro.data.dataset import FeaturizedDataset
from repro.endmodel.logistic import SoftLabelLogisticRegression
from repro.endmodel.metrics import get_metric
from repro.labelmodel.base import LabelModel, posterior_entropy
from repro.labelmodel.matrix import coverage_mask
from repro.labelmodel.metal import MetalLabelModel
from repro.utils.rng import ensure_rng


class InteractiveMethod(ABC):
    """One interactive learning scheme, driven one interaction at a time.

    The experiment protocol (Sec. 5.1) calls :meth:`step` once per
    iteration and :meth:`test_score` at evaluation points.
    """

    def __init__(self, dataset: FeaturizedDataset, seed=None) -> None:
        self.dataset = dataset
        self.rng = ensure_rng(seed)
        self._metric_fn = get_metric(dataset.metric)

    @abstractmethod
    def step(self) -> None:
        """Run one user interaction and update internal models."""

    @abstractmethod
    def predict_test(self) -> np.ndarray:
        """±1 predictions of the current end model on the test split."""

    def test_score(self) -> float:
        """The dataset's metric (accuracy or F1) on the test split."""
        return self._metric_fn(self.dataset.test.y, self.predict_test())

    def _prior_predictions(self, n: int) -> np.ndarray:
        """Fallback predictions before any model exists: the prior class."""
        majority = 1 if self.dataset.label_prior >= 0.5 else -1
        return np.full(n, majority, dtype=int)


class LFDeveloper(ABC):
    """The user in the loop: turns a development example into an LF.

    Concrete implementations: the oracle simulated user of Sec. 5.1
    (:class:`repro.interactive.simulated_user.SimulatedUser`) and the noisy
    per-participant variant used for the user-study bench.
    """

    @abstractmethod
    def create_lf(self, dev_index: int, state: SessionState) -> PrimitiveLF | None:
        """Return a new LF developed from ``dev_index``, or ``None``.

        ``None`` models a user unable to extract a (sufficiently accurate,
        non-duplicate) heuristic from the shown example; the iteration is
        still consumed.
        """


class DataProgrammingSession(InteractiveMethod):
    """The end-to-end DP pipeline with pluggable IDP components.

    Parameters
    ----------
    dataset:
        Featurized dataset.
    selector:
        Development-data selection strategy (Random/Abstain/Disagree/SEU).
    user:
        The :class:`LFDeveloper` producing LFs from selected examples.
    label_model_factory:
        Zero-argument callable returning a fresh
        :class:`~repro.labelmodel.base.LabelModel`; defaults to the
        MeTaL-style model with the dataset's class prior (the paper's
        default aggregator).
    end_model:
        Soft-label classifier; defaults to logistic regression (the paper
        fixes logistic regression for all methods).
    contextualizer:
        Optional :class:`~repro.core.contextualizer.LFContextualizer`;
        ``None`` gives the *standard* (uncontextualized) learning pipeline.
    percentile_tuner:
        Optional :class:`~repro.core.contextualizer.PercentileTuner`; when
        provided (and contextualization is on), the refinement percentile is
        re-tuned on validation soft-label accuracy every ``tune_every``
        iterations.
    tune_every:
        Cadence of percentile re-tuning.
    calibrate_proxy:
        Optionally Platt-calibrate the end model's probabilities on the
        validation split before handing them to selectors as the
        ground-truth proxy.  Off by default — the paper feeds raw end-model
        predictions to SEU; the calibrated variant is provided for study
        (see :mod:`repro.endmodel.calibration`).
    seed:
        Seed for all session randomness.
    """

    def __init__(
        self,
        dataset: FeaturizedDataset,
        selector: DevDataSelector,
        user: LFDeveloper,
        label_model_factory: Callable[[], LabelModel] | None = None,
        end_model: SoftLabelLogisticRegression | None = None,
        contextualizer: LFContextualizer | None = None,
        percentile_tuner: PercentileTuner | None = None,
        tune_every: int = 5,
        calibrate_proxy: bool = False,
        seed=None,
    ) -> None:
        super().__init__(dataset, seed)
        self.selector = selector
        self.user = user
        if label_model_factory is None:
            prior = dataset.label_prior
            label_model_factory = lambda: MetalLabelModel(class_prior=prior)  # noqa: E731
        self.label_model_factory = label_model_factory
        self.end_model = end_model if end_model is not None else SoftLabelLogisticRegression()
        self.contextualizer = contextualizer
        self.percentile_tuner = percentile_tuner
        if tune_every < 1:
            raise ValueError(f"tune_every must be >= 1, got {tune_every}")
        self.tune_every = tune_every
        self.calibrate_proxy = calibrate_proxy

        n_train = dataset.train.n
        self.family = LFFamily(dataset.primitive_names, dataset.train.B)
        self.selection_soft_labels: np.ndarray | None = None
        self.selection_entropies: np.ndarray | None = None
        self.lineage = LineageStore(dataset)
        self.iteration = 0
        self.selected: set[int] = set()
        self.L_train = np.zeros((n_train, 0), dtype=np.int8)
        self.L_valid = np.zeros((dataset.valid.n, 0), dtype=np.int8)
        prior = dataset.label_prior
        self.soft_labels = np.full(n_train, prior)
        self.entropies = posterior_entropy(self.soft_labels)
        # Prior-sampled proxy labels until the first end model exists.
        self.proxy_labels = np.where(self.rng.random(n_train) < prior, 1, -1)
        self.proxy_proba = np.full(n_train, prior)
        self.label_model_: LabelModel | None = None
        self._end_model_fitted = False
        self.active_percentile_: float | None = (
            contextualizer.percentile if contextualizer is not None else None
        )

    # ------------------------------------------------------------------ #
    # IDP loop
    # ------------------------------------------------------------------ #
    @property
    def lfs(self) -> list[PrimitiveLF]:
        return self.lineage.lfs

    def build_state(self) -> SessionState:
        """Snapshot the session for selectors and the user."""
        return SessionState(
            dataset=self.dataset,
            family=self.family,
            iteration=self.iteration,
            lfs=self.lfs,
            L_train=self.L_train,
            soft_labels=(
                self.selection_soft_labels
                if self.selection_soft_labels is not None
                else self.soft_labels
            ),
            entropies=(
                self.selection_entropies
                if self.selection_entropies is not None
                else self.entropies
            ),
            proxy_labels=self.proxy_labels,
            proxy_proba=self.proxy_proba,
            selected=self.selected,
            rng=self.rng,
        )

    def step(self) -> None:
        """One IDP iteration: select → develop → contextualize → learn."""
        state = self.build_state()
        dev_index = self.selector.select(state)
        self.iteration += 1
        if dev_index is None:
            return
        self.selected.add(dev_index)
        lf = self.user.create_lf(dev_index, state)
        if lf is None:
            return
        self.lineage.add(lf, dev_index, self.iteration - 1)
        self.L_train = np.column_stack([self.L_train, lf.apply(self.dataset.train.B)]).astype(
            np.int8
        )
        self.L_valid = np.column_stack([self.L_valid, lf.apply(self.dataset.valid.B)]).astype(
            np.int8
        )
        self._refit()

    def run(self, n_iterations: int) -> "DataProgrammingSession":
        """Run ``n_iterations`` steps; returns self for chaining."""
        for _ in range(n_iterations):
            self.step()
        return self

    # ------------------------------------------------------------------ #
    # learning stage
    # ------------------------------------------------------------------ #
    def _refit(self) -> None:
        L_effective = self._effective_label_matrix()
        model = self.label_model_factory()
        model.fit(L_effective)
        self.label_model_ = model
        self.soft_labels = model.predict_proba(L_effective)
        self.entropies = posterior_entropy(self.soft_labels)
        self._refit_selection_view(L_effective)
        covered = coverage_mask(L_effective)
        if covered.any():
            X = self.dataset.train.X
            self.end_model.fit(X[np.flatnonzero(covered)], self.soft_labels[covered])
            self._end_model_fitted = True
            if self.calibrate_proxy:
                from repro.endmodel.calibration import PlattCalibrator

                calibrator = PlattCalibrator()
                self.proxy_proba = calibrator.fit_transform_from(
                    self.end_model, self.dataset.valid.X, self.dataset.valid.y, X
                )
            else:
                self.proxy_proba = self.end_model.predict_proba(X)
            self.proxy_labels = np.where(self.proxy_proba >= 0.5, 1, -1)

    def _effective_label_matrix(self) -> np.ndarray:
        if self.contextualizer is None:
            return self.L_train
        if self.percentile_tuner is not None and self._should_tune():
            self.active_percentile_ = self.percentile_tuner.best_percentile(
                self.contextualizer,
                self.L_train,
                self.L_valid,
                self.lineage,
                self.label_model_factory,
                self.dataset.valid.y,
            )
        percentile = self.active_percentile_
        return self.contextualizer.refine(
            self.L_train, self.lineage, "train", percentile=percentile
        )

    def _refit_selection_view(self, L_effective: np.ndarray) -> None:
        """Posterior over the *unrefined* votes, for selectors only.

        Refinement makes over-generalizing LFs abstain far from their
        development data — which is good for learning, but it also erases
        the conflict signal there, and conflicts are exactly where the
        uncertainty-seeking selectors should look (Eq. 3's ψ peaks on
        "examples on which the LFs disagree the most").  Selectors
        therefore see the posterior of the raw vote matrix; the learning
        pipeline keeps the refined one.
        """
        if self.contextualizer is None or L_effective is self.L_train:
            self.selection_soft_labels = None
            self.selection_entropies = None
            return
        raw_model = self.label_model_factory()
        raw_model.fit(self.L_train)
        self.selection_soft_labels = raw_model.predict_proba(self.L_train)
        self.selection_entropies = posterior_entropy(self.selection_soft_labels)

    def _should_tune(self) -> bool:
        # The refinement radius matters most in the low-LF regime (each vote
        # carries a large posterior weight), so tune on every new LF early,
        # then back off to every ``tune_every`` LFs.
        m = len(self.lineage)
        return m >= 1 and (m <= 6 or m % self.tune_every == 0)

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #
    def predict_test(self) -> np.ndarray:
        if not self._end_model_fitted:
            return self._prior_predictions(self.dataset.test.n)
        return self.end_model.predict(self.dataset.test.X)

    def predict_proba_test(self) -> np.ndarray:
        """``P(y=+1|x)`` on the test split (prior before any model exists)."""
        if not self._end_model_fitted:
            return np.full(self.dataset.test.n, self.dataset.label_prior)
        return self.end_model.predict_proba(self.dataset.test.X)
