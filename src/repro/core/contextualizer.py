"""The LF contextualizer: radius-based refinement of LFs (paper Eq. 4).

Each LF is restricted to be active only within a radius of its development
data point:

    λ'_j(x) = λ_j(x)  if dist(x, x_{λ_j}) ≤ r_j   else abstain,

where ``r_j`` is the ``p``-th percentile of the distances from all train
examples to ``x_{λ_j}``.  The refinement is a pure pre-processing step on
the label matrix, which is what makes the contextualized pipeline
label-model agnostic (Sec. 4.3) — and label-*space* agnostic too: Eq. 4
only ever moves votes to *abstain*, so the implementation is written once
against the :class:`~repro.core.convention.VoteConvention` contract
(matrix validation + abstain sentinel) and serves both the binary and the
K-class pipelines (:mod:`repro.multiclass.contextualizer` binds the
latter).
"""

from __future__ import annotations

import numpy as np

from repro.core.convention import BINARY, VoteConvention
from repro.core.lineage import LineageStore
from repro.text.distance import DISTANCE_NAMES
from repro.utils.validation import check_in_range


class LFContextualizer:
    """Refines label matrices using LF development context.

    Parameters
    ----------
    metric:
        ``"cosine"`` (paper default and Table-9 winner) or ``"euclidean"``.
    percentile:
        The radius percentile ``p`` (system hyperparameter).  May be
        overridden per call, which is how the validation tuner works.
    convention:
        The vote convention of the matrices to refine (binary default).
    """

    def __init__(
        self,
        metric: str = "cosine",
        percentile: float = 75.0,
        convention: VoteConvention = BINARY,
    ) -> None:
        if metric not in DISTANCE_NAMES:
            raise ValueError(f"metric must be one of {DISTANCE_NAMES}, got {metric!r}")
        check_in_range("percentile", percentile, 0.0, 100.0)
        self.metric = metric
        self.percentile = percentile
        self.convention = convention

    def radii(self, lineage: LineageStore, percentile: float | None = None) -> np.ndarray:
        """Per-LF refinement radii ``r_j`` from train-split distances."""
        p = self.percentile if percentile is None else percentile
        check_in_range("percentile", p, 0.0, 100.0)
        train_dists = lineage.distances("train", self.metric)
        if train_dists.shape[1] == 0:
            return np.zeros(0)
        return np.percentile(train_dists, p, axis=0)

    def refine(
        self,
        L: np.ndarray,
        lineage: LineageStore,
        split: str = "train",
        percentile: float | None = None,
    ) -> np.ndarray:
        """Apply Eq. 4: abstain votes outside each LF's radius.

        Parameters
        ----------
        L:
            ``(n_split, m)`` label matrix produced by the *unrefined* LFs.
        lineage:
            Store holding the m records aligned with L's columns.
        split:
            Which split ``L`` was computed on; radii always come from train.
        percentile:
            Optional override of the configured ``p``.
        """
        L = self.convention.validate_matrix(L)
        if L.shape[1] != len(lineage):
            raise ValueError(
                f"label matrix has {L.shape[1]} columns but lineage has "
                f"{len(lineage)} records"
            )
        if L.shape[1] == 0:
            return L.copy()
        radii = self.radii(lineage, percentile)
        dists = lineage.distances(split, self.metric)
        if dists.shape[0] != L.shape[0]:
            raise ValueError(
                f"distance rows ({dists.shape[0]}) do not match label matrix "
                f"rows ({L.shape[0]})"
            )
        keep = dists <= radii[None, :]
        return np.where(keep, L, self.convention.abstain).astype(np.int8)


class PercentileTuner:
    """Selects the refinement percentile on validation soft-label quality.

    The paper tunes ``p`` "based on the validation accuracy of the resultant
    estimated soft labels" (Sec. 4.3).  For each candidate ``p``: refine the
    train votes, fit the label model, refine the validation votes with the
    same radii, and score the validation posterior's hard labels (threshold
    for binary, argmax for K classes) against ground truth — using the
    *dataset's* metric, so that on imbalanced tasks (SMS, scored by F1) the
    tuner does not prefer radii that silently drop all minority-class votes
    (which raw accuracy would reward).

    Parameters
    ----------
    grid:
        Candidate percentiles, coarse by design — the signal is smooth.
    metric:
        Metric name (``"accuracy"`` default, ``"f1"`` for imbalanced binary
        tasks); resolved against the contextualizer's vote convention.
    """

    def __init__(
        self, grid: tuple[float, ...] = (50.0, 75.0, 90.0), metric: str = "accuracy"
    ) -> None:
        if not grid:
            raise ValueError("grid must be non-empty")
        for p in grid:
            check_in_range("percentile", p, 0.0, 100.0)
        self.grid = tuple(grid)
        from repro.endmodel.metrics import get_metric

        get_metric(metric)  # eager name validation; resolution is per-convention
        self.metric_name = metric

    def best_percentile(
        self,
        contextualizer: LFContextualizer,
        L_train: np.ndarray,
        L_valid: np.ndarray,
        lineage: LineageStore,
        label_model_factory,
        y_valid: np.ndarray,
    ) -> float:
        """Return the grid percentile with the best validation score.

        Ties resolve toward the *largest* percentile (least refinement):
        early in a session every candidate may score identically (e.g. F1
        is 0 for all of them), and defaulting to aggressive refinement
        would silently discard scarce minority-class votes.
        """
        convention = contextualizer.convention
        metric_fn = convention.metric_fn(self.metric_name)
        best_p = max(self.grid)
        best_score = -np.inf
        for p in sorted(self.grid, reverse=True):
            refined_train = contextualizer.refine(L_train, lineage, "train", percentile=p)
            model = label_model_factory()
            model.fit(refined_train)
            refined_valid = contextualizer.refine(L_valid, lineage, "valid", percentile=p)
            preds = convention.posterior_to_votes(model.predict_proba(refined_valid))
            score = metric_fn(y_valid, preds)
            if score > best_score:
                best_score = score
                best_p = p
        return best_p
