"""LF utility functions Ψ_t (paper Eq. 3 and its Table-7 ablations).

The utility of LF ``λ`` measures how informative its supervision would be
given the LFs already collected:

    Ψ_t(λ) = Σ_{i ∈ C(λ)}  ψ_uncertainty(x_i) · (λ(x_i) · ŷ_i)

where ``C(λ)`` are the examples λ covers, ``ψ_uncertainty`` is the label
model's posterior entropy, and ``λ(x_i)·ŷ_i ∈ {−1,+1}`` scores the vote's
(approximate) correctness.  For primitive LFs the whole family's utilities
reduce to two sparse mat-vecs:

    Ψ(λ_{z,+1}) =  (Bᵀ (ψ ⊙ ŷ))_z          Ψ(λ_{z,-1}) = −(Bᵀ (ψ ⊙ ŷ))_z

The two ablations drop one factor each: *no-informativeness* removes ψ,
*no-correctness* removes the ŷ agreement term.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np
import scipy.sparse as sp


def signed_proxy(proxy: np.ndarray) -> np.ndarray:
    """Map a ground-truth proxy to signed agreement values in [-1, +1].

    Hard ±1 predictions pass through; probabilities ``P(y=+1|x) ∈ [0, 1]``
    become ``2p - 1`` (the expected value of ŷ).  The soft form is what the
    session supplies — it keeps SEU's correctness term informative even when
    the end model momentarily predicts a single class everywhere.
    """
    proxy = np.asarray(proxy, dtype=float)
    if proxy.size == 0:
        return proxy
    lo, hi = proxy.min(), proxy.max()
    if lo < 0.0:  # negative values only occur in the hard ±1 encoding
        if ((proxy == -1.0) | (proxy == 1.0)).all():
            return proxy
        raise ValueError("proxy must be ±1 hard labels or probabilities in [0, 1]")
    if hi > 1.0:
        raise ValueError("proxy must be ±1 hard labels or probabilities in [0, 1]")
    return 2.0 * proxy - 1.0


class LFUtility(ABC):
    """Vectorized Ψ over the primitive-LF family.

    :meth:`scores` returns the utility of ``λ_{z,+1}`` for every primitive
    ``z``; the utility of ``λ_{z,-1}`` follows from :meth:`negative_scores`
    (for Eq. 3 it is the exact negation, but the ablations differ — the
    no-correctness variant is label-symmetric).
    """

    name: str = "abstract"

    @abstractmethod
    def scores(self, B: sp.csr_matrix, entropies: np.ndarray, proxy_labels: np.ndarray) -> np.ndarray:
        """Utility of ``λ_{z,+1}`` per primitive, shape ``(|Z|,)``."""

    @abstractmethod
    def negative_scores(
        self, B: sp.csr_matrix, entropies: np.ndarray, proxy_labels: np.ndarray
    ) -> np.ndarray:
        """Utility of ``λ_{z,-1}`` per primitive, shape ``(|Z|,)``."""

    def score_lf(
        self,
        lf,
        B: sp.csr_matrix,
        entropies: np.ndarray,
        proxy_labels: np.ndarray,
    ) -> float:
        """Scalar Ψ(λ) for one LF (reference implementation for tests)."""
        table = self.scores(B, entropies, proxy_labels) if lf.label == 1 else (
            self.negative_scores(B, entropies, proxy_labels)
        )
        return float(table[lf.primitive_id])


class FullUtility(LFUtility):
    """Eq. 3: informativeness (entropy) × correctness (ŷ agreement)."""

    name = "full"

    def scores(self, B, entropies, proxy_labels):
        signal = np.asarray(entropies, dtype=float) * signed_proxy(proxy_labels)
        return np.asarray(B.T @ signal).ravel()

    def negative_scores(self, B, entropies, proxy_labels):
        return -self.scores(B, entropies, proxy_labels)


class NoInformativenessUtility(LFUtility):
    """Table-7 ablation: Ψ(λ) = Σ_C λ(x_i)·ŷ_i (correctness only)."""

    name = "no-informativeness"

    def scores(self, B, entropies, proxy_labels):
        return np.asarray(B.T @ signed_proxy(proxy_labels)).ravel()

    def negative_scores(self, B, entropies, proxy_labels):
        return -self.scores(B, entropies, proxy_labels)


class NoCorrectnessUtility(LFUtility):
    """Table-7 ablation: Ψ(λ) = Σ_C ψ_uncertainty(x_i) (coverage of uncertainty).

    Label-symmetric: both polarities of a primitive score identically.
    """

    name = "no-correctness"

    def scores(self, B, entropies, proxy_labels):
        return np.asarray(B.T @ np.asarray(entropies, dtype=float)).ravel()

    def negative_scores(self, B, entropies, proxy_labels):
        return self.scores(B, entropies, proxy_labels)


UTILITIES = {
    "full": FullUtility,
    "no-informativeness": NoInformativenessUtility,
    "no-correctness": NoCorrectnessUtility,
}


def make_utility(name: str) -> LFUtility:
    """Instantiate a registered utility function by name."""
    try:
        cls = UTILITIES[name]
    except KeyError:
        raise ValueError(f"unknown utility {name!r}; choose from {sorted(UTILITIES)}") from None
    return cls()
