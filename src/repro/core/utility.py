"""LF utility functions Ψ_t (paper Eq. 3 and its Table-7 ablations).

The utility of LF ``λ`` measures how informative its supervision would be
given the LFs already collected:

    Ψ_t(λ) = Σ_{i ∈ C(λ)}  ψ_uncertainty(x_i) · s_λ(x_i)

where ``C(λ)`` are the examples λ covers, ``ψ_uncertainty`` is the label
model's posterior entropy, and ``s_λ(x_i)`` scores the vote's (approximate)
correctness against the ground-truth proxy.  For soft proxies the
correctness term is the *chance-centered agreement*

    s_k(x_i) = (K·P(y_i = k) − 1) / (K − 1)

which is +1 at certainty-correct, 0 at chance (so an uninformative end
model exerts no selection pressure), and reduces exactly to Eq. 3's
``λ(x)·ŷ`` expectation ``2p − 1`` for K = 2.  For primitive LFs the whole
family's utilities then reduce to one sparse mat-vec per label:

    Ψ(λ_{z,k}) = (Bᵀ (ψ ⊙ s_k))_z

The implementations are cardinality-generic: :meth:`LFUtility.score_table`
produces the ``(|Z|, K)`` utility table (columns in canonical label order,
see :mod:`repro.core.convention`), and the historical binary interface —
``scores``/``negative_scores`` over a ``(n,)`` proxy — is preserved as a
dispatching convenience.  The two ablations drop one factor each:
*no-informativeness* removes ψ, *no-correctness* removes the agreement.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np
import scipy.sparse as sp


def signed_proxy(proxy: np.ndarray) -> np.ndarray:
    """Map a binary ground-truth proxy to signed agreement values in [-1, +1].

    Hard ±1 predictions pass through; probabilities ``P(y=+1|x) ∈ [0, 1]``
    become ``2p - 1`` (the expected value of ŷ).  The soft form is what the
    session supplies — it keeps SEU's correctness term informative even when
    the end model momentarily predicts a single class everywhere.
    """
    proxy = np.asarray(proxy, dtype=float)
    if proxy.size == 0:
        return proxy
    lo, hi = proxy.min(), proxy.max()
    if lo < 0.0:  # negative values only occur in the hard ±1 encoding
        if ((proxy == -1.0) | (proxy == 1.0)).all():
            return proxy
        raise ValueError("proxy must be ±1 hard labels or probabilities in [0, 1]")
    if hi > 1.0:
        raise ValueError("proxy must be ±1 hard labels or probabilities in [0, 1]")
    return 2.0 * proxy - 1.0


def signed_agreement(proxy_proba: np.ndarray) -> np.ndarray:
    """Map ``(n, K)`` label probabilities to chance-centered agreement values.

    ``out[i, k] = (K·P(y_i = k) − 1) / (K − 1)`` — the Eq. 3 correctness
    term rescaled so that a chance-level proxy contributes zero (see the
    module docstring); identical to ``2p − 1`` when K = 2.
    """
    P = np.asarray(proxy_proba, dtype=float)
    if P.ndim != 2:
        raise ValueError(f"proxy_proba must be 2-D (n, K), got shape {P.shape}")
    if np.any(P < -1e-9) or np.any(P > 1 + 1e-9):
        raise ValueError("proxy_proba entries must lie in [0, 1]")
    K = P.shape[1]
    if K < 2:
        raise ValueError(f"proxy_proba must have at least 2 class columns, got {K}")
    return (K * P - 1.0) / (K - 1.0)


def _agreement(proxy: np.ndarray) -> np.ndarray:
    """Per-label agreement matrix from either proxy form.

    1-D input is the binary shorthand (``P(y=+1)`` probabilities or hard ±1
    predictions, canonical columns ``(+1, −1)``), routed through the binary
    convention's exact-negation specialization; 2-D input is the
    multiclass probability matrix.
    """
    from repro.core.convention import BINARY

    proxy = np.asarray(proxy)
    if proxy.ndim == 1:
        return BINARY.signed_agreement(proxy)
    return signed_agreement(proxy)


class LFUtility(ABC):
    """Vectorized Ψ over the primitive-LF family.

    :meth:`score_table` is the single cardinality-generic implementation;
    :meth:`scores` / :meth:`negative_scores` adapt it to the input shape
    (binary 1-D proxies keep their historical pair-of-vectors interface).
    """

    name: str = "abstract"

    @abstractmethod
    def score_table(
        self, B: sp.csr_matrix, entropies: np.ndarray, agreement: np.ndarray
    ) -> np.ndarray:
        """Utility of ``λ_{z,k}`` per (primitive, label), shape ``(|Z|, K)``.

        ``agreement`` is the ``(n, K)`` chance-centered correctness matrix
        (see :func:`signed_agreement`).
        """

    def scores(self, B: sp.csr_matrix, entropies: np.ndarray, proxy: np.ndarray):
        """Utilities in the shape of the proxy: ``(|Z|,)`` for a binary 1-D
        proxy (the ``λ_{z,+1}`` column), ``(|Z|, K)`` for a probability
        matrix."""
        table = self.score_table(B, entropies, _agreement(proxy))
        if np.asarray(proxy).ndim == 1:
            return table[:, 0]
        return table

    def negative_scores(
        self, B: sp.csr_matrix, entropies: np.ndarray, proxy: np.ndarray
    ) -> np.ndarray:
        """Utility of ``λ_{z,-1}`` per primitive (binary 1-D proxies)."""
        return self.score_table(B, entropies, _agreement(proxy))[:, 1]

    def score_lf(
        self,
        lf,
        B: sp.csr_matrix,
        entropies: np.ndarray,
        proxy: np.ndarray,
    ) -> float:
        """Scalar Ψ(λ) for one LF (reference implementation for tests)."""
        table = self.score_table(B, entropies, _agreement(proxy))
        if np.asarray(proxy).ndim == 1:
            column = 0 if lf.label == 1 else 1
        else:
            column = int(lf.label)
        return float(table[lf.primitive_id, column])


class FullUtility(LFUtility):
    """Eq. 3: informativeness (entropy) × correctness (proxy agreement)."""

    name = "full"

    def score_table(self, B, entropies, agreement):
        signal = np.asarray(entropies, dtype=float)[:, None] * agreement
        return np.asarray(B.T @ signal)


class NoInformativenessUtility(LFUtility):
    """Table-7 ablation: Ψ(λ) = Σ_C s_λ(x_i) (correctness only)."""

    name = "no-informativeness"

    def score_table(self, B, entropies, agreement):
        return np.asarray(B.T @ agreement)


class NoCorrectnessUtility(LFUtility):
    """Table-7 ablation: Ψ(λ) = Σ_C ψ_uncertainty(x_i) (coverage of uncertainty).

    Label-symmetric: every label column of a primitive scores identically.
    """

    name = "no-correctness"

    def score_table(self, B, entropies, agreement):
        K = agreement.shape[1]
        per_primitive = np.asarray(B.T @ np.asarray(entropies, dtype=float)).ravel()
        return np.tile(per_primitive[:, None], (1, K))


UTILITIES = {
    "full": FullUtility,
    "no-informativeness": NoInformativenessUtility,
    "no-correctness": NoCorrectnessUtility,
}


def make_utility(name: str) -> LFUtility:
    """Instantiate a registered utility function by name."""
    try:
        cls = UTILITIES[name]
    except KeyError:
        raise ValueError(f"unknown utility {name!r}; choose from {sorted(UTILITIES)}") from None
    return cls()
