"""Select by Expected Utility — Nemo's development-data selector (Eq. 1).

SEU scores every unlabeled example by the expected utility of the LF the
user would create from it:

    x* = argmax_x  E_{P(λ|x)}[ Ψ_t(λ) ]
       = argmax_x  Σ_y P(y) · Σ_{z ∈ x} w_y(z)·Ψ(λ_{z,y}) / Σ_{z ∈ x} w_y(z)

where the pick weights ``w_y(z)`` come from the user model (Eq. 2) and Ψ
from the utility function (Eq. 3).  With primitive LFs everything reduces
to a handful of sparse mat-vecs over the incidence matrix ``B`` — no loops
over the LF family (see DESIGN.md, "SEU vectorization").
"""

from __future__ import annotations

import numpy as np

from repro.core.selection import DevDataSelector, SessionState
from repro.core.user_model import UserModel, make_user_model
from repro.core.utility import LFUtility, make_utility


class SEUSelector(DevDataSelector):
    """The Nemo selector.

    Parameters
    ----------
    user_model:
        A :class:`~repro.core.user_model.UserModel` instance or registry
        name (``"accuracy"`` for Eq. 2, ``"uniform"`` for the Table-6
        ablation).
    utility:
        A :class:`~repro.core.utility.LFUtility` instance or registry name
        (``"full"`` for Eq. 3, or the Table-7 ablations).
    warmup:
        Select uniformly at random until at least this many LFs exist *and*
        both polarities are represented.  SEU's expectation is computed
        against the end model's predictions (Sec. 4.2); before a
        discriminative model exists — in particular while every LF votes
        the same class — those predictions carry no signal and expected
        utilities degenerate (one user-model branch is starved and the
        ranking collapses onto coverage artifacts).  A brief random phase
        is the standard cold-start treatment for model-guided acquisition.

    Notes
    -----
    Ground-truth accuracies and vote correctness are approximated with the
    end model's current predictions ŷ (Sec. 4.2); SEU therefore improves as
    the loop progresses and the end model sharpens.
    """

    name = "seu"

    def __init__(
        self,
        user_model: UserModel | str = "accuracy",
        utility: LFUtility | str = "full",
        warmup: int = 3,
    ) -> None:
        self.user_model = (
            make_user_model(user_model) if isinstance(user_model, str) else user_model
        )
        self.utility = make_utility(utility) if isinstance(utility, str) else utility
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        self.warmup = warmup

    def select(self, state: SessionState) -> int | None:
        mask = state.candidate_mask()
        if not mask.any():
            return None
        if self._in_cold_start(state):
            return int(state.rng.choice(np.flatnonzero(mask)))
        scores = self.expected_utilities(state)
        return self._argmax_with_ties(scores, mask, state.rng)

    def _in_cold_start(self, state: SessionState) -> bool:
        if len(state.lfs) < self.warmup:
            return True
        polarities = {lf.label for lf in state.lfs}
        return len(polarities) < 2

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #
    def expected_utilities(self, state: SessionState) -> np.ndarray:
        """``E_{P(λ|x)}[Ψ_t(λ)]`` for every train example, shape ``(n,)``.

        Every input of the expectation (the accuracy table ``B.T @ proxy``,
        the utility tables, the posterior entropies) changes only when the
        session refits, so the whole score vector is memoized in the
        refit-scoped ``state.cache`` when one is provided — repeat
        selections between refits (e.g. after an LF-less iteration) become
        a dict lookup instead of a pass over the incidence matrix.
        """
        cache = getattr(state, "cache", None)
        cache_key = ("seu_expected", self.user_model.name, self.utility.name)
        if cache is not None and cache_key in cache:
            return cache[cache_key]
        B = state.B
        acc_pos = state.family.empirical_accuracies(state.proxy_proba)
        w_pos, w_neg = self.user_model.pick_weights(acc_pos)
        util_pos = self.utility.scores(B, state.entropies, state.proxy_proba)
        util_neg = self.utility.negative_scores(B, state.entropies, state.proxy_proba)
        prior = state.dataset.label_prior
        expected = np.zeros(state.n_train)
        for class_prior, weights, utils in (
            (prior, w_pos, util_pos),
            (1.0 - prior, w_neg, util_neg),
        ):
            numerator = np.asarray(B @ (weights * utils)).ravel()
            denominator = np.asarray(B @ weights).ravel()
            contribution = np.divide(
                numerator,
                denominator,
                out=np.zeros_like(numerator),
                where=denominator > 1e-12,
            )
            expected += class_prior * contribution
        if cache is not None:
            cache[cache_key] = expected
        return expected

    def expected_utility_of(self, example_index: int, state: SessionState) -> float:
        """Scalar expected utility of one example (reference path for tests).

        Enumerates the candidate LFs of the example explicitly and combines
        the scalar user-model probabilities with scalar utilities — the
        direct transcription of Eq. 1 used to validate the vectorized path.
        """
        family = state.family
        primitives = family.primitives_in(example_index)
        if primitives.size == 0:
            return 0.0
        acc_pos = family.empirical_accuracies(state.proxy_proba)
        total = 0.0
        for label in (1, -1):
            for pid in primitives:
                lf = family.make(pid, label)
                prob = self.user_model.probability(
                    lf, example_index, family, acc_pos, state.dataset.label_prior
                )
                if prob > 0:
                    total += prob * self.utility.score_lf(
                        lf, state.B, state.entropies, state.proxy_proba
                    )
        return total
