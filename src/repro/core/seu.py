"""Select by Expected Utility — Nemo's development-data selector (Eq. 1).

SEU scores every unlabeled example by the expected utility of the LF the
user would create from it:

    x* = argmax_x  E_{P(λ|x)}[ Ψ_t(λ) ]
       = argmax_x  Σ_y P(y) · Σ_{z ∈ x} w_y(z)·Ψ(λ_{z,y}) / Σ_{z ∈ x} w_y(z)

where the pick weights ``w_y(z)`` come from the user model (Eq. 2) and Ψ
from the utility function (Eq. 3).  With primitive LFs everything reduces
to one pair of sparse mat-vecs over the incidence matrix ``B`` per label —
no loops over the LF family (see DESIGN.md, "SEU vectorization").

The selector is cardinality-generic: the expectation decomposes per label
exactly the same way for ``Y = {±1}`` and ``Y = {0..K-1}``, so the loop
runs over the columns of the state convention's canonical label order
(accuracy table, pick-weight table, utility table, prior vector — see
:mod:`repro.core.convention`).  ``repro.multiclass.seu`` re-exports the
class as ``MCSEUSelector``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.selection import BaseSessionState, DevDataSelector
from repro.core.user_model import UserModel, make_user_model
from repro.core.utility import LFUtility, make_utility


class SEUSelector(DevDataSelector):
    """The Nemo selector.

    Parameters
    ----------
    user_model:
        A :class:`~repro.core.user_model.UserModel` instance or registry
        name (``"accuracy"`` for Eq. 2, ``"uniform"`` for the Table-6
        ablation, ``"thresholded"`` for Eq. 6).
    utility:
        A :class:`~repro.core.utility.LFUtility` instance or registry name
        (``"full"`` for Eq. 3, or the Table-7 ablations).
    warmup:
        Select uniformly at random until at least this many LFs exist *and*
        enough distinct labels are represented (see ``min_classes``).
        SEU's expectation is computed against the end model's predictions
        (Sec. 4.2); before a discriminative model exists — in particular
        while every LF votes the same class — those predictions carry no
        signal and expected utilities degenerate (one user-model branch is
        starved and the ranking collapses onto coverage artifacts).  A
        brief random phase is the standard cold-start treatment for
        model-guided acquisition.
    min_classes:
        How many distinct LF labels must be present before leaving the
        cold-start phase (capped at the label-space cardinality).  Two
        suffices to break the one-sided degeneracy — and is the whole
        alphabet in the binary case; raising it toward ``K`` delays SEU
        until broader class coverage.

    Notes
    -----
    Ground-truth accuracies and vote correctness are approximated with the
    end model's current predictions ŷ (Sec. 4.2); SEU therefore improves as
    the loop progresses and the end model sharpens.
    """

    name = "seu"

    def __init__(
        self,
        user_model: UserModel | str = "accuracy",
        utility: LFUtility | str = "full",
        warmup: int = 3,
        min_classes: int = 2,
    ) -> None:
        self.user_model = (
            make_user_model(user_model) if isinstance(user_model, str) else user_model
        )
        self.utility = make_utility(utility) if isinstance(utility, str) else utility
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        if min_classes < 1:
            raise ValueError(f"min_classes must be >= 1, got {min_classes}")
        self.warmup = warmup
        self.min_classes = min_classes

    def select(self, state: BaseSessionState) -> int | None:
        mask = state.candidate_mask()
        if not mask.any():
            return None
        if self._in_cold_start(state):
            return int(state.rng.choice(np.flatnonzero(mask)))
        scores = self.expected_utilities(state)
        return self._argmax_with_ties(scores, mask, state.rng)

    def _in_cold_start(self, state: BaseSessionState) -> bool:
        if len(state.lfs) < self.warmup:
            return True
        labels = {lf.label for lf in state.lfs}
        return len(labels) < min(self.min_classes, state.convention.n_classes)

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #
    def expected_utilities(self, state: BaseSessionState) -> np.ndarray:
        """``E_{P(λ|x)}[Ψ_t(λ)]`` for every train example, shape ``(n,)``.

        Every input of the expectation (the accuracy table ``B.T @ proxy``,
        the utility tables, the posterior entropies) changes only when the
        session refits, so the whole score vector is memoized in the
        refit-scoped ``state.cache`` when one is provided — repeat
        selections between refits (e.g. after an LF-less iteration) become
        a dict lookup instead of a pass over the incidence matrix.
        """
        cache = getattr(state, "cache", None)
        cache_key = ("seu_expected", self.user_model.name, self.utility.name)
        if cache is not None and cache_key in cache:
            return cache[cache_key]
        convention = state.convention
        B = state.B
        # This is the read that materializes any deferred (on-demand) proxy
        # predictions — sessions whose selector never gets here never pay
        # for end-model prediction between cold refits.
        proxy = state.resolve_proxy()
        acc = convention.accuracy_table(state.family, proxy)  # (|Z|, K)
        weights = self.user_model.pick_weight_table(acc)  # (|Z|, K)
        utils = self.utility.score_table(
            B, state.entropies, convention.signed_agreement(proxy)
        )  # (|Z|, K)
        priors = convention.class_prior_vector(state.dataset)
        K = len(convention.labels)
        if sp.issparse(B):
            # One sparse×dense product per table instead of K sparse
            # mat-vecs: CSR accumulates each output element over the same
            # nonzeros in the same order either way, so the numbers are
            # bit-identical to the historical per-column loop (pinned by
            # the equivalence tests) while amortizing the row traversal
            # across all K label columns.
            numerators = np.asarray(B @ (weights * utils))  # (n, K)
            denominators = np.asarray(B @ weights)  # (n, K)
            contributions = np.divide(
                numerators,
                denominators,
                out=np.zeros_like(numerators),
                where=denominators > 1e-12,
            )
            expected = np.zeros(state.n_train)
            # The K-reduction stays an explicit loop: a BLAS mat-vec here
            # could fuse multiply-adds and drift from the loop's bits.
            for j in range(K):
                expected += priors[j] * contributions[:, j]
        else:
            # Dense incidence matrices would route the fused product
            # through GEMM, whose accumulation order differs from the
            # per-column GEMV — keep the exact historical arithmetic.
            expected = np.zeros(state.n_train)
            for j in range(K):
                numerator = np.asarray(B @ (weights[:, j] * utils[:, j])).ravel()
                denominator = np.asarray(B @ weights[:, j]).ravel()
                contribution = np.divide(
                    numerator,
                    denominator,
                    out=np.zeros_like(numerator),
                    where=denominator > 1e-12,
                )
                expected += priors[j] * contribution
        if cache is not None:
            cache[cache_key] = expected
        return expected

    def expected_utility_of(self, example_index: int, state: BaseSessionState) -> float:
        """Scalar expected utility of one example (reference path for tests).

        Enumerates the candidate LFs of the example explicitly and combines
        the scalar user-model probabilities with scalar utilities — the
        direct transcription of Eq. 1 used to validate the vectorized path.
        """
        convention = state.convention
        family = state.family
        primitives = family.primitives_in(example_index)
        if primitives.size == 0:
            return 0.0
        proxy = state.resolve_proxy()
        acc = convention.accuracy_table(family, proxy)
        utils = self.utility.score_table(
            state.B, state.entropies, convention.signed_agreement(proxy)
        )
        priors = convention.class_prior_vector(state.dataset)
        total = 0.0
        for j, label in enumerate(convention.labels):
            for pid in primitives:
                lf = family.make(int(pid), int(label))
                prob = self.user_model.probability_in_column(
                    lf, example_index, family, acc, float(priors[j]), j
                )
                if prob > 0:
                    total += prob * float(utils[lf.primitive_id, j])
        return total
