"""The command-driven IDP interaction protocol.

A real Nemo deployment has a *human* answering each "develop an LF from
this example" prompt — the user is on the other side of a UI or network
boundary, not an in-process :class:`~repro.core.session.LFDeveloper`.  The
atomic IDP step is therefore split into a two-phase command protocol on
the engine (:class:`~repro.core.engine.IncrementalSessionEngine`):

``propose()``
    Runs the development-data selector and returns a
    :class:`PendingInteraction` — the candidate example plus the session
    state snapshot the selector saw.  The iteration is **not** yet
    consumed: no counter, vote, or lineage mutation happens.  Calling
    ``propose()`` again while an interaction is open returns the *same*
    pending object (idempotent), so a retried request never re-runs the
    selector (which would advance the session RNG a second time).

``submit(lf)`` / ``decline()``
    Close the open interaction.  ``submit`` applies the develop commit —
    vote-column appends, the lineage record, the selected-set and
    iteration counters — all-or-nothing (everything fallible is staged
    and validated before the first mutation), then refits the learning
    pipeline.  ``decline`` models a user unable to extract an LF from the
    shown example: the iteration is consumed, nothing else changes.

``cancel()``
    Discards the open interaction without consuming the iteration.  The
    selector's side effects (the RNG draw, cache fills) are *not* rewound,
    so a cancelled-then-reproposed session diverges from one that never
    proposed — restart-style bit-identical replay is achieved by restoring
    a pre-propose snapshot instead (see ENGINE.md §6).

:class:`SimulatedDriver` closes the loop for in-process users: it drives
``propose → create_lf → submit/decline`` with an
:class:`~repro.core.session.LFDeveloper`, which is exactly what the
engine's historical ``step()``/``run()`` now delegate to — the golden
parity tests pin that the re-expression is bit-identical to the old
hard-wired loop.
"""

from __future__ import annotations

from dataclasses import dataclass


class ProtocolError(RuntimeError):
    """An interaction command was issued in an illegal protocol state."""


@dataclass
class PendingInteraction:
    """One proposed interaction, awaiting ``submit``/``decline``.

    Attributes
    ----------
    token:
        Monotonically increasing proposal id within the session (transient
        — not part of durable snapshots).
    iteration:
        The zero-based iteration index this interaction will consume; the
        engine's ``iteration`` becomes ``iteration + 1`` on close.
    dev_index:
        Train index the selector chose, or ``None`` when nothing is
        eligible (then ``decline()`` is the only legal close).
    state:
        The session-state snapshot the selector saw — the same object an
        in-process user's ``create_lf`` receives, preserving the
        historical single-snapshot-per-step semantics.
    ready_at:
        ``time.perf_counter()`` at the end of selection; the close
        commands attribute the elapsed time to the ``develop`` phase.
    """

    token: int
    iteration: int
    dev_index: int | None
    state: object
    ready_at: float


@dataclass(frozen=True)
class StepOutcome:
    """What one driver-mediated interaction did.

    ``kind`` is ``"submitted"`` (an LF was developed and committed),
    ``"declined"`` (the user produced no LF) or ``"exhausted"`` (the
    selector found no eligible example).  ``lf`` is the committed LF for
    ``"submitted"``, else ``None``.
    """

    kind: str
    dev_index: int | None = None
    lf: object = None


class SimulatedDriver:
    """Drives a session's command protocol with an in-process user.

    The thin adapter that re-expresses the historical pull-model
    ``step()`` over ``propose``/``submit``/``decline``: select, hand the
    snapshot to the :class:`~repro.core.session.LFDeveloper`, and close
    the interaction with whatever it produced.  Both IDP sessions'
    ``step()``/``run()`` delegate here, and the experiment protocol /
    sweep runner drive sessions exclusively through that contract — so
    every simulated transcript exercises the same command path a live
    served session uses.
    """

    def __init__(self, session, user=None) -> None:
        self.session = session
        self.user = user if user is not None else session.user

    def step(self) -> StepOutcome:
        """Run one interaction: propose, develop, close."""
        session = self.session
        pending = session.propose()
        if pending.dev_index is None:
            session.decline()
            return StepOutcome(kind="exhausted")
        lf = self.user.create_lf(pending.dev_index, pending.state)
        if lf is None:
            session.decline()
            return StepOutcome(kind="declined", dev_index=pending.dev_index)
        session.submit(lf)
        return StepOutcome(kind="submitted", dev_index=pending.dev_index, lf=lf)

    def run(self, n_iterations: int):
        """Drive ``n_iterations`` interactions; returns the session.

        Like the historical ``run()``, any proxy refresh deferred by the
        final refit is materialized before returning, so the session's
        public proxy attributes are current at the API boundary.
        """
        for _ in range(n_iterations):
            self.step()
        self.session._resolve_proxy()
        return self.session
