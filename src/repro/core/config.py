"""High-level configuration for assembling Nemo sessions.

:class:`NemoConfig` captures every system knob of the paper in one place
and assembles a :class:`~repro.core.session.DataProgrammingSession` from
it.  The full Nemo system is the default configuration; each ablation row
of Tables 4–9 corresponds to flipping one field (see
:mod:`repro.experiments.runners` for the named method registry).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.contextualizer import LFContextualizer, PercentileTuner
from repro.core.selection import DevDataSelector
from repro.core.session import DataProgrammingSession, LFDeveloper
from repro.core.seu import SEUSelector
from repro.data.dataset import FeaturizedDataset
from repro.endmodel.logistic import SoftLabelLogisticRegression
from repro.labelmodel import make_label_model


@dataclass
class NemoConfig:
    """Declarative Nemo system configuration.

    Attributes
    ----------
    selector:
        ``"seu"`` (default) or ``"random"``/``"abstain"``/``"disagree"``;
        alternatively pass a :class:`DevDataSelector` instance.
    user_model / utility:
        SEU components (only used when ``selector == "seu"``):
        Eq. 2's ``"accuracy"`` model (default) or the ``"uniform"``
        ablation; Eq. 3's ``"full"`` utility or the Table-7 ablations.
    contextualize:
        Whether to run the contextualized learning pipeline (Eq. 4).
    distance_metric:
        ``"cosine"`` (default) or ``"euclidean"`` for the contextualizer.
    percentile:
        Initial refinement percentile ``p``.
    context_gamma:
        Recency-decay ``γ`` of the weighted context-sequence contextualizer
        (the paper's Sec.-3 future-work direction, see
        :mod:`repro.core.context_sequence`).  The default 0.0 keeps the
        paper's single-point Eq.-4 refinement.
    tune_percentile:
        Re-tune ``p`` on validation soft-label accuracy during the loop.
    percentile_grid:
        Candidate grid for the tuner.
    label_model:
        Registry name of the aggregator (``"metal"`` default as in the
        paper; the pipeline is label-model agnostic).
    end_model_l2:
        L2 strength of the logistic-regression end model.
    warm_end_mode:
        How warm (between-backstop) end-model refits run — ``"minibatch"``
        (default, the Adam continuation over the covered-feature buffer)
        or ``"lbfgs"`` (the defeat switch; capped warm L-BFGS).  Cold
        backstops are bit-identical either way (ENGINE.md §7).
    """

    selector: str | DevDataSelector = "seu"
    user_model: str = "accuracy"
    utility: str = "full"
    contextualize: bool = True
    distance_metric: str = "cosine"
    percentile: float = 75.0
    context_gamma: float = 0.0
    tune_percentile: bool = True
    percentile_grid: tuple[float, ...] = (20.0, 35.0, 50.0, 75.0, 90.0, 100.0)
    tune_every: int = 5
    label_model: str = "metal"
    label_model_kwargs: dict = field(default_factory=dict)
    end_model_l2: float = 1e-2
    warm_end_mode: str = "minibatch"

    def build_selector(self) -> DevDataSelector:
        """Resolve the selector field to a concrete instance."""
        if isinstance(self.selector, DevDataSelector):
            return self.selector
        if self.selector == "seu":
            return SEUSelector(user_model=self.user_model, utility=self.utility)
        # Basic selectors live in repro.interactive; import lazily to keep
        # the core package free of upward dependencies.
        from repro.interactive.basic_selectors import make_basic_selector

        return make_basic_selector(self.selector)

    def create_session(
        self,
        dataset: FeaturizedDataset,
        user: LFDeveloper,
        seed=None,
    ) -> DataProgrammingSession:
        """Assemble a ready-to-run session for ``dataset`` with this config."""
        if not self.contextualize:
            contextualizer = None
        elif self.context_gamma > 0.0:
            from repro.core.context_sequence import ContextSequenceContextualizer

            contextualizer = ContextSequenceContextualizer(
                gamma=self.context_gamma,
                metric=self.distance_metric,
                percentile=self.percentile,
            )
        else:
            contextualizer = LFContextualizer(
                metric=self.distance_metric, percentile=self.percentile
            )
        tuner = (
            PercentileTuner(self.percentile_grid, metric=dataset.metric)
            if (self.contextualize and self.tune_percentile)
            else None
        )
        prior = dataset.label_prior
        label_model_factory = lambda: make_label_model(  # noqa: E731
            self.label_model, class_prior=prior, **self.label_model_kwargs
        )
        return DataProgrammingSession(
            dataset=dataset,
            selector=self.build_selector(),
            user=user,
            label_model_factory=label_model_factory,
            end_model=SoftLabelLogisticRegression(l2=self.end_model_l2),
            contextualizer=contextualizer,
            percentile_tuner=tuner,
            tune_every=self.tune_every,
            warm_end_mode=self.warm_end_mode,
            seed=seed,
        )


def nemo_config() -> NemoConfig:
    """The full Nemo system (SEU + contextualized learning)."""
    return NemoConfig()


def snorkel_config() -> NemoConfig:
    """The prevailing-practice baseline: random selection, standard pipeline."""
    return NemoConfig(selector="random", contextualize=False)
