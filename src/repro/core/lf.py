"""Primitive-based labeling functions and the LF family F.

The paper focuses on the most widely adopted LF type (Sec. 4):

    λ_{z,y}(x):  return y if x contains z else abstain

with ``z`` from a domain-specific primitive domain Z (uni-grams for text,
object annotations for images).  The family ``F = {λ_{z,y} | z ∈ Z, y ∈ Y}``
is what both the simulated user samples from and the SEU selector reasons
over.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.labelmodel.matrix import column_nonzero_rows


@dataclass(frozen=True)
class PrimitiveLF:
    """A keyword/primitive labeling function ``λ_{z,y}``.

    Attributes
    ----------
    primitive_id:
        Column of the primitive-incidence matrix ``B`` this LF keys on.
    primitive:
        The primitive token itself (for display/lineage).
    label:
        The ±1 label emitted when the primitive is present.
    """

    primitive_id: int
    primitive: str
    label: int

    def __post_init__(self) -> None:
        if self.label not in (-1, 1):
            raise ValueError(f"label must be -1 or +1, got {self.label}")
        if self.primitive_id < 0:
            raise ValueError(f"primitive_id must be >= 0, got {self.primitive_id}")

    @property
    def name(self) -> str:
        """Human-readable name, e.g. ``"perfect->+1"``."""
        sign = "+1" if self.label == 1 else "-1"
        return f"{self.primitive}->{sign}"

    def apply(self, B: sp.spmatrix) -> np.ndarray:
        """Vote vector over the rows of incidence matrix ``B``.

        Returns an ``(n,)`` int8 array in {-1, 0, +1}.  Sparse-native: only
        the rows covered by the primitive are touched (pass a CSC matrix
        for the O(nnz_col) fast path — no densified column is ever built).
        """
        votes = np.zeros(B.shape[0], dtype=np.int8)
        votes[column_nonzero_rows(B, self.primitive_id)] = self.label
        return votes


class LFFamily:
    """The (lazy) family of all primitive LFs over a dataset's primitive domain.

    Wraps the primitive names and the train-split incidence matrix; provides
    candidate enumeration for the simulated user and aggregate statistics
    for SEU.

    Parameters
    ----------
    primitive_names:
        Token per column of ``B``.
    B:
        Binary ``(n_train, |Z|)`` incidence matrix.
    """

    def __init__(self, primitive_names: list[str], B: sp.csr_matrix) -> None:
        if B.shape[1] != len(primitive_names):
            raise ValueError(
                f"B has {B.shape[1]} columns but {len(primitive_names)} primitive names given"
            )
        self.primitive_names = list(primitive_names)
        self.B = B.tocsr()
        self._B_csc: sp.csc_matrix | None = None
        self._coverage_counts = np.asarray(self.B.sum(axis=0)).ravel()
        # Row nnz of the binary incidence matrix = primitives per example.
        self._example_primitive_counts = np.diff(self.B.indptr)

    @property
    def B_csc(self) -> sp.csc_matrix:
        """Column-major twin of ``B``, built lazily and cached.

        Used for O(nnz_col) covered-row lookups (``explore_examples``,
        sparse LF application on the train split).
        """
        if self._B_csc is None:
            self._B_csc = self.B.tocsc()
        return self._B_csc

    @property
    def n_primitives(self) -> int:
        return len(self.primitive_names)

    def coverage_counts(self) -> np.ndarray:
        """Number of train examples containing each primitive, shape (|Z|,)."""
        return self._coverage_counts.copy()

    def examples_with_primitives(self) -> np.ndarray:
        """Boolean ``(n_train,)`` mask of examples containing ≥1 primitive.

        Precomputed from the CSR row pointers — selectors call this every
        iteration and the mask never changes.
        """
        return self._example_primitive_counts > 0

    def primitives_in(self, example_index: int) -> np.ndarray:
        """Primitive ids present in the given train example.

        Direct CSR index arithmetic — no intermediate sparse row object.
        """
        i = int(example_index)
        return self.B.indices[self.B.indptr[i] : self.B.indptr[i + 1]].copy()

    def make(self, primitive_id: int, label: int) -> PrimitiveLF:
        """Construct the LF ``λ_{z,y}`` for a primitive id and label."""
        return PrimitiveLF(
            primitive_id=int(primitive_id),
            primitive=self.primitive_names[int(primitive_id)],
            label=int(label),
        )

    def make_by_token(self, token: str, label: int) -> PrimitiveLF:
        """Construct an LF from a primitive token (raises if unknown)."""
        try:
            pid = self.primitive_names.index(token)
        except ValueError:
            raise KeyError(f"primitive {token!r} is not in the primitive domain") from None
        return self.make(pid, label)

    def explore_examples(self, primitive_id: int, k: int = 5, rng=None) -> np.ndarray:
        """The primitive-based example explorer (paper Sec. 7).

        Returns up to ``k`` randomly-sampled train indices of examples that
        contain the primitive — the UI feature that lets a user judge how
        well a candidate LF would generalize before committing to it.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        from repro.utils.rng import ensure_rng

        rng = ensure_rng(rng)
        covered = column_nonzero_rows(self.B_csc, primitive_id)
        if covered.size <= k:
            return np.sort(covered)
        return np.sort(rng.choice(covered, size=k, replace=False))

    def empirical_accuracies(self, proxy: np.ndarray) -> np.ndarray:
        """Accuracy of ``λ_{z,+1}`` for every ``z`` under a ground-truth proxy.

        Returns ``(|Z|,)`` array ``acc(z, +1)``; by symmetry
        ``acc(z, -1) = 1 - acc(z, +1)`` on covered examples.  Primitives with
        zero coverage get 0.5 (uninformative).  This is the ``acc(λ)`` of
        Eq. 2, computed against the end model's current predictions because
        ground truth is unavailable (Sec. 4.2).

        ``proxy`` may be hard ±1 predictions or probabilities
        ``P(y=+1|x) ∈ [0,1]``; probabilities are preferred — hard
        predictions zero out a whole user-model branch whenever the end
        model momentarily predicts a single class.
        """
        proxy = np.asarray(proxy, dtype=float)
        if proxy.shape[0] != self.B.shape[0]:
            raise ValueError(
                f"proxy has length {proxy.shape[0]}, expected {self.B.shape[0]}"
            )
        if proxy.size and proxy.min() < 0.0:  # hard ±1 encoding -> [0, 1]
            proxy = (proxy + 1.0) / 2.0
        pos_mass = np.asarray(self.B.T @ proxy).ravel()
        cov = self._coverage_counts
        return np.divide(
            pos_mass, cov, out=np.full(self.n_primitives, 0.5), where=cov > 0
        )
