"""The VoteConvention contract: one label-space, many cardinalities.

Nemo's IDP loop is label-space agnostic — the contextualizer (Eq. 4) only
moves votes to *abstain*, and the SEU user/utility models (Eq. 1–3) are
written over posteriors, not class counts.  What actually differs between
the binary and the K-class pipelines is a small bundle of conventions:

* the **vote alphabet** — which integers may appear in the vote matrix and
  which of them means *abstain* (binary: votes ±1, ``0`` abstains;
  multiclass: votes ``0..K-1``, ``-1`` abstains);
* the **posterior shape** — ``(n,)`` ``P(y=+1|·)`` vectors vs ``(n, K)``
  row-stochastic matrices, with the matching entropy / hard-label maps;
* the **accuracy bookkeeping** — how per-(primitive, label) accuracy
  tables are estimated from ground truth or from a soft proxy;
* the **default learners** — MeTaL + logistic regression vs Dawid–Skene +
  softmax regression.

:class:`VoteConvention` formalizes that bundle.  Every interaction-layer
component (contextualizer, simulated users, user models, utilities, the
basic selectors, SEU, and the session engine) is written once against this
contract; ``repro.multiclass`` merely binds :class:`MulticlassVoteConvention`
where the binary package binds :data:`BINARY`.

Canonical label order
---------------------
Anything tabulated per label (accuracy tables, pick weights, utility
tables, prior vectors, agreement matrices) uses the convention's
``labels`` tuple as its column order: ``(+1, -1)`` for binary, ``(0, ...,
K-1)`` for multiclass.  :meth:`VoteConvention.label_index` maps a vote
value to its column.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import lru_cache

import numpy as np


class VoteConvention(ABC):
    """Everything the interaction layer needs to know about a label space.

    Attributes
    ----------
    name:
        Short identifier (``"binary"`` / ``"multiclass"``).
    abstain:
        The abstain sentinel of the vote matrix.
    n_classes:
        The cardinality ``K`` of the label space.
    labels:
        The non-abstain vote values, in canonical column order.
    """

    name: str = "abstract"
    abstain: int = 0
    n_classes: int = 2
    labels: tuple[int, ...] = ()

    # ------------------------------------------------------------------ #
    # vote alphabet
    # ------------------------------------------------------------------ #
    def label_index(self, label: int) -> int:
        """Column index of a vote value in the canonical label order."""
        try:
            return self.labels.index(int(label))
        except ValueError:
            raise ValueError(
                f"label {label!r} is not a vote value of the {self.name} convention "
                f"(expected one of {self.labels})"
            ) from None

    @abstractmethod
    def validate_matrix(self, L: np.ndarray) -> np.ndarray:
        """Check that ``L`` holds only this convention's vote values; int8."""

    def coverage_mask(self, L: np.ndarray) -> np.ndarray:
        """Boolean ``(n,)`` mask of examples with ≥1 non-abstain vote."""
        return (np.asarray(L) != self.abstain).any(axis=1)

    def abstain_counts(self, L: np.ndarray) -> np.ndarray:
        """Per-example number of abstaining LFs."""
        return (np.asarray(L) == self.abstain).sum(axis=1)

    def conflict_counts(self, L: np.ndarray) -> np.ndarray:
        """Per-example number of conflicting vote *pairs*.

        With per-label counts ``c_v`` on an example, the number of
        unordered pairs of votes naming different labels is
        ``(T² − Σ c_v²) / 2`` where ``T = Σ c_v`` — for two labels this is
        the classic ``p · q``.
        """
        L = np.asarray(L)
        counts = np.stack([(L == v).sum(axis=1) for v in self.labels], axis=1)
        total = counts.sum(axis=1)
        same_pairs = (counts**2).sum(axis=1)
        return ((total**2 - same_pairs) // 2).astype(int)

    # ------------------------------------------------------------------ #
    # posterior helpers
    # ------------------------------------------------------------------ #
    @abstractmethod
    def posterior_entropy(self, proba: np.ndarray) -> np.ndarray:
        """Shannon entropy (nats) per example — ψ_uncertainty of Eq. 3."""

    @abstractmethod
    def posterior_to_votes(self, proba: np.ndarray) -> np.ndarray:
        """Hard labels (in the vote alphabet) from a posterior."""

    @abstractmethod
    def proxy_matrix(self, proxy: np.ndarray) -> np.ndarray:
        """``(n, K)`` per-label proxy probabilities in canonical label order.

        Accepts whatever graded ground-truth proxy the convention's session
        carries (binary ``(n,)`` ``P(y=+1)`` vectors — also hard ±1
        predictions — or multiclass ``(n, K)`` matrices).
        """

    def signed_agreement(self, proxy: np.ndarray) -> np.ndarray:
        """Chance-centered correctness values ``(n, K)`` per label.

        ``(K·P − 1) / (K − 1)`` column-wise over :meth:`proxy_matrix` —
        +1 at certainty-correct, 0 at chance, −1/(K−1) at certainty-wrong;
        recovers Eq. 3's ``λ(x)·ŷ ∈ [−1, 1]`` exactly for K = 2.  The
        formula (and its range validation) is owned by
        :func:`repro.core.utility.signed_agreement`.
        """
        from repro.core.utility import signed_agreement

        return signed_agreement(self.proxy_matrix(proxy))

    # ------------------------------------------------------------------ #
    # accuracy tables (canonical label order columns)
    # ------------------------------------------------------------------ #
    @abstractmethod
    def accuracy_table(self, family, proxy: np.ndarray) -> np.ndarray:
        """``(|Z|, K)`` estimated accuracy of ``λ_{z,label}`` under a proxy.

        ``table[z, j] = P̂(y = labels[j] | z ∈ x)`` against the end model's
        graded predictions — the ``acc(λ)`` of Eq. 2 (Sec. 4.2).  Rows of
        uncovered primitives get the uninformative ``1/K``.
        """

    @abstractmethod
    def true_accuracy_table(self, B, y: np.ndarray) -> np.ndarray:
        """``(|Z|, K)`` ground-truth accuracy of ``λ_{z,label}``.

        Same layout as :meth:`accuracy_table` but computed from true labels
        — what the oracle simulated user thresholds on (Sec. 5.1).
        """

    @abstractmethod
    def class_prior_vector(self, dataset) -> np.ndarray:
        """``(K,)`` prior ``P(y = labels[j])`` in canonical label order."""

    @abstractmethod
    def metric_fn(self, name: str):
        """Hard-label scoring function ``(y_true, y_pred) -> float``.

        Used by the percentile tuner to score posterior-derived predictions
        against validation ground truth with the dataset's metric.
        """

    # ------------------------------------------------------------------ #
    # user simulation
    # ------------------------------------------------------------------ #
    @abstractmethod
    def corrupt_label(self, label: int, rng: np.random.Generator) -> int:
        """A mislabeled reading of ``label`` (NoisyUser step-1 errors)."""

    # ------------------------------------------------------------------ #
    # default learners
    # ------------------------------------------------------------------ #
    @abstractmethod
    def default_label_model_factory(self, dataset):
        """Zero-argument factory for the convention's default aggregator."""

    @abstractmethod
    def default_end_model(self, dataset):
        """A fresh instance of the convention's default end model."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(abstain={self.abstain}, K={self.n_classes})"


class BinaryVoteConvention(VoteConvention):
    """The paper-native binary convention: votes ±1, ``0`` abstains.

    Posteriors are ``(n,)`` vectors ``P(y = +1 | ·)``; the canonical label
    order is ``(+1, −1)`` so column 0 of every table is the positive LF.
    """

    name = "binary"
    abstain = 0
    n_classes = 2
    labels = (1, -1)

    def validate_matrix(self, L: np.ndarray) -> np.ndarray:
        from repro.labelmodel.matrix import validate_label_matrix

        return validate_label_matrix(L)

    def posterior_entropy(self, proba: np.ndarray) -> np.ndarray:
        from repro.labelmodel.base import posterior_entropy

        return posterior_entropy(proba)

    def posterior_to_votes(self, proba: np.ndarray) -> np.ndarray:
        return np.where(np.asarray(proba, dtype=float) >= 0.5, 1, -1)

    def proxy_matrix(self, proxy: np.ndarray) -> np.ndarray:
        p = np.asarray(proxy, dtype=float)
        if p.ndim == 2 and p.shape[1] == 2:
            if np.any(p < -1e-9) or np.any(p > 1 + 1e-9):
                raise ValueError("proxy_proba entries must lie in [0, 1]")
            return p
        if p.ndim != 1:
            raise ValueError(f"binary proxy must be 1-D, got shape {p.shape}")
        if p.size and p.min() < 0.0:  # negative values: must be hard ±1 labels
            if not ((p == -1.0) | (p == 1.0)).all():
                raise ValueError("proxy must be ±1 hard labels or probabilities in [0, 1]")
            p = (p + 1.0) / 2.0
        elif p.size and p.max() > 1.0:
            raise ValueError("proxy must be ±1 hard labels or probabilities in [0, 1]")
        return np.stack([p, 1.0 - p], axis=1)

    def signed_agreement(self, proxy: np.ndarray) -> np.ndarray:
        # The positive column is Eq. 3's 2p − 1; the negative column is its
        # *exact IEEE negation* (matching λ(x)·ŷ sign symmetry), not the
        # generic per-column formula, so both columns share every bit.
        s = 2.0 * self.proxy_matrix(proxy)[:, 0] - 1.0
        return np.stack([s, -s], axis=1)

    def accuracy_table(self, family, proxy: np.ndarray) -> np.ndarray:
        acc_pos = family.empirical_accuracies(proxy)
        return np.stack([acc_pos, 1.0 - acc_pos], axis=1)

    def true_accuracy_table(self, B, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y)
        coverage = np.asarray(B.sum(axis=0)).ravel()
        pos = np.asarray(B.T @ (y == 1).astype(float)).ravel()
        acc_pos = np.divide(
            pos, coverage, out=np.full(len(pos), 0.5), where=coverage > 0
        )
        return np.stack([acc_pos, 1.0 - acc_pos], axis=1)

    def class_prior_vector(self, dataset) -> np.ndarray:
        prior = float(dataset.label_prior)
        return np.array([prior, 1.0 - prior])

    def metric_fn(self, name: str):
        from repro.endmodel.metrics import get_metric

        return get_metric(name)

    def corrupt_label(self, label: int, rng: np.random.Generator) -> int:
        return -label

    def default_label_model_factory(self, dataset):
        from repro.labelmodel.metal import MetalLabelModel

        prior = dataset.label_prior
        return lambda: MetalLabelModel(class_prior=prior)

    def default_end_model(self, dataset):
        from repro.endmodel.logistic import SoftLabelLogisticRegression

        return SoftLabelLogisticRegression()


class MulticlassVoteConvention(VoteConvention):
    """The K-class convention of the weak-supervision literature.

    Votes name a class in ``{0, ..., K-1}`` and ``-1`` abstains; posteriors
    are row-stochastic ``(n, K)`` matrices and the canonical label order is
    simply ``(0, ..., K-1)``.
    """

    name = "multiclass"
    abstain = -1

    def __init__(self, n_classes: int) -> None:
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        self.n_classes = int(n_classes)
        self.labels = tuple(range(self.n_classes))

    def label_index(self, label: int) -> int:
        label = int(label)
        if not 0 <= label < self.n_classes:
            raise ValueError(
                f"label {label!r} is not a vote value of the {self.name} convention "
                f"(expected one of {self.labels})"
            )
        return label

    def validate_matrix(self, L: np.ndarray) -> np.ndarray:
        from repro.multiclass.matrix import validate_mc_label_matrix

        return validate_mc_label_matrix(L, self.n_classes)

    def posterior_entropy(self, proba: np.ndarray) -> np.ndarray:
        from repro.multiclass.base import posterior_entropy_mc

        return posterior_entropy_mc(proba)

    def posterior_to_votes(self, proba: np.ndarray) -> np.ndarray:
        return np.argmax(np.asarray(proba, dtype=float), axis=1).astype(int)

    def proxy_matrix(self, proxy: np.ndarray) -> np.ndarray:
        P = np.asarray(proxy, dtype=float)
        if P.ndim != 2:
            raise ValueError(f"proxy_proba must be 2-D (n, K), got shape {P.shape}")
        if np.any(P < -1e-9) or np.any(P > 1 + 1e-9):
            raise ValueError("proxy_proba entries must lie in [0, 1]")
        if P.shape[1] != self.n_classes:
            raise ValueError(
                f"proxy_proba must have {self.n_classes} class columns, got {P.shape[1]}"
            )
        return P

    def accuracy_table(self, family, proxy: np.ndarray) -> np.ndarray:
        return family.empirical_class_mass(proxy)

    def true_accuracy_table(self, B, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y)
        K = self.n_classes
        coverage = np.asarray(B.sum(axis=0)).ravel()
        onehot = np.zeros((len(y), K))
        onehot[np.arange(len(y)), y] = 1.0
        mass = np.asarray(B.T @ onehot)  # (|Z|, K)
        uniform = np.full_like(mass, 1.0 / K)
        return np.divide(mass, coverage[:, None], out=uniform, where=coverage[:, None] > 0)

    def class_prior_vector(self, dataset) -> np.ndarray:
        return np.asarray(dataset.class_priors, dtype=float)

    def metric_fn(self, name: str):
        if name != "accuracy":
            raise ValueError(
                f"the multiclass convention only scores 'accuracy', got {name!r}"
            )
        return lambda y_true, y_pred: float(
            (np.asarray(y_pred) == np.asarray(y_true)).mean()
        )

    def corrupt_label(self, label: int, rng: np.random.Generator) -> int:
        others = [k for k in range(self.n_classes) if k != label]
        return int(rng.choice(others))

    def default_label_model_factory(self, dataset):
        from repro.multiclass.dawid_skene import MCDawidSkeneModel

        K = self.n_classes
        priors = dataset.class_priors
        return lambda: MCDawidSkeneModel(n_classes=K, class_priors=priors)

    def default_end_model(self, dataset):
        from repro.endmodel.softmax import SoftLabelSoftmaxRegression

        return SoftLabelSoftmaxRegression(n_classes=self.n_classes)


#: The shared binary convention instance (stateless).
BINARY = BinaryVoteConvention()


@lru_cache(maxsize=None)
def multiclass_convention(n_classes: int) -> MulticlassVoteConvention:
    """The (cached) K-class convention instance for a given cardinality."""
    return MulticlassVoteConvention(n_classes)


def convention_for(dataset) -> VoteConvention:
    """The vote convention a dataset's label space calls for.

    Multiclass featurized datasets carry an ``n_classes`` attribute; the
    binary :class:`~repro.data.dataset.FeaturizedDataset` does not.
    """
    n_classes = getattr(dataset, "n_classes", None)
    if n_classes is None:
        return BINARY
    return multiclass_convention(int(n_classes))
