"""User models: P(λ | x), the probability a user writes LF λ from example x.

SEU's expectation (Eq. 1) is taken under a *user model* that mirrors the
observed two-step LF-writing procedure (Sec. 4.1/4.2): determine the label
``y`` of the development example, then pick a ``y``-indicative primitive
``z`` contained in it.  Eq. 2 models the pick probability as proportional
to the (estimated) accuracy of the induced LF:

    P(λ_{z,y} | x) = P(y) · acc(λ_{z,y}) / Σ_{z' in x} acc(λ_{z',y})

with ground-truth accuracies approximated by the end model's current
predictions ŷ.  The ``Uniform`` variant (Table 6's ablation) replaces the
accuracy weights by constants; the ``Thresholded`` variant is the paper's
Sec.-7 multi-LF generalization (Eq. 6), which additionally zeroes the
probability of worse-than-random LFs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.lf import LFFamily, PrimitiveLF


class UserModel(ABC):
    """Assigns pick weights to candidate LFs; SEU normalizes them per example.

    The vectorized interface returns, for every primitive ``z``, the
    *unnormalized* weight of ``λ_{z,+1}`` and ``λ_{z,-1}`` given the current
    accuracy estimates.  SEU divides by the per-example sum (Eq. 2's
    denominator), so only ratios matter.
    """

    name: str = "abstract"

    @abstractmethod
    def pick_weights(self, acc_pos: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(w_pos, w_neg)`` weights per primitive.

        Parameters
        ----------
        acc_pos:
            ``(|Z|,)`` estimated accuracies of ``λ_{z,+1}``; by symmetry the
            accuracy of ``λ_{z,-1}`` is ``1 - acc_pos``.
        """

    def probability(
        self,
        lf: PrimitiveLF,
        example_index: int,
        family: LFFamily,
        acc_pos: np.ndarray,
        label_prior: float,
    ) -> float:
        """Exact ``P(λ | x)`` for one LF and example (reference implementation).

        This is the scalar form of Eq. 2, used in tests and documentation;
        SEU uses the vectorized path.
        """
        primitives = family.primitives_in(example_index)
        if lf.primitive_id not in primitives:
            return 0.0
        w_pos, w_neg = self.pick_weights(acc_pos)
        weights = w_pos if lf.label == 1 else w_neg
        denom = float(weights[primitives].sum())
        if denom <= 0:
            return 0.0
        prior = label_prior if lf.label == 1 else 1.0 - label_prior
        return prior * float(weights[lf.primitive_id]) / denom


class AccuracyWeightedUserModel(UserModel):
    """Eq. 2: pick probability proportional to estimated LF accuracy."""

    name = "accuracy"

    def pick_weights(self, acc_pos: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        acc_pos = np.asarray(acc_pos, dtype=float)
        return acc_pos, 1.0 - acc_pos


class UniformUserModel(UserModel):
    """Table-6 ablation: all candidate primitives equally likely."""

    name = "uniform"

    def pick_weights(self, acc_pos: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        ones = np.ones_like(np.asarray(acc_pos, dtype=float))
        return ones, ones.copy()


class ThresholdedUserModel(UserModel):
    """Eq. 6 (Sec. 7): accuracy-weighted with worse-than-random LFs zeroed.

    ``P(λ_{z,y}|x) ∝ acc(λ_{z,y}) · 1[acc(λ_{z,y}) > 0.5]`` — the building
    block of the multi-LF user model ``P(Λ|x) = Π P(λ|x)``.
    """

    name = "thresholded"

    def __init__(self, threshold: float = 0.5) -> None:
        if not 0.0 <= threshold < 1.0:
            raise ValueError(f"threshold must be in [0, 1), got {threshold}")
        self.threshold = threshold

    def pick_weights(self, acc_pos: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        acc_pos = np.asarray(acc_pos, dtype=float)
        acc_neg = 1.0 - acc_pos
        return (
            np.where(acc_pos > self.threshold, acc_pos, 0.0),
            np.where(acc_neg > self.threshold, acc_neg, 0.0),
        )


USER_MODELS = {
    "accuracy": AccuracyWeightedUserModel,
    "uniform": UniformUserModel,
    "thresholded": ThresholdedUserModel,
}


def make_user_model(name: str, **kwargs) -> UserModel:
    """Instantiate a registered user model by name."""
    try:
        cls = USER_MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown user model {name!r}; choose from {sorted(USER_MODELS)}"
        ) from None
    return cls(**kwargs)
