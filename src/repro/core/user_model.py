"""User models: P(λ | x), the probability a user writes LF λ from example x.

SEU's expectation (Eq. 1) is taken under a *user model* that mirrors the
observed two-step LF-writing procedure (Sec. 4.1/4.2): determine the label
``y`` of the development example, then pick a ``y``-indicative primitive
``z`` contained in it.  Eq. 2 models the pick probability as proportional
to the (estimated) accuracy of the induced LF:

    P(λ_{z,y} | x) = P(y) · acc(λ_{z,y}) / Σ_{z' in x} acc(λ_{z',y})

with ground-truth accuracies approximated by the end model's current
predictions ŷ.  The ``Uniform`` variant (Table 6's ablation) replaces the
accuracy weights by constants; the ``Thresholded`` variant is the paper's
Sec.-7 multi-LF generalization (Eq. 6), which additionally zeroes the
probability of worse-than-chance LFs.

The models are cardinality-generic: the core operation,
:meth:`UserModel.pick_weight_table`, maps a ``(|Z|, K)`` accuracy table
(columns in the convention's canonical label order — see
:mod:`repro.core.convention`) to a ``(|Z|, K)`` weight table.  Only
per-example ratios within a label column matter (Eq. 2's denominator).
The historical binary interface — ``pick_weights(acc_pos)`` returning the
``(w_pos, w_neg)`` pair — is preserved as a dispatching convenience, so
these classes serve both pipelines; :mod:`repro.multiclass.user_model`
re-exports them under their MC names.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.lf import LFFamily, PrimitiveLF


def _as_table(acc: np.ndarray) -> np.ndarray:
    """Normalize an accuracy input to the ``(|Z|, K)`` table form.

    1-D input is the binary shorthand: the accuracies of ``λ_{z,+1}``,
    with ``acc(λ_{z,-1}) = 1 − acc(λ_{z,+1})`` by symmetry.
    """
    acc = np.asarray(acc, dtype=float)
    if acc.ndim == 1:
        return np.stack([acc, 1.0 - acc], axis=1)
    if acc.ndim != 2:
        raise ValueError(f"accuracy table must be 1-D or 2-D, got shape {acc.shape}")
    return acc


class UserModel(ABC):
    """Assigns pick weights to candidate LFs; SEU normalizes them per example."""

    name: str = "abstract"

    @abstractmethod
    def pick_weight_table(self, acc: np.ndarray) -> np.ndarray:
        """Return ``(|Z|, K)`` pick weights from a ``(|Z|, K)`` accuracy table."""

    def pick_weights(self, acc: np.ndarray):
        """Pick weights in the shape of the input accuracy estimate.

        ``(|Z|,)`` binary input (accuracies of ``λ_{z,+1}``) returns the
        historical ``(w_pos, w_neg)`` pair; a ``(|Z|, K)`` table returns
        the ``(|Z|, K)`` weight table.
        """
        table = self.pick_weight_table(_as_table(acc))
        if np.asarray(acc).ndim == 1:
            return table[:, 0], table[:, 1]
        return table

    def probability_in_column(
        self,
        lf: PrimitiveLF,
        example_index: int,
        family: LFFamily,
        acc_table: np.ndarray,
        prior: float,
        column: int,
    ) -> float:
        """``P(λ | x)`` with the label column resolved by the caller.

        The scalar form of Eq. 2 over the canonical table layout — the
        single implementation behind :meth:`probability` and the SEU
        reference path (whose convention knows which column a vote value
        occupies).
        """
        primitives = family.primitives_in(example_index)
        if lf.primitive_id not in primitives:
            return 0.0
        weights = self.pick_weight_table(_as_table(acc_table))[:, column]
        denom = float(weights[primitives].sum())
        if denom <= 0:
            return 0.0
        return float(prior) * float(weights[lf.primitive_id]) / denom

    def probability(
        self,
        lf: PrimitiveLF,
        example_index: int,
        family: LFFamily,
        acc: np.ndarray,
        priors,
    ) -> float:
        """Exact ``P(λ | x)`` for one LF and example (reference implementation).

        This is the scalar form of Eq. 2, used in tests and documentation;
        SEU uses the vectorized path.  ``acc``/``priors`` follow the input
        convention: a 1-D ``acc`` with a scalar positive-class prior
        (binary, ``lf.label ∈ {±1}``), or a ``(|Z|, K)`` table with a
        ``(K,)`` prior vector (``lf.label`` a class id).
        """
        acc = np.asarray(acc, dtype=float)
        if acc.ndim == 1:
            column = 0 if lf.label == 1 else 1
            prior = float(priors) if lf.label == 1 else 1.0 - float(priors)
        else:
            column = int(lf.label)
            prior = float(np.asarray(priors, dtype=float)[column])
        return self.probability_in_column(lf, example_index, family, acc, prior, column)


class AccuracyWeightedUserModel(UserModel):
    """Eq. 2: pick probability proportional to estimated LF accuracy."""

    name = "accuracy"

    def pick_weight_table(self, acc: np.ndarray) -> np.ndarray:
        return np.asarray(acc, dtype=float).copy()


class UniformUserModel(UserModel):
    """Table-6 ablation: all candidate primitives equally likely."""

    name = "uniform"

    def pick_weight_table(self, acc: np.ndarray) -> np.ndarray:
        return np.ones_like(np.asarray(acc, dtype=float))


class ThresholdedUserModel(UserModel):
    """Eq. 6 (Sec. 7): accuracy-weighted with worse-than-chance LFs zeroed.

    ``P(λ_{z,y}|x) ∝ acc(λ_{z,y}) · 1[acc(λ_{z,y}) > t]`` — the building
    block of the multi-LF user model ``P(Λ|x) = Π P(λ|x)``.  ``t`` defaults
    to chance level ``1/K`` (0.5 binary): an LF whose vote is no better
    than a uniform guess carries no pick weight.
    """

    name = "thresholded"

    def __init__(self, threshold: float | None = None) -> None:
        if threshold is not None and not 0.0 <= threshold < 1.0:
            raise ValueError(f"threshold must be in [0, 1), got {threshold}")
        self.threshold = threshold

    def pick_weight_table(self, acc: np.ndarray) -> np.ndarray:
        acc = np.asarray(acc, dtype=float)
        threshold = self.threshold if self.threshold is not None else 1.0 / acc.shape[1]
        return np.where(acc > threshold, acc, 0.0)


USER_MODELS = {
    "accuracy": AccuracyWeightedUserModel,
    "uniform": UniformUserModel,
    "thresholded": ThresholdedUserModel,
}


def make_user_model(name: str, **kwargs) -> UserModel:
    """Instantiate a registered user model by name."""
    try:
        cls = USER_MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown user model {name!r}; choose from {sorted(USER_MODELS)}"
        ) from None
    return cls(**kwargs)
