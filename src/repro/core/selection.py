"""Development-data selection: session states and the baseline selectors.

Every selector sees a session-state snapshot — the label matrix, the label
model's posterior/uncertainty, and the end model's current predictions —
and returns the index of the next development example.  This is the
"Development Data Selection Stage" of the IDP loop (paper Sec. 3).

The state and the selectors are cardinality-generic: all label-space
specifics (abstain sentinel, conflict counting, entropy) are read from the
state's :class:`~repro.core.convention.VoteConvention`.  The binary
:class:`SessionState` and the K-class :class:`MulticlassSessionState` are
thin shape adapters over the shared :class:`BaseSessionState`;
``repro.interactive.basic_selectors`` and ``repro.multiclass.selection``
re-export the selector classes under their historical names.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.convention import BINARY, VoteConvention, multiclass_convention
from repro.core.lf import LFFamily, PrimitiveLF
from repro.data.dataset import FeaturizedDataset
from repro.utils.rng import ensure_rng


@dataclass
class BaseSessionState:
    """Cardinality-generic snapshot of an IDP session at selection time.

    Attributes
    ----------
    dataset:
        The featurized dataset (selectors may read features/primitives but
        never ground-truth train labels).
    family:
        The primitive-LF family over the train split.
    iteration:
        Zero-based index of the upcoming interaction.
    lfs:
        LFs collected so far.
    L_train:
        ``(n_train, m)`` *unrefined* vote matrix of those LFs, in the
        state's vote convention.
    soft_labels:
        Current label-model posterior (from the session's active pipeline —
        refined votes if contextualization is on); ``(n,)`` for binary,
        ``(n, K)`` for multiclass.
    entropies:
        ``(n_train,)`` posterior entropies (ψ_uncertainty of Eq. 3).

    Subclasses add the proxy fields (whose shape is the one genuinely
    cardinality-specific part of the snapshot) plus ``selected`` /
    ``rng`` / ``cache``:

    selected:
        Train indices already shown to the user (selectors avoid repeats).
    rng:
        Shared random generator (tie-breaking, sampling).
    cache:
        Optional dict scoped to the interval between refits: the session
        clears it on every refit, and selectors memoize refit-stable
        aggregates (SEU's ``B.T @ proxy``, utility tables, the expected
        utility vector) in it.  ``None`` (the default for hand-built
        states) disables caching entirely.
    """

    dataset: FeaturizedDataset
    family: LFFamily
    iteration: int
    lfs: list[PrimitiveLF]
    L_train: np.ndarray
    soft_labels: np.ndarray
    entropies: np.ndarray

    @property
    def convention(self) -> VoteConvention:
        raise NotImplementedError

    @property
    def B(self) -> sp.csr_matrix:
        """Train-split primitive incidence matrix."""
        return self.dataset.train.B

    @property
    def n_train(self) -> int:
        return self.dataset.train.n

    def candidate_mask(self) -> np.ndarray:
        """Examples still eligible for selection.

        Excludes previously-selected dev points and examples containing no
        primitives (no LF can be written from them).
        """
        has_primitive = self.family.examples_with_primitives()
        if has_primitive.shape[0] != self.n_train:  # family built on another split
            has_primitive = np.asarray(self.B.sum(axis=1)).ravel() > 0
        mask = has_primitive.copy()
        if self.selected:
            mask[list(self.selected)] = False
        return mask

    def resolve_proxy(self) -> np.ndarray:
        """The graded ground-truth proxy, materialized on demand.

        Sessions running with on-demand proxy prediction (ENGINE.md §4)
        attach a ``proxy_provider`` that performs any deferred end-model
        refresh before handing the array out; the result is memoized in
        the refit-scoped ``cache`` so repeat reads between refits are
        dict lookups.  Hand-built states (no provider) fall back to the
        plain ``proxy_proba`` array — the full-split proxy they were
        constructed with.
        """
        provider = getattr(self, "proxy_provider", None)
        if provider is None:
            return self.proxy_proba
        cache = getattr(self, "cache", None)
        if cache is not None and "proxy_resolved" in cache:
            return cache["proxy_resolved"]
        proxy = provider()
        self.proxy_proba = proxy  # keep direct field reads consistent
        if cache is not None:
            cache["proxy_resolved"] = proxy
        return proxy


@dataclass
class SessionState(BaseSessionState):
    """Binary session snapshot (votes ±1, ``0`` abstains).

    Adds the binary proxy pair to :class:`BaseSessionState`:

    proxy_labels:
        ``(n_train,)`` ±1 end-model predictions ŷ (the ground-truth proxy of
        Sec. 4.2); prior-sampled before the first model exists.
    proxy_proba:
        ``(n_train,)`` end-model probabilities ``P(y=+1|x)`` — the *graded*
        ground-truth proxy SEU consumes.  Hard predictions collapse to a
        single class early in the loop (one-sided LF sets), zeroing an
        entire branch of the user model and locking SEU onto one polarity;
        probabilities preserve the ranking signal (see DESIGN.md).
    """

    proxy_labels: np.ndarray = None
    proxy_proba: np.ndarray = None
    selected: set[int] = field(default_factory=set)
    # Sessions always thread their own stream; the hand-built-state
    # default is a *deterministic* seed-0 stream, not OS entropy, so a
    # state built without an rng still replays bit-identically.
    rng: np.random.Generator = field(default_factory=lambda: ensure_rng(0))
    cache: dict | None = None
    #: Optional callable materializing deferred proxy predictions (set by
    #: sessions running with on-demand proxy; see resolve_proxy).
    proxy_provider: object = None

    def __post_init__(self) -> None:
        if self.proxy_proba is None:
            if self.proxy_labels is None:
                raise TypeError(
                    "SessionState requires proxy_labels and/or proxy_proba"
                )
            self.proxy_proba = (np.asarray(self.proxy_labels, dtype=float) + 1.0) / 2.0

    def resolve_proxy(self) -> np.ndarray:
        proxy = super().resolve_proxy()
        if self.proxy_provider is not None:
            # Keep the hard-label field consistent with the materialized
            # proxy (the multiclass state derives its labels by property).
            self.proxy_labels = np.where(np.asarray(proxy) >= 0.5, 1, -1)
        return proxy

    @property
    def convention(self) -> VoteConvention:
        return BINARY


@dataclass
class MulticlassSessionState(BaseSessionState):
    """K-class session snapshot (votes ``0..K-1``, ``-1`` abstains).

    ``soft_labels`` and ``proxy_proba`` are ``(n, K)`` row-stochastic
    matrices; the hard ``proxy_labels`` view is derived by argmax.
    """

    proxy_proba: np.ndarray = None
    selected: set[int] = field(default_factory=set)
    # Deterministic hand-built-state default; see SessionState.rng.
    rng: np.random.Generator = field(default_factory=lambda: ensure_rng(0))
    cache: dict | None = None
    #: See SessionState.proxy_provider / BaseSessionState.resolve_proxy.
    proxy_provider: object = None

    def __post_init__(self) -> None:
        if self.proxy_proba is None:
            raise TypeError("MulticlassSessionState requires proxy_proba")

    @property
    def convention(self) -> VoteConvention:
        return multiclass_convention(self.family.n_classes)

    @property
    def n_classes(self) -> int:
        return self.family.n_classes

    @property
    def proxy_labels(self) -> np.ndarray:
        """Hard class predictions derived from the graded proxy."""
        return np.argmax(self.proxy_proba, axis=1).astype(int)


class DevDataSelector(ABC):
    """Strategy choosing the next development example (paper Sec. 4.2)."""

    name: str = "abstract"

    @abstractmethod
    def select(self, state: BaseSessionState) -> int | None:
        """Return the chosen train index, or ``None`` if nothing is eligible."""

    @staticmethod
    def _argmax_with_ties(
        scores: np.ndarray, mask: np.ndarray, rng: np.random.Generator
    ) -> int | None:
        """Argmax over masked scores with uniform random tie-breaking."""
        if not mask.any():
            return None
        masked = np.where(mask, scores, -np.inf)
        best = masked.max()
        if not np.isfinite(best):
            eligible = np.flatnonzero(mask)
            return int(rng.choice(eligible))
        ties = np.flatnonzero(masked >= best - 1e-12)
        return int(rng.choice(ties))


class RandomSelector(DevDataSelector):
    """Uniform sampling from the eligible unlabeled pool.

    The prevailing practice (Snorkel's implicit selector).
    """

    name = "random"

    def select(self, state: BaseSessionState) -> int | None:
        mask = state.candidate_mask()
        if not mask.any():
            return None
        eligible = np.flatnonzero(mask)
        return int(state.rng.choice(eligible))


class AbstainSelector(DevDataSelector):
    """Selects the example with the most abstaining LFs ([9])."""

    name = "abstain"

    def select(self, state: BaseSessionState) -> int | None:
        mask = state.candidate_mask()
        if state.L_train.shape[1] == 0:
            # No LFs yet: every example ties at zero votes; fall back to random.
            return RandomSelector().select(state)
        scores = state.convention.abstain_counts(state.L_train).astype(float)
        return self._argmax_with_ties(scores, mask, state.rng)


class DisagreeSelector(DevDataSelector):
    """Selects the example where the current LFs conflict the most ([9])."""

    name = "disagree"

    def select(self, state: BaseSessionState) -> int | None:
        mask = state.candidate_mask()
        if state.L_train.shape[1] == 0:
            return RandomSelector().select(state)
        scores = state.convention.conflict_counts(state.L_train).astype(float)
        if scores.max() <= 0:
            # No conflicts anywhere yet: disagreement is uninformative;
            # degrade gracefully to random (matching [9]'s behaviour).
            return RandomSelector().select(state)
        return self._argmax_with_ties(scores, mask, state.rng)


class UncertaintySelector(DevDataSelector):
    """Pick the example with the highest label-model posterior entropy.

    Classic uncertainty sampling read off the label model (not the end
    model) — an intermediate baseline between Abstain/Disagree and SEU.
    """

    name = "uncertainty"

    def select(self, state: BaseSessionState) -> int | None:
        mask = state.candidate_mask()
        if state.L_train.shape[1] == 0:
            return RandomSelector().select(state)
        return self._argmax_with_ties(np.asarray(state.entropies, float), mask, state.rng)


BASIC_SELECTORS = {
    "random": RandomSelector,
    "abstain": AbstainSelector,
    "disagree": DisagreeSelector,
    "uncertainty": UncertaintySelector,
}


def make_basic_selector(name: str) -> DevDataSelector:
    """Instantiate a baseline selector by registry name."""
    try:
        cls = BASIC_SELECTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown selector {name!r}; choose from {sorted(BASIC_SELECTORS)} or 'seu'"
        ) from None
    return cls()
