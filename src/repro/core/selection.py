"""Development-data selection interface and the per-iteration session state.

Every selector sees the same :class:`SessionState` snapshot — the label
matrix, the label model's posterior/uncertainty, and the end model's
current predictions — and returns the index of the next development
example.  This is the "Development Data Selection Stage" of the IDP loop
(paper Sec. 3).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.lf import LFFamily, PrimitiveLF
from repro.data.dataset import FeaturizedDataset


@dataclass
class SessionState:
    """Snapshot of an IDP session at selection time.

    Attributes
    ----------
    dataset:
        The featurized dataset (selectors may read features/primitives but
        never ground-truth train labels).
    family:
        The primitive-LF family over the train split.
    iteration:
        Zero-based index of the upcoming interaction.
    lfs:
        LFs collected so far.
    L_train:
        ``(n_train, m)`` *unrefined* vote matrix of those LFs.
    soft_labels:
        ``(n_train,)`` current label-model posterior ``P(y=+1|L)`` (from the
        session's active pipeline — refined votes if contextualization is on).
    entropies:
        ``(n_train,)`` posterior entropies (ψ_uncertainty of Eq. 3).
    proxy_labels:
        ``(n_train,)`` ±1 end-model predictions ŷ (the ground-truth proxy of
        Sec. 4.2); prior-sampled before the first model exists.
    proxy_proba:
        ``(n_train,)`` end-model probabilities ``P(y=+1|x)`` — the *graded*
        ground-truth proxy SEU consumes.  Hard predictions collapse to a
        single class early in the loop (one-sided LF sets), zeroing an
        entire branch of the user model and locking SEU onto one polarity;
        probabilities preserve the ranking signal (see DESIGN.md).
    selected:
        Train indices already shown to the user (selectors avoid repeats).
    rng:
        Shared random generator (tie-breaking, sampling).
    cache:
        Optional dict scoped to the interval between refits: the session
        clears it on every refit, and selectors memoize refit-stable
        aggregates (SEU's ``B.T @ proxy``, utility tables, the expected
        utility vector) in it.  ``None`` (the default for hand-built
        states) disables caching entirely.
    """

    dataset: FeaturizedDataset
    family: LFFamily
    iteration: int
    lfs: list[PrimitiveLF]
    L_train: np.ndarray
    soft_labels: np.ndarray
    entropies: np.ndarray
    proxy_labels: np.ndarray
    proxy_proba: np.ndarray = None
    selected: set[int] = field(default_factory=set)
    rng: np.random.Generator = field(default_factory=np.random.default_rng)
    cache: dict | None = None

    def __post_init__(self) -> None:
        if self.proxy_proba is None:
            self.proxy_proba = (np.asarray(self.proxy_labels, dtype=float) + 1.0) / 2.0

    @property
    def B(self) -> sp.csr_matrix:
        """Train-split primitive incidence matrix."""
        return self.dataset.train.B

    @property
    def n_train(self) -> int:
        return self.dataset.train.n

    def candidate_mask(self) -> np.ndarray:
        """Examples still eligible for selection.

        Excludes previously-selected dev points and examples containing no
        primitives (no LF can be written from them).
        """
        has_primitive = self.family.examples_with_primitives()
        if has_primitive.shape[0] != self.n_train:  # family built on another split
            has_primitive = np.asarray(self.B.sum(axis=1)).ravel() > 0
        mask = has_primitive.copy()
        if self.selected:
            mask[list(self.selected)] = False
        return mask


class DevDataSelector(ABC):
    """Strategy choosing the next development example (paper Sec. 4.2)."""

    name: str = "abstract"

    @abstractmethod
    def select(self, state: SessionState) -> int | None:
        """Return the chosen train index, or ``None`` if nothing is eligible."""

    @staticmethod
    def _argmax_with_ties(scores: np.ndarray, mask: np.ndarray, rng: np.random.Generator) -> int | None:
        """Argmax over masked scores with uniform random tie-breaking."""
        if not mask.any():
            return None
        masked = np.where(mask, scores, -np.inf)
        best = masked.max()
        if not np.isfinite(best):
            eligible = np.flatnonzero(mask)
            return int(rng.choice(eligible))
        ties = np.flatnonzero(masked >= best - 1e-12)
        return int(rng.choice(ties))
