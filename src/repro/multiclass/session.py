"""The multiclass IDP session engine.

Mirrors :class:`repro.core.session.DataProgrammingSession` for K classes:
select one development example, obtain one multiclass LF from the
(simulated) user, optionally contextualize the collected LFs, then refit
the label model and the softmax end model.  Reuses the binary package's
:class:`~repro.core.lineage.LineageStore` unchanged — lineage is about
*where* an LF came from, not what it votes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable

import numpy as np

from repro.core.lineage import LineageStore
from repro.endmodel.softmax import SoftLabelSoftmaxRegression
from repro.multiclass.base import MultiClassLabelModel, posterior_entropy_mc
from repro.multiclass.contextualizer import MCContextualizer, MCPercentileTuner
from repro.multiclass.data import MCFeaturizedDataset
from repro.multiclass.dawid_skene import MCDawidSkeneModel
from repro.multiclass.lf import MultiClassLF, MultiClassLFFamily
from repro.multiclass.matrix import MC_ABSTAIN, mc_coverage_mask
from repro.multiclass.selection import MCDevDataSelector, MCSessionState
from repro.utils.rng import ensure_rng


class MCLFDeveloper(ABC):
    """The user in the loop: turns a development example into a K-class LF."""

    @abstractmethod
    def create_lf(self, dev_index: int, state: MCSessionState) -> MultiClassLF | None:
        """Return a new LF developed from ``dev_index``, or ``None``.

        ``None`` models a user unable to extract a (sufficiently accurate,
        non-duplicate) heuristic; the iteration is still consumed.
        """


class MultiClassSession:
    """The end-to-end K-class DP pipeline with pluggable IDP components.

    Parameters
    ----------
    dataset:
        Multiclass featurized dataset.
    selector:
        Development-data selection strategy
        (:class:`~repro.multiclass.selection.MCDevDataSelector`).
    user:
        The :class:`MCLFDeveloper` producing LFs from selected examples.
    label_model_factory:
        Zero-argument callable returning a fresh
        :class:`~repro.multiclass.base.MultiClassLabelModel`; defaults to
        the abstain-aware Dawid–Skene model with the dataset's priors.
    end_model:
        Soft-label classifier; defaults to softmax regression.
    contextualizer:
        Optional :class:`~repro.multiclass.contextualizer.MCContextualizer`;
        ``None`` gives the standard (uncontextualized) pipeline.
    percentile_tuner:
        Optional :class:`~repro.multiclass.contextualizer.MCPercentileTuner`
        re-tuning the refinement percentile on validation accuracy.
    tune_every:
        Cadence of percentile re-tuning.
    seed:
        Seed for all session randomness.
    """

    def __init__(
        self,
        dataset: MCFeaturizedDataset,
        selector: MCDevDataSelector,
        user: MCLFDeveloper,
        label_model_factory: Callable[[], MultiClassLabelModel] | None = None,
        end_model: SoftLabelSoftmaxRegression | None = None,
        contextualizer: MCContextualizer | None = None,
        percentile_tuner: MCPercentileTuner | None = None,
        tune_every: int = 5,
        seed=None,
    ) -> None:
        self.dataset = dataset
        self.rng = ensure_rng(seed)
        self.selector = selector
        self.user = user
        K = dataset.n_classes
        if label_model_factory is None:
            priors = dataset.class_priors

            def label_model_factory() -> MultiClassLabelModel:
                return MCDawidSkeneModel(n_classes=K, class_priors=priors)

        self.label_model_factory = label_model_factory
        self.end_model = (
            end_model if end_model is not None else SoftLabelSoftmaxRegression(n_classes=K)
        )
        self.contextualizer = contextualizer
        self.percentile_tuner = percentile_tuner
        if tune_every < 1:
            raise ValueError(f"tune_every must be >= 1, got {tune_every}")
        self.tune_every = tune_every

        n_train = dataset.train.n
        self.family = MultiClassLFFamily(dataset.primitive_names, dataset.train.B, K)
        self.lineage = LineageStore(dataset)
        self.iteration = 0
        self.selected: set[int] = set()
        self.L_train = np.full((n_train, 0), MC_ABSTAIN, dtype=np.int8)
        self.L_valid = np.full((dataset.valid.n, 0), MC_ABSTAIN, dtype=np.int8)
        self.soft_labels = np.tile(dataset.class_priors, (n_train, 1))
        self.entropies = posterior_entropy_mc(self.soft_labels)
        self.selection_soft_labels: np.ndarray | None = None
        self.selection_entropies: np.ndarray | None = None
        self.proxy_proba = np.tile(dataset.class_priors, (n_train, 1))
        self.label_model_: MultiClassLabelModel | None = None
        self._end_model_fitted = False
        self.active_percentile_: float | None = (
            contextualizer.percentile if contextualizer is not None else None
        )

    # ------------------------------------------------------------------ #
    # IDP loop
    # ------------------------------------------------------------------ #
    @property
    def lfs(self) -> list[MultiClassLF]:
        return self.lineage.lfs

    def build_state(self) -> MCSessionState:
        """Snapshot the session for selectors and the user."""
        return MCSessionState(
            dataset=self.dataset,
            family=self.family,
            iteration=self.iteration,
            lfs=self.lfs,
            L_train=self.L_train,
            soft_labels=(
                self.selection_soft_labels
                if self.selection_soft_labels is not None
                else self.soft_labels
            ),
            entropies=(
                self.selection_entropies
                if self.selection_entropies is not None
                else self.entropies
            ),
            proxy_proba=self.proxy_proba,
            selected=self.selected,
            rng=self.rng,
        )

    def step(self) -> None:
        """One IDP iteration: select → develop → contextualize → learn."""
        state = self.build_state()
        dev_index = self.selector.select(state)
        self.iteration += 1
        if dev_index is None:
            return
        self.selected.add(dev_index)
        lf = self.user.create_lf(dev_index, state)
        if lf is None:
            return
        self.lineage.add(lf, dev_index, self.iteration - 1)
        self.L_train = np.column_stack(
            [self.L_train, lf.apply(self.dataset.train.B)]
        ).astype(np.int8)
        self.L_valid = np.column_stack(
            [self.L_valid, lf.apply(self.dataset.valid.B)]
        ).astype(np.int8)
        self._refit()

    def run(self, n_iterations: int) -> "MultiClassSession":
        """Run ``n_iterations`` steps; returns self for chaining."""
        for _ in range(n_iterations):
            self.step()
        return self

    # ------------------------------------------------------------------ #
    # learning stage
    # ------------------------------------------------------------------ #
    def _refit(self) -> None:
        L_effective = self._effective_label_matrix()
        model = self.label_model_factory()
        model.fit(L_effective)
        self.label_model_ = model
        self.soft_labels = model.predict_proba(L_effective)
        self.entropies = posterior_entropy_mc(self.soft_labels)
        self._refit_selection_view(L_effective)
        covered = mc_coverage_mask(L_effective)
        if covered.any():
            X = self.dataset.train.X
            self.end_model.fit(X[np.flatnonzero(covered)], self.soft_labels[covered])
            self._end_model_fitted = True
            self.proxy_proba = self.end_model.predict_proba(X)

    def _effective_label_matrix(self) -> np.ndarray:
        if self.contextualizer is None:
            return self.L_train
        if self.percentile_tuner is not None and self._should_tune():
            self.active_percentile_ = self.percentile_tuner.best_percentile(
                self.contextualizer,
                self.L_train,
                self.L_valid,
                self.lineage,
                self.label_model_factory,
                self.dataset.valid.y,
            )
        return self.contextualizer.refine(
            self.L_train, self.lineage, "train", percentile=self.active_percentile_
        )

    def _refit_selection_view(self, L_effective: np.ndarray) -> None:
        """Posterior over the *unrefined* votes, for selectors only.

        Same rationale as the binary session: refinement erases the
        conflict entropy exactly where uncertainty-seeking selectors should
        look, so selectors read the raw-vote posterior while learning keeps
        the refined one.
        """
        if self.contextualizer is None or L_effective is self.L_train:
            self.selection_soft_labels = None
            self.selection_entropies = None
            return
        raw_model = self.label_model_factory()
        raw_model.fit(self.L_train)
        self.selection_soft_labels = raw_model.predict_proba(self.L_train)
        self.selection_entropies = posterior_entropy_mc(self.selection_soft_labels)

    def _should_tune(self) -> bool:
        m = len(self.lineage)
        return m >= 1 and (m <= 6 or m % self.tune_every == 0)

    # ------------------------------------------------------------------ #
    # prediction / evaluation
    # ------------------------------------------------------------------ #
    def predict_test(self) -> np.ndarray:
        """Hard class predictions on the test split (prior argmax pre-model)."""
        if not self._end_model_fitted:
            majority = int(np.argmax(self.dataset.class_priors))
            return np.full(self.dataset.test.n, majority, dtype=int)
        return self.end_model.predict(self.dataset.test.X)

    def predict_proba_test(self) -> np.ndarray:
        """``(n_test, K)`` class probabilities on the test split."""
        if not self._end_model_fitted:
            return np.tile(self.dataset.class_priors, (self.dataset.test.n, 1))
        return self.end_model.predict_proba(self.dataset.test.X)

    def test_score(self) -> float:
        """Accuracy on the test split."""
        return float((self.predict_test() == self.dataset.test.y).mean())
