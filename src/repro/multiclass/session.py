"""The multiclass IDP session engine.

A thin K-class adapter over the shared
:class:`~repro.core.engine.IncrementalSessionEngine`: the select → develop
→ contextualize → learn loop, the append-only vote storage, the
warm-started refits, and the selector-cache plumbing are all inherited;
this module only binds the K-class
:class:`~repro.core.convention.VoteConvention` — which carries the
``-1``-abstain vote alphabet, the Dawid–Skene default aggregator, and the
softmax end model — and supplies the ``(n, K)`` proxy plumbing.
Reuses the binary package's :class:`~repro.core.lineage.LineageStore`
unchanged — lineage is about *where* an LF came from, not what it votes.
The two-phase command protocol (``propose``/``submit``/``decline``,
ENGINE.md §6) is inherited from the engine as well, so multiclass
sessions are served over :mod:`repro.serve` exactly like binary ones.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.convention import multiclass_convention
from repro.core.engine import IncrementalSessionEngine
from repro.core.session import LFDeveloper
from repro.endmodel.softmax import SoftLabelSoftmaxRegression
from repro.multiclass.base import MultiClassLabelModel, posterior_entropy_mc
from repro.multiclass.contextualizer import MCContextualizer, MCPercentileTuner
from repro.multiclass.data import MCFeaturizedDataset
from repro.multiclass.lf import MultiClassLFFamily
from repro.multiclass.matrix import MC_ABSTAIN
from repro.multiclass.selection import MCDevDataSelector, MCSessionState
from repro.utils.rng import ensure_rng

#: The user in the loop, turning a development example into a K-class LF.
#: The contract is identical to the binary one (``create_lf(dev_index,
#: state) -> LF | None``), so this is the same ABC — kept under its
#: historical name for import and ``isinstance`` compatibility.
MCLFDeveloper = LFDeveloper


class MultiClassSession(IncrementalSessionEngine):
    """The end-to-end K-class DP pipeline with pluggable IDP components.

    Parameters
    ----------
    dataset:
        Multiclass featurized dataset.
    selector:
        Development-data selection strategy
        (:class:`~repro.multiclass.selection.MCDevDataSelector`).
    user:
        The :class:`MCLFDeveloper` producing LFs from selected examples.
    label_model_factory:
        Zero-argument callable returning a fresh
        :class:`~repro.multiclass.base.MultiClassLabelModel`; defaults to
        the abstain-aware Dawid–Skene model with the dataset's priors.
    end_model:
        Soft-label classifier; defaults to softmax regression.
    contextualizer:
        Optional :class:`~repro.multiclass.contextualizer.MCContextualizer`;
        ``None`` gives the standard (uncontextualized) pipeline.
    percentile_tuner:
        Optional :class:`~repro.multiclass.contextualizer.MCPercentileTuner`
        re-tuning the refinement percentile on validation accuracy.
    tune_every:
        Cadence of percentile re-tuning.
    warm_start:
        Warm-start the label model from the previous refit's posterior
        (see :mod:`repro.core.engine`).  ``False`` forces from-scratch
        refits — the original (seed) behaviour.
    full_refit_every:
        Force a cold label-model refit every this many refits — the
        incremental path's correctness backstop.  ``"auto"`` keeps the
        default integer base but skips a due backstop when the warm model
        has drifted less than ``AUTO_DRIFT_TOL`` from the last cold
        anchor (at most ``AUTO_MAX_SKIPS`` consecutive skips; see
        ENGINE.md §10).
    warm_after:
        Keep refits cold until this many LFs exist — the low-LF regime is
        both the cheapest to refit from scratch and the most multimodal
        to warm-start through (see :mod:`repro.core.engine`).
    warm_label_iter / warm_end_iter:
        Inner-iteration caps for warm label-model (EM) and end-model
        (L-BFGS) refits; full refits are never capped.
    warm_min_train:
        Keep the exact from-scratch semantics whenever the training split
        is smaller than this — refit cost scales with ``n_train``, so
        small sessions gain nothing from incrementality.
    lazy_proxy:
        On warm refits, defer the end-model prediction of the
        ground-truth proxy to the first selector read (bit-identical
        values for selectors that read it; no prediction at all for
        selectors that never do); cold refits always refresh eagerly.
        ``False`` restores the eager refresh every refit.
    warm_end_mode:
        How warm (between-backstop) end-model refits run: ``"minibatch"``
        streams them through the softmax end model's Adam continuation fed
        by the engine's grow-only covered-feature buffer; ``"lbfgs"`` is
        the defeat switch keeping the capped warm L-BFGS fit.  Cold
        backstops are bit-identical full fits either way (ENGINE.md §7).
    seed:
        Seed for all session randomness.
    """

    abstain_value = MC_ABSTAIN

    def __init__(
        self,
        dataset: MCFeaturizedDataset,
        selector: MCDevDataSelector,
        user: MCLFDeveloper,
        label_model_factory: Callable[[], MultiClassLabelModel] | None = None,
        end_model: SoftLabelSoftmaxRegression | None = None,
        contextualizer: MCContextualizer | None = None,
        percentile_tuner: MCPercentileTuner | None = None,
        tune_every: int = 5,
        warm_start: bool = True,
        full_refit_every: int | str = 10,
        warm_after: int = 8,
        warm_label_iter: int = 3,
        warm_end_iter: int = 15,
        warm_min_train: int = 2000,
        lazy_proxy: bool = True,
        warm_end_mode: str = "minibatch",
        seed=None,
    ) -> None:
        self.dataset = dataset
        self.rng = ensure_rng(seed)
        K = dataset.n_classes
        self.convention = multiclass_convention(K)
        if label_model_factory is None:
            label_model_factory = self.convention.default_label_model_factory(dataset)
        if end_model is None:
            end_model = self.convention.default_end_model(dataset)
        self.family = MultiClassLFFamily(dataset.primitive_names, dataset.train.B, K)
        n_train = dataset.train.n
        self.soft_labels = np.tile(dataset.class_priors, (n_train, 1))
        self.entropies = posterior_entropy_mc(self.soft_labels)
        self.proxy_proba = np.tile(dataset.class_priors, (n_train, 1))
        self._init_engine(
            selector=selector,
            user=user,
            label_model_factory=label_model_factory,
            end_model=end_model,
            contextualizer=contextualizer,
            percentile_tuner=percentile_tuner,
            tune_every=tune_every,
            warm_start=warm_start,
            full_refit_every=full_refit_every,
            warm_after=warm_after,
            warm_label_iter=warm_label_iter,
            warm_end_iter=warm_end_iter,
            warm_min_train=warm_min_train,
            lazy_proxy=lazy_proxy,
            warm_end_mode=warm_end_mode,
        )

    # ------------------------------------------------------------------ #
    # engine hooks
    # ------------------------------------------------------------------ #
    def build_state(self) -> MCSessionState:
        """Snapshot the session for selectors and the user."""
        return MCSessionState(
            dataset=self.dataset,
            family=self.family,
            iteration=self.iteration,
            lfs=self.lfs,
            L_train=self.L_train,
            soft_labels=(
                self.selection_soft_labels
                if self.selection_soft_labels is not None
                else self.soft_labels
            ),
            entropies=(
                self.selection_entropies
                if self.selection_entropies is not None
                else self.entropies
            ),
            proxy_proba=self.proxy_proba,
            selected=self.selected,
            rng=self.rng,
            cache=self._selector_cache,
            proxy_provider=self._resolve_proxy,
        )

    def _update_proxy(self) -> None:
        if self._lazy_proxy_allowed():
            # Warm refit: defer the refresh to the first selector read
            # (see ENGINE.md §4).
            self._mark_proxy_stale()
        else:
            self._refresh_proxy()

    def _refresh_proxy(self) -> None:
        self.proxy_proba = self.end_model.predict_proba(self.dataset.train.X)
        self._proxy_stale = False

    # ------------------------------------------------------------------ #
    # prediction / evaluation
    # ------------------------------------------------------------------ #
    def predict_test(self) -> np.ndarray:
        """Hard class predictions on the test split (prior argmax pre-model)."""
        if not self._end_model_fitted:
            majority = int(np.argmax(self.dataset.class_priors))
            return np.full(self.dataset.test.n, majority, dtype=int)
        return self.end_model.predict(self.dataset.test.X)

    def predict_proba_test(self) -> np.ndarray:
        """``(n_test, K)`` class probabilities on the test split."""
        if not self._end_model_fitted:
            return np.tile(self.dataset.class_priors, (self.dataset.test.n, 1))
        return self.end_model.predict_proba(self.dataset.test.X)

    def test_score(self) -> float:
        """Accuracy on the test split."""
        return float((self.predict_test() == self.dataset.test.y).mean())
