"""Multiclass synthetic corpora and the featurized dataset container.

Mirrors :mod:`repro.data.synthetic` / :mod:`repro.data.dataset` for K-class
tasks.  The generator keeps the two structural phenomena the paper's
contributions exploit — cluster-local generalization and distance-decaying
LF accuracy — but with K per-class cue banks: *global* cues name their class
reliably everywhere, while *local* cues are reliable only inside their home
cluster and re-randomized (over all K classes) elsewhere.

The bundled recipe, :func:`make_topics_dataset`, is an AG-News-flavoured
4-topic classification task (world / sports / business / tech) built on the
same skeleton as the binary recipes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import Split, train_valid_test_split
from repro.data.minting import mint_words
from repro.data.wordbanks import COMMON_FILLER
from repro.text.tfidf import TfidfVectorizer
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class MCClusterSpec:
    """One latent style/category cluster of a multiclass corpus.

    Parameters
    ----------
    name:
        Human-readable cluster name.
    marker_words:
        Neutral words characteristic of this cluster (no label signal).
    local_cues:
        Per-class cue banks whose stated class holds *inside this cluster
        only*: ``local_cues[k]`` lists words cueing class ``k``.
    weight:
        Relative probability of a document being drawn from this cluster.
    """

    name: str
    marker_words: tuple[str, ...]
    local_cues: tuple[tuple[str, ...], ...] = ()
    weight: float = 1.0


@dataclass(frozen=True)
class MCCorpusSpec:
    """Full specification of a K-class synthetic corpus.

    Parameters
    ----------
    name:
        Corpus name.
    n_classes:
        The number of classes ``K``.
    clusters:
        Latent clusters; any per-cluster ``local_cues`` must have ``K``
        banks.
    global_cues:
        ``K`` banks of cue words naming each class reliably in every
        cluster.
    common_words:
        Label- and cluster-neutral filler vocabulary.
    class_priors:
        ``(K,)`` document class distribution; uniform when omitted.
    mean_doc_length / min_doc_length:
        Poisson document length (clipped below).
    p_common / p_marker / p_global / p_local:
        Per-token mixture weights of the four word sources; must sum to 1.
    global_reliability:
        Probability an emitted global cue names the document class; the
        remaining mass spreads uniformly over other classes.
    local_reliability:
        Same for home-cluster local cues.
    local_leak:
        Probability a "local" emission borrows another cluster's local cue;
        borrowed cues get a fixed random class per (word, cluster) pair —
        the accuracy-decay phenomenon.
    zipf_exponent:
        Zipf exponent of within-bank word frequencies (0 = uniform).
    """

    name: str
    n_classes: int
    clusters: tuple[MCClusterSpec, ...]
    global_cues: tuple[tuple[str, ...], ...]
    common_words: tuple[str, ...]
    class_priors: tuple[float, ...] | None = None
    mean_doc_length: float = 20.0
    min_doc_length: int = 4
    p_common: float = 0.40
    p_marker: float = 0.28
    p_global: float = 0.14
    p_local: float = 0.18
    global_reliability: float = 0.85
    local_reliability: float = 0.9
    local_leak: float = 0.25
    zipf_exponent: float = 0.6

    def __post_init__(self) -> None:
        if self.n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {self.n_classes}")
        if len(self.global_cues) != self.n_classes:
            raise ValueError(
                f"global_cues must have {self.n_classes} banks, got {len(self.global_cues)}"
            )
        if not self.clusters:
            raise ValueError("at least one cluster is required")
        for cluster in self.clusters:
            if cluster.local_cues and len(cluster.local_cues) != self.n_classes:
                raise ValueError(
                    f"cluster {cluster.name!r} local_cues must have "
                    f"{self.n_classes} banks, got {len(cluster.local_cues)}"
                )
        if self.class_priors is not None:
            if len(self.class_priors) != self.n_classes:
                raise ValueError(
                    f"class_priors must have length {self.n_classes}, "
                    f"got {len(self.class_priors)}"
                )
            if any(p <= 0 for p in self.class_priors):
                raise ValueError("class_priors must be strictly positive")
        check_positive("mean_doc_length", self.mean_doc_length)
        total = self.p_common + self.p_marker + self.p_global + self.p_local
        if not np.isclose(total, 1.0):
            raise ValueError(f"token mixture weights must sum to 1, got {total}")
        check_in_range("global_reliability", self.global_reliability, 1.0 / self.n_classes, 1.0)
        check_in_range("local_reliability", self.local_reliability, 1.0 / self.n_classes, 1.0)
        check_in_range("local_leak", self.local_leak, 0.0, 1.0)
        if self.zipf_exponent < 0:
            raise ValueError(f"zipf_exponent must be >= 0, got {self.zipf_exponent}")

    def priors_array(self) -> np.ndarray:
        """Normalized ``(K,)`` class priors."""
        if self.class_priors is None:
            return np.full(self.n_classes, 1.0 / self.n_classes)
        priors = np.asarray(self.class_priors, dtype=float)
        return priors / priors.sum()


@dataclass
class MCSyntheticCorpus:
    """A generated K-class corpus.

    ``lexicon`` maps every global (and home-polarity local) cue word to its
    class id — the multiclass analogue of the opinion lexicon consulted by
    the simulated user.
    """

    name: str
    n_classes: int
    texts: list[str]
    labels: np.ndarray  # (n,) int in {0..K-1}
    clusters: np.ndarray  # (n,) int cluster index
    cluster_names: list[str]
    lexicon: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.texts)


class MCCorpusGenerator:
    """Samples :class:`MCSyntheticCorpus` instances from an :class:`MCCorpusSpec`."""

    def __init__(self, spec: MCCorpusSpec) -> None:
        self.spec = spec
        self._cluster_weights = np.array([c.weight for c in spec.clusters], float)
        self._cluster_weights /= self._cluster_weights.sum()
        self._zipf_cache: dict[int, np.ndarray] = {}

    def _pick(self, rng: np.random.Generator, bank) -> str:
        """Sample one word from a bank under the spec's Zipf law."""
        n = len(bank)
        if n == 1:
            return str(bank[0])
        probs = self._zipf_cache.get(n)
        if probs is None:
            ranks = np.arange(1, n + 1, dtype=float)
            weights = ranks ** (-self.spec.zipf_exponent)
            probs = weights / weights.sum()
            self._zipf_cache[n] = probs
        return str(bank[int(rng.choice(n, p=probs))])

    def generate(self, n_docs: int, seed=None) -> MCSyntheticCorpus:
        """Generate ``n_docs`` documents (fully seeded)."""
        check_positive("n_docs", n_docs)
        rng = ensure_rng(seed)
        spec = self.spec
        priors = spec.priors_array()
        foreign_class = self._sample_foreign_classes(rng)
        texts: list[str] = []
        labels = np.empty(n_docs, dtype=int)
        clusters = np.empty(n_docs, dtype=int)
        for i in range(n_docs):
            c = int(rng.choice(len(spec.clusters), p=self._cluster_weights))
            y = int(rng.choice(spec.n_classes, p=priors))
            length = max(int(rng.poisson(spec.mean_doc_length)), spec.min_doc_length)
            tokens = [self._sample_token(rng, c, y, foreign_class) for _ in range(length)]
            texts.append(" ".join(tokens))
            labels[i] = y
            clusters[i] = c
        lexicon: dict[str, int] = {}
        for k, bank in enumerate(spec.global_cues):
            for word in bank:
                lexicon[word] = k
        for cluster in spec.clusters:
            for k, bank in enumerate(cluster.local_cues):
                for word in bank:
                    lexicon.setdefault(word, k)
        return MCSyntheticCorpus(
            name=spec.name,
            n_classes=spec.n_classes,
            texts=texts,
            labels=labels,
            clusters=clusters,
            cluster_names=[c.name for c in spec.clusters],
            lexicon=lexicon,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _sample_foreign_classes(self, rng: np.random.Generator) -> dict[tuple[str, int], int]:
        """Assign each local cue a fixed random class in every foreign cluster."""
        spec = self.spec
        mapping: dict[tuple[str, int], int] = {}
        for home_idx, home in enumerate(spec.clusters):
            for bank in home.local_cues:
                for word in bank:
                    for other_idx in range(len(spec.clusters)):
                        if other_idx != home_idx:
                            mapping[(word, other_idx)] = int(rng.integers(spec.n_classes))
        return mapping

    def _emit_class(self, rng: np.random.Generator, label: int, reliability: float) -> int:
        """The class a cue token names: the document class w.p. ``reliability``."""
        if rng.random() < reliability:
            return label
        others = [k for k in range(self.spec.n_classes) if k != label]
        return int(rng.choice(others))

    def _sample_token(
        self,
        rng: np.random.Generator,
        cluster_idx: int,
        label: int,
        foreign_class: dict[tuple[str, int], int],
    ) -> str:
        spec = self.spec
        cluster = spec.clusters[cluster_idx]
        roll = rng.random()
        if roll < spec.p_common:
            return self._pick(rng, spec.common_words)
        roll -= spec.p_common
        if roll < spec.p_marker and cluster.marker_words:
            return self._pick(rng, cluster.marker_words)
        roll -= spec.p_marker
        if roll < spec.p_global:
            emitted = self._emit_class(rng, label, spec.global_reliability)
            return self._pick(rng, spec.global_cues[emitted])
        return self._sample_local_cue(rng, cluster_idx, label, foreign_class)

    def _sample_local_cue(
        self,
        rng: np.random.Generator,
        cluster_idx: int,
        label: int,
        foreign_class: dict[tuple[str, int], int],
    ) -> str:
        spec = self.spec
        cluster = spec.clusters[cluster_idx]
        borrow = rng.random() < spec.local_leak and len(spec.clusters) > 1
        if borrow:
            other_indices = [i for i in range(len(spec.clusters)) if i != cluster_idx]
            src = spec.clusters[int(rng.choice(other_indices))]
            candidates = [
                w
                for bank in src.local_cues
                for w in bank
                if foreign_class.get((w, cluster_idx)) == label
            ]
            if candidates:
                return self._pick(rng, candidates)
            # No borrowed word carries this class here; fall through to home.
        emitted = self._emit_class(rng, label, spec.local_reliability)
        if cluster.local_cues:
            return self._pick(rng, cluster.local_cues[emitted])
        return self._pick(rng, spec.global_cues[emitted])


@dataclass
class MCFeaturizedDataset:
    """A fully-prepared K-class dataset for multiclass IDP.

    Structurally parallel to :class:`repro.data.dataset.FeaturizedDataset`
    (it reuses the same :class:`~repro.data.dataset.Split` rows, so the
    binary package's :class:`~repro.core.lineage.LineageStore` works on it
    unchanged), but carries a ``(K,)`` class-prior vector instead of a
    scalar positive rate.
    """

    name: str
    n_classes: int
    metric: str
    splits: dict[str, Split]
    primitive_names: list[str]
    lexicon: dict[str, int] = field(default_factory=dict)
    class_priors: np.ndarray = None
    cluster_names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.class_priors is None:
            self.class_priors = np.full(self.n_classes, 1.0 / self.n_classes)

    @property
    def train(self) -> Split:
        return self.splits["train"]

    @property
    def valid(self) -> Split:
        return self.splits["valid"]

    @property
    def test(self) -> Split:
        return self.splits["test"]

    @property
    def n_primitives(self) -> int:
        return len(self.primitive_names)

    def primitive_id(self, token: str) -> int:
        """Index of ``token`` in the primitive domain; raises if absent."""
        try:
            return self._primitive_index[token]
        except AttributeError:
            self._primitive_index = {t: i for i, t in enumerate(self.primitive_names)}
            return self._primitive_index[token]

    def describe(self) -> str:
        """One-line statistics string."""
        sizes = {name: split.n for name, split in self.splits.items()}
        return (
            f"{self.name}: K={self.n_classes} #Train={sizes['train']} "
            f"#Valid={sizes['valid']} #Test={sizes['test']} "
            f"|Z|={self.n_primitives} metric={self.metric}"
        )


def featurize_mc_corpus(
    corpus: MCSyntheticCorpus,
    metric: str = "accuracy",
    min_df: int = 2,
    max_df_ratio: float = 0.5,
    valid_ratio: float = 0.1,
    test_ratio: float = 0.1,
    seed=None,
) -> MCFeaturizedDataset:
    """Split and featurize a K-class corpus (80/10/10, train-fitted TF-IDF).

    Mirrors :func:`repro.data.dataset.featurize_corpus`; class priors are
    estimated on the validation split with additive smoothing so every
    class keeps strictly positive mass.
    """
    if metric not in ("accuracy", "f1"):
        raise ValueError(f"metric must be 'accuracy' or 'f1', got {metric!r}")
    train_idx, valid_idx, test_idx = train_valid_test_split(
        len(corpus), valid_ratio=valid_ratio, test_ratio=test_ratio, seed=seed
    )
    index_of = {"train": train_idx, "valid": valid_idx, "test": test_idx}

    train_texts = [corpus.texts[i] for i in train_idx]
    vectorizer = TfidfVectorizer(min_df=min_df, max_df_ratio=max_df_ratio)
    vectorizer.fit(train_texts)
    primitive_names = vectorizer.vocabulary.tokens

    splits: dict[str, Split] = {}
    for split_name, idx in index_of.items():
        texts = [corpus.texts[i] for i in idx]
        X = vectorizer.transform(texts)
        B = X.copy().tocsr()
        B.data = np.ones_like(B.data)
        splits[split_name] = Split(
            texts=texts,
            X=X,
            B=B,
            y=corpus.labels[idx].astype(int),
            clusters=corpus.clusters[idx].astype(int),
        )

    valid_y = splits["valid"].y
    counts = np.bincount(valid_y, minlength=corpus.n_classes).astype(float)
    priors = (counts + 1.0) / (counts.sum() + corpus.n_classes)
    return MCFeaturizedDataset(
        name=corpus.name,
        n_classes=corpus.n_classes,
        metric=metric,
        splits=splits,
        primitive_names=primitive_names,
        lexicon=dict(corpus.lexicon),
        class_priors=priors,
        cluster_names=list(corpus.cluster_names),
    )


TOPIC_NAMES = ("world", "sports", "business", "tech")

_TOPIC_GLOBAL_CUES = (
    # world
    ("election", "minister", "treaty", "embassy", "diplomat", "parliament",
     "border", "summit", "sanctions", "ceasefire"),
    # sports
    ("championship", "tournament", "goal", "coach", "playoffs", "stadium",
     "league", "medal", "striker", "referee"),
    # business
    ("earnings", "shares", "merger", "investors", "quarterly", "revenue",
     "stocks", "acquisition", "profit", "dividend"),
    # tech
    ("software", "startup", "processor", "encryption", "browser", "server",
     "algorithm", "silicon", "developer", "cloud"),
)

_TOPIC_CLUSTERS = (
    # newswire style: terse agency copy; local cues lean world/business
    MCClusterSpec(
        name="newswire",
        marker_words=("reuters", "reported", "statement", "officials", "agency",
                      "spokesman", "sources", "confirmed", "announced", "press"),
        local_cues=(
            ("crisis", "talks", "regime"),
            ("fixture", "squad", "standings"),
            ("markets", "trading", "index"),
            ("rollout", "platform", "update"),
        ),
        weight=1.6,
    ),
    # blogs: informal commentary; local cues lean sports/tech
    MCClusterSpec(
        name="blogs",
        marker_words=("honestly", "folks", "yesterday", "basically", "opinion",
                      "post", "readers", "thread", "comments", "blogged"),
        local_cues=(
            ("protests", "borders", "leaders"),
            ("matchday", "derby", "transfer"),
            ("layoffs", "valuation", "funding"),
            ("beta", "opensource", "benchmark"),
        ),
        weight=1.0,
    ),
    # regional outlets: local-news flavour; smaller cluster
    MCClusterSpec(
        name="regional",
        marker_words=("county", "mayor", "residents", "downtown", "local",
                      "community", "council", "district", "neighborhood", "hometown"),
        local_cues=(
            ("delegation", "consulate", "visas"),
            ("varsity", "homecoming", "relay"),
            ("storefront", "payroll", "vendors"),
            ("broadband", "gadgets", "firmware"),
        ),
        weight=0.6,
    ),
)


def make_topics_spec(vocab_scale: int = 40, seed: int = 7) -> MCCorpusSpec:
    """The AG-News-flavoured 4-topic corpus spec.

    ``vocab_scale`` minted words are appended per word bank so per-LF
    coverage lands in the realistic 1–3% range (same realism knob as the
    binary recipes); curated words stay at the Zipf head.  A shared
    ``taken`` set keeps minted words unique *across* banks — a word serving
    as both a class cue and a cluster marker would blur the generator's
    semantics.
    """
    rng = ensure_rng(seed)
    taken: set[str] = set(COMMON_FILLER)
    for bank in _TOPIC_GLOBAL_CUES:
        taken.update(bank)
    for cluster in _TOPIC_CLUSTERS:
        taken.update(cluster.marker_words)
        for bank in cluster.local_cues:
            taken.update(bank)

    def _mint(n: int) -> tuple[str, ...]:
        words = mint_words(n, seed=rng, taken=taken)
        taken.update(words)
        return tuple(words)

    global_cues = tuple(
        tuple(bank) + _mint(vocab_scale) for bank in _TOPIC_GLOBAL_CUES
    )
    clusters = []
    for cluster in _TOPIC_CLUSTERS:
        markers = tuple(cluster.marker_words) + _mint(vocab_scale * 2)
        local = tuple(
            tuple(bank) + _mint(max(vocab_scale // 2, 1))
            for bank in cluster.local_cues
        )
        clusters.append(
            MCClusterSpec(
                name=cluster.name,
                marker_words=markers,
                local_cues=local,
                weight=cluster.weight,
            )
        )
    common = tuple(COMMON_FILLER) + _mint(vocab_scale * 3)
    return MCCorpusSpec(
        name="topics",
        n_classes=4,
        clusters=tuple(clusters),
        global_cues=global_cues,
        common_words=common,
        mean_doc_length=22.0,
    )


def make_topics_dataset(
    n_docs: int = 3000,
    seed: int = 0,
    vocab_scale: int = 40,
) -> MCFeaturizedDataset:
    """Generate and featurize the 4-topic multiclass benchmark dataset."""
    spec = make_topics_spec(vocab_scale=vocab_scale, seed=seed + 104729)
    corpus = MCCorpusGenerator(spec).generate(n_docs, seed=seed)
    return featurize_mc_corpus(corpus, metric="accuracy", seed=seed + 1)
