"""Multiclass selection: adapter re-exports of the cardinality-generic layer.

The session state and every baseline selector live in
:mod:`repro.core.selection`, written once against the
:class:`~repro.core.convention.VoteConvention` contract; this module binds
their historical multiclass names.  ``MCSessionState`` reads the K-class
convention (votes ``0..K-1``, ``-1`` abstains) from its LF family.
"""

from __future__ import annotations

from repro.core.selection import (
    AbstainSelector as MCAbstainSelector,
    DevDataSelector as MCDevDataSelector,
    DisagreeSelector as MCDisagreeSelector,
    MulticlassSessionState as MCSessionState,
    RandomSelector as MCRandomSelector,
    UncertaintySelector as MCUncertaintySelector,
)

__all__ = [
    "MCAbstainSelector",
    "MCDevDataSelector",
    "MCDisagreeSelector",
    "MCRandomSelector",
    "MCSessionState",
    "MCUncertaintySelector",
]
