"""Multiclass development-data selection interface and session state.

Mirrors :mod:`repro.core.selection` with K-class posteriors: selectors see
``(n, K)`` soft labels and proxy probabilities instead of the binary
``P(y = +1)`` vectors.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.multiclass.lf import MultiClassLF, MultiClassLFFamily
from repro.multiclass.matrix import MC_ABSTAIN, mc_abstain_counts, mc_conflict_counts


@dataclass
class MCSessionState:
    """Snapshot of a multiclass IDP session at selection time.

    Attributes
    ----------
    dataset:
        The multiclass featurized dataset
        (:class:`repro.multiclass.data.MCFeaturizedDataset`).
    family:
        The multiclass primitive-LF family over the train split.
    iteration:
        Zero-based index of the upcoming interaction.
    lfs:
        LFs collected so far.
    L_train:
        ``(n_train, m)`` *unrefined* vote matrix of those LFs
        (``-1`` = abstain).
    soft_labels:
        ``(n_train, K)`` current label-model posterior.
    entropies:
        ``(n_train,)`` posterior Shannon entropies (ψ of Eq. 3).
    proxy_proba:
        ``(n_train, K)`` end-model class probabilities — the graded
        ground-truth proxy SEU consumes.
    selected:
        Train indices already shown to the user.
    rng:
        Shared random generator (tie-breaking, sampling).
    cache:
        Optional refit-scoped memo dict for selector aggregates (see the
        binary :class:`~repro.core.selection.SessionState`); ``None``
        disables caching.
    """

    dataset: "MCFeaturizedDataset"  # noqa: F821 — forward ref, avoids import cycle
    family: MultiClassLFFamily
    iteration: int
    lfs: list[MultiClassLF]
    L_train: np.ndarray
    soft_labels: np.ndarray
    entropies: np.ndarray
    proxy_proba: np.ndarray
    selected: set[int] = field(default_factory=set)
    rng: np.random.Generator = field(default_factory=np.random.default_rng)
    cache: dict | None = None

    @property
    def B(self) -> sp.csr_matrix:
        """Train-split primitive incidence matrix."""
        return self.dataset.train.B

    @property
    def n_train(self) -> int:
        return self.dataset.train.n

    @property
    def n_classes(self) -> int:
        return self.family.n_classes

    @property
    def proxy_labels(self) -> np.ndarray:
        """Hard class predictions derived from the graded proxy."""
        return np.argmax(self.proxy_proba, axis=1).astype(int)

    def candidate_mask(self) -> np.ndarray:
        """Examples still eligible for selection (unseen, with primitives)."""
        has_primitive = self.family.examples_with_primitives()
        if has_primitive.shape[0] != self.n_train:  # family built on another split
            has_primitive = np.asarray(self.B.sum(axis=1)).ravel() > 0
        mask = has_primitive.copy()
        if self.selected:
            mask[list(self.selected)] = False
        return mask


class MCDevDataSelector(ABC):
    """Strategy choosing the next development example (K-class)."""

    name: str = "abstract"

    @abstractmethod
    def select(self, state: MCSessionState) -> int | None:
        """Return the chosen train index, or ``None`` if nothing is eligible."""

    @staticmethod
    def _argmax_with_ties(
        scores: np.ndarray, mask: np.ndarray, rng: np.random.Generator
    ) -> int | None:
        """Argmax over masked scores with uniform random tie-breaking."""
        if not mask.any():
            return None
        masked = np.where(mask, scores, -np.inf)
        best = masked.max()
        if not np.isfinite(best):
            eligible = np.flatnonzero(mask)
            return int(rng.choice(eligible))
        ties = np.flatnonzero(masked >= best - 1e-12)
        return int(rng.choice(ties))


class MCRandomSelector(MCDevDataSelector):
    """Uniform random selection — the Snorkel-style baseline."""

    name = "random"

    def select(self, state: MCSessionState) -> int | None:
        mask = state.candidate_mask()
        if not mask.any():
            return None
        return int(state.rng.choice(np.flatnonzero(mask)))


class MCAbstainSelector(MCDevDataSelector):
    """Pick the example on which the current LFs abstain the most [9]."""

    name = "abstain"

    def select(self, state: MCSessionState) -> int | None:
        mask = state.candidate_mask()
        if state.L_train.shape[1] == 0:
            return MCRandomSelector().select(state)
        scores = mc_abstain_counts(state.L_train).astype(float)
        return self._argmax_with_ties(scores, mask, state.rng)


class MCDisagreeSelector(MCDevDataSelector):
    """Pick the example on which the current LFs disagree the most [9]."""

    name = "disagree"

    def select(self, state: MCSessionState) -> int | None:
        mask = state.candidate_mask()
        if state.L_train.shape[1] == 0:
            return MCRandomSelector().select(state)
        scores = mc_conflict_counts(state.L_train, state.n_classes).astype(float)
        return self._argmax_with_ties(scores, mask, state.rng)


class MCUncertaintySelector(MCDevDataSelector):
    """Pick the example with the highest label-model posterior entropy.

    The multiclass analogue of classic uncertainty sampling, reading the
    label model (not the end model) — useful as an intermediate baseline
    between Abstain/Disagree and SEU.
    """

    name = "uncertainty"

    def select(self, state: MCSessionState) -> int | None:
        mask = state.candidate_mask()
        if state.L_train.shape[1] == 0:
            return MCRandomSelector().select(state)
        return self._argmax_with_ties(np.asarray(state.entropies, float), mask, state.rng)
