"""Multiclass LF contextualizer (Eq. 4 with the multiclass abstain code).

Eq. 4 is label-space agnostic — refinement only moves votes to *abstain*
outside each LF's radius — so this module is a thin re-targeting of
:class:`repro.core.contextualizer.LFContextualizer` onto the multiclass
vote encoding (``-1`` abstains instead of ``0``).  Radii and the
percentile-tuning semantics are identical; the tuner scores the posterior
argmax against validation labels.
"""

from __future__ import annotations

import numpy as np

from repro.core.lineage import LineageStore
from repro.multiclass.matrix import MC_ABSTAIN, validate_mc_label_matrix
from repro.text.distance import DISTANCE_NAMES
from repro.utils.validation import check_in_range


class MCContextualizer:
    """Radius-based refinement of multiclass LFs.

    Parameters
    ----------
    n_classes:
        The number of classes ``K`` (for vote-matrix validation).
    metric:
        ``"cosine"`` (default) or ``"euclidean"``.
    percentile:
        The radius percentile ``p``; may be overridden per call.
    """

    def __init__(
        self, n_classes: int, metric: str = "cosine", percentile: float = 75.0
    ) -> None:
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        if metric not in DISTANCE_NAMES:
            raise ValueError(f"metric must be one of {DISTANCE_NAMES}, got {metric!r}")
        check_in_range("percentile", percentile, 0.0, 100.0)
        self.n_classes = n_classes
        self.metric = metric
        self.percentile = percentile

    def radii(self, lineage: LineageStore, percentile: float | None = None) -> np.ndarray:
        """Per-LF refinement radii ``r_j`` from train-split distances."""
        p = self.percentile if percentile is None else percentile
        check_in_range("percentile", p, 0.0, 100.0)
        train_dists = lineage.distances("train", self.metric)
        if train_dists.shape[1] == 0:
            return np.zeros(0)
        return np.percentile(train_dists, p, axis=0)

    def refine(
        self,
        L: np.ndarray,
        lineage: LineageStore,
        split: str = "train",
        percentile: float | None = None,
    ) -> np.ndarray:
        """Apply Eq. 4: abstain votes outside each LF's radius."""
        L = validate_mc_label_matrix(L, self.n_classes)
        if L.shape[1] != len(lineage):
            raise ValueError(
                f"label matrix has {L.shape[1]} columns but lineage has "
                f"{len(lineage)} records"
            )
        if L.shape[1] == 0:
            return L.copy()
        radii = self.radii(lineage, percentile)
        dists = lineage.distances(split, self.metric)
        if dists.shape[0] != L.shape[0]:
            raise ValueError(
                f"distance rows ({dists.shape[0]}) do not match label matrix "
                f"rows ({L.shape[0]})"
            )
        keep = dists <= radii[None, :]
        return np.where(keep, L, MC_ABSTAIN).astype(np.int8)


class MCPercentileTuner:
    """Validation tuning of the refinement percentile (multiclass).

    For each candidate ``p``: refine the train votes, fit the label model,
    refine the validation votes with the same radii, and score the
    posterior argmax against validation ground truth.  Ties resolve toward
    the largest percentile (least refinement), mirroring the binary tuner.
    """

    def __init__(self, grid: tuple[float, ...] = (50.0, 75.0, 90.0)) -> None:
        if not grid:
            raise ValueError("grid must be non-empty")
        for p in grid:
            check_in_range("percentile", p, 0.0, 100.0)
        self.grid = tuple(grid)

    def best_percentile(
        self,
        contextualizer: MCContextualizer,
        L_train: np.ndarray,
        L_valid: np.ndarray,
        lineage: LineageStore,
        label_model_factory,
        y_valid: np.ndarray,
    ) -> float:
        """Return the grid percentile with the best validation accuracy."""
        best_p = max(self.grid)
        best_score = -np.inf
        for p in sorted(self.grid, reverse=True):
            refined_train = contextualizer.refine(L_train, lineage, "train", percentile=p)
            model = label_model_factory()
            model.fit(refined_train)
            refined_valid = contextualizer.refine(L_valid, lineage, "valid", percentile=p)
            preds = np.argmax(model.predict_proba(refined_valid), axis=1)
            score = float((preds == np.asarray(y_valid)).mean())
            if score > best_score:
                best_score = score
                best_p = p
        return best_p
