"""Multiclass LF contextualizer: thin adapters over the generic Eq. 4.

Eq. 4 is label-space agnostic — refinement only moves votes to *abstain*
outside each LF's radius — so both classes simply bind the K-class
:class:`~repro.core.convention.MulticlassVoteConvention` (``-1`` abstains,
argmax hard labels, accuracy scoring) onto the generic implementations in
:mod:`repro.core.contextualizer`.
"""

from __future__ import annotations

from repro.core.contextualizer import LFContextualizer, PercentileTuner
from repro.core.convention import multiclass_convention


class MCContextualizer(LFContextualizer):
    """Radius-based refinement of multiclass LFs.

    Parameters
    ----------
    n_classes:
        The number of classes ``K`` (for vote-matrix validation).
    metric:
        ``"cosine"`` (default) or ``"euclidean"``.
    percentile:
        The radius percentile ``p``; may be overridden per call.
    """

    def __init__(
        self, n_classes: int, metric: str = "cosine", percentile: float = 75.0
    ) -> None:
        convention = multiclass_convention(n_classes)
        super().__init__(metric=metric, percentile=percentile, convention=convention)
        self.n_classes = convention.n_classes


class MCPercentileTuner(PercentileTuner):
    """Validation tuning of the refinement percentile (multiclass).

    Scores the posterior argmax against validation accuracy; ties resolve
    toward the largest percentile (least refinement), like the binary tuner.
    """

    def __init__(self, grid: tuple[float, ...] = (50.0, 75.0, 90.0)) -> None:
        super().__init__(grid=grid, metric="accuracy")


__all__ = ["MCContextualizer", "MCPercentileTuner"]
