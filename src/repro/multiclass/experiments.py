"""Named multiclass method registry and evaluation protocol.

The K-class mirror of :mod:`repro.experiments.runners` /
:mod:`repro.experiments.protocol`: resolve a method name to a ready-to-run
:class:`~repro.multiclass.session.MultiClassSession` factory, and evaluate
it over seeds with the paper's learning-curve protocol.  The binary
protocol's :class:`~repro.experiments.protocol.LearningCurve` /
``RunResult`` containers are reused as-is — they only consume
``step()``/``test_score()``.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.experiments.protocol import RunResult, evaluate_method
from repro.multiclass.contextualizer import MCContextualizer, MCPercentileTuner
from repro.multiclass.data import MCFeaturizedDataset
from repro.multiclass.dawid_skene import MCDawidSkeneModel
from repro.multiclass.majority import MCMajorityVote
from repro.multiclass.selection import (
    MCAbstainSelector,
    MCDevDataSelector,
    MCDisagreeSelector,
    MCRandomSelector,
    MCUncertaintySelector,
)
from repro.multiclass.seu import MCSEUSelector
from repro.multiclass.session import MultiClassSession
from repro.multiclass.simulated_user import MCSimulatedUser
from repro.utils.rng import stable_hash_seed

#: Default simulated-user accuracy threshold (paper Sec. 5.1: t = 0.5).
DEFAULT_MC_USER_THRESHOLD = 0.5

_SELECTORS: dict[str, Callable[[], MCDevDataSelector]] = {
    "seu": MCSEUSelector,
    "random": MCRandomSelector,
    "abstain": MCAbstainSelector,
    "disagree": MCDisagreeSelector,
    "uncertainty": MCUncertaintySelector,
}

#: (selector, contextualize, label_model) per registry name.
_MC_METHODS: dict[str, tuple[str, bool, str]] = {
    "nemo-mc": ("seu", True, "dawid-skene"),
    "seu-mc": ("seu", False, "dawid-skene"),
    "ctx-mc": ("random", True, "dawid-skene"),
    "snorkel-mc": ("random", False, "dawid-skene"),
    "abstain-mc": ("abstain", False, "dawid-skene"),
    "disagree-mc": ("disagree", False, "dawid-skene"),
    "uncertainty-mc": ("uncertainty", False, "dawid-skene"),
    "snorkel-mc-majority": ("random", False, "majority"),
}

MC_METHOD_NAMES = tuple(_MC_METHODS)


def make_mc_label_model_factory(name: str, dataset: MCFeaturizedDataset):
    """A zero-argument factory for a named multiclass label model."""
    K = dataset.n_classes
    priors = dataset.class_priors
    if name == "dawid-skene":
        return lambda: MCDawidSkeneModel(n_classes=K, class_priors=priors)
    if name == "majority":
        return lambda: MCMajorityVote(n_classes=K, class_priors=priors)
    raise ValueError(f"unknown multiclass label model {name!r}")


def make_mc_method(
    name: str, user_threshold: float = DEFAULT_MC_USER_THRESHOLD
) -> Callable[[MCFeaturizedDataset, int], MultiClassSession]:
    """Resolve a registry name to a ``(dataset, seed) -> session`` factory.

    Recognized names: ``nemo-mc`` (SEU + contextualized), ``seu-mc``,
    ``ctx-mc``, ``snorkel-mc``, ``abstain-mc``, ``disagree-mc``,
    ``uncertainty-mc``, and ``snorkel-mc-majority`` (majority-vote
    aggregation).
    """
    try:
        selector_name, contextualize, label_model = _MC_METHODS[name]
    except KeyError:
        raise ValueError(
            f"unknown multiclass method {name!r}; choose from {sorted(_MC_METHODS)}"
        ) from None
    return _MCSessionFactory(selector_name, contextualize, label_model, user_threshold)


@dataclass
class _MCSessionFactory:
    """Picklable ``(dataset, seed) -> session`` factory for the MC registry.

    A module-level class rather than a closure so the parallel experiment
    runner can ship resolved factories to worker processes.
    """

    selector_name: str
    contextualize: bool
    label_model: str
    user_threshold: float

    def __call__(self, dataset: MCFeaturizedDataset, seed) -> MultiClassSession:
        user_seed = stable_hash_seed("mc-user", dataset.name, seed)
        user = MCSimulatedUser(
            dataset, accuracy_threshold=self.user_threshold, seed=user_seed
        )
        return MultiClassSession(
            dataset,
            _SELECTORS[self.selector_name](),
            user,
            label_model_factory=make_mc_label_model_factory(self.label_model, dataset),
            contextualizer=(
                MCContextualizer(n_classes=dataset.n_classes)
                if self.contextualize
                else None
            ),
            percentile_tuner=MCPercentileTuner() if self.contextualize else None,
            seed=seed,
        )


def evaluate_mc_method(
    method_name: str,
    dataset: MCFeaturizedDataset,
    n_iterations: int = 50,
    eval_every: int = 5,
    n_seeds: int = 3,
    base_seed: int = 0,
    user_threshold: float = DEFAULT_MC_USER_THRESHOLD,
    jobs: int = 1,
) -> RunResult:
    """Run a registry method across seeds; returns the aggregate result.

    Delegates to the generic
    :func:`~repro.experiments.protocol.evaluate_method` — same seed
    derivation, same serial/parallel (``jobs > 1``) execution — after
    resolving the name through the multiclass registry.
    """
    factory = make_mc_method(method_name, user_threshold=user_threshold)
    return evaluate_method(
        factory,
        method_name,
        dataset,
        n_iterations=n_iterations,
        eval_every=eval_every,
        n_seeds=n_seeds,
        base_seed=base_seed,
        jobs=jobs,
    )
