"""Multiclass majority vote — the simplest multiclass aggregator.

The posterior of each covered example is its (Laplace-smoothed) per-class
vote share; uncovered examples fall back to the class priors, matching the
binary package's convention that abstains carry no evidence.
"""

from __future__ import annotations

import numpy as np

from repro.multiclass.base import MultiClassLabelModel
from repro.multiclass.matrix import mc_vote_counts


class MCMajorityVote(MultiClassLabelModel):
    """Smoothed per-class vote-share posterior.

    Parameters
    ----------
    n_classes:
        The number of classes ``K``.
    class_priors:
        ``(K,)`` prior used for uncovered examples and as the smoothing
        direction; uniform when omitted.
    smoothing:
        Pseudo-votes added per class, distributed according to the priors.
        With ``smoothing > 0`` a 1-vote example does not get a degenerate
        one-hot posterior — the label-model entropy the selectors consume
        stays informative.
    """

    def __init__(
        self,
        n_classes: int,
        class_priors: np.ndarray | None = None,
        smoothing: float = 1.0,
    ) -> None:
        super().__init__(n_classes, class_priors)
        if smoothing < 0:
            raise ValueError(f"smoothing must be >= 0, got {smoothing}")
        self.smoothing = smoothing

    def fit(self, L: np.ndarray) -> "MCMajorityVote":
        """Majority vote has no parameters; validates the matrix only."""
        self._validated(L)
        return self

    def predict_proba(self, L: np.ndarray) -> np.ndarray:
        L = self._validated(L)
        n = L.shape[0]
        if L.shape[1] == 0:
            return np.tile(self.class_priors, (n, 1))
        counts = mc_vote_counts(L, self.n_classes)
        total = counts.sum(axis=1, keepdims=True)
        smoothed = counts + self.smoothing * self.class_priors[None, :]
        proba = smoothed / smoothed.sum(axis=1, keepdims=True)
        uncovered = (total == 0).ravel()
        proba[uncovered] = self.class_priors
        return proba
