"""Multiclass Select-by-Expected-Utility (Eq. 1 generalized to K classes).

The expectation decomposes per class exactly as in the binary package:

    E[Ψ | x] = Σ_k P(k) · Σ_{z ∈ x} w_k(z)·Ψ(λ_{z,k}) / Σ_{z ∈ x} w_k(z)

with pick weights ``w_k`` from the multiclass user model and utilities from
the multiclass Ψ — one pair of sparse mat-vecs per class.
"""

from __future__ import annotations

import numpy as np

from repro.multiclass.selection import MCDevDataSelector, MCSessionState
from repro.multiclass.user_model import MCUserModel, make_mc_user_model
from repro.multiclass.utility import MCLFUtility, make_mc_utility


class MCSEUSelector(MCDevDataSelector):
    """The Nemo selector, K-class edition.

    Parameters
    ----------
    user_model:
        An :class:`~repro.multiclass.user_model.MCUserModel` instance or
        registry name (``"accuracy"``, ``"uniform"``, ``"thresholded"``).
    utility:
        An :class:`~repro.multiclass.utility.MCLFUtility` instance or
        registry name (``"full"`` plus the two ablations).
    warmup:
        Select uniformly at random until at least this many LFs exist *and*
        at least two distinct classes are represented — the same cold-start
        treatment as the binary selector (expected utilities are meaningless
        before the end model carries signal).
    min_classes:
        How many distinct LF classes must be present before leaving the
        cold-start phase.  Two suffices to break the one-sided degeneracy;
        raising it toward ``K`` delays SEU until broader class coverage.
    """

    name = "seu"

    def __init__(
        self,
        user_model: MCUserModel | str = "accuracy",
        utility: MCLFUtility | str = "full",
        warmup: int = 3,
        min_classes: int = 2,
    ) -> None:
        self.user_model = (
            make_mc_user_model(user_model) if isinstance(user_model, str) else user_model
        )
        self.utility = make_mc_utility(utility) if isinstance(utility, str) else utility
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        if min_classes < 1:
            raise ValueError(f"min_classes must be >= 1, got {min_classes}")
        self.warmup = warmup
        self.min_classes = min_classes

    def select(self, state: MCSessionState) -> int | None:
        mask = state.candidate_mask()
        if not mask.any():
            return None
        if self._in_cold_start(state):
            return int(state.rng.choice(np.flatnonzero(mask)))
        scores = self.expected_utilities(state)
        return self._argmax_with_ties(scores, mask, state.rng)

    def _in_cold_start(self, state: MCSessionState) -> bool:
        if len(state.lfs) < self.warmup:
            return True
        classes = {lf.label for lf in state.lfs}
        return len(classes) < min(self.min_classes, state.n_classes)

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #
    def expected_utilities(self, state: MCSessionState) -> np.ndarray:
        """``E_{P(λ|x)}[Ψ_t(λ)]`` for every train example, shape ``(n,)``.

        Memoized in the refit-scoped ``state.cache`` when one is provided —
        see the binary selector: every input changes only on refit.
        """
        cache = getattr(state, "cache", None)
        cache_key = ("seu_expected", self.user_model.name, self.utility.name)
        if cache is not None and cache_key in cache:
            return cache[cache_key]
        B = state.B
        acc = state.family.empirical_class_mass(state.proxy_proba)  # (|Z|, K)
        weights = self.user_model.pick_weights(acc)  # (|Z|, K)
        utils = self.utility.scores(B, state.entropies, state.proxy_proba)  # (|Z|, K)
        priors = state.dataset.class_priors
        expected = np.zeros(state.n_train)
        for k in range(state.n_classes):
            numerator = np.asarray(B @ (weights[:, k] * utils[:, k])).ravel()
            denominator = np.asarray(B @ weights[:, k]).ravel()
            contribution = np.divide(
                numerator,
                denominator,
                out=np.zeros_like(numerator),
                where=denominator > 1e-12,
            )
            expected += priors[k] * contribution
        if cache is not None:
            cache[cache_key] = expected
        return expected

    def expected_utility_of(self, example_index: int, state: MCSessionState) -> float:
        """Scalar expected utility of one example (reference path for tests)."""
        family = state.family
        primitives = family.primitives_in(example_index)
        if primitives.size == 0:
            return 0.0
        acc = family.empirical_class_mass(state.proxy_proba)
        total = 0.0
        for label in range(state.n_classes):
            for pid in primitives:
                lf = family.make(int(pid), label)
                prob = self.user_model.probability(
                    lf, example_index, family, acc, state.dataset.class_priors
                )
                if prob > 0:
                    total += prob * self.utility.score_lf(
                        lf, state.B, state.entropies, state.proxy_proba
                    )
        return total
