"""Multiclass SEU: adapter re-export of the cardinality-generic selector.

Eq. 1's expectation decomposes per class exactly as in the binary package
— one pair of sparse mat-vecs per label column — so
:class:`~repro.core.seu.SEUSelector` runs both cardinalities unchanged;
it reads the label alphabet, accuracy table, and prior vector from the
session state's :class:`~repro.core.convention.VoteConvention`.  The
``min_classes`` cold-start knob (how many distinct LF classes must exist
before SEU trusts the end-model proxy) is part of the generic selector.
"""

from __future__ import annotations

from repro.core.seu import SEUSelector as MCSEUSelector

__all__ = ["MCSEUSelector"]
