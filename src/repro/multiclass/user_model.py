"""Multiclass user models: P(λ_{z,k} | x) for K-class LF development.

The chain-rule decomposition of Eq. 2 carries over directly: the user first
determines the class ``k`` of the development example (modeled by the class
prior ``P(y = k)``), then picks a ``k``-indicative primitive contained in it
with probability proportional to the estimated accuracy of ``λ_{z,k}``:

    P(λ_{z,k} | x) = P(k) · acc(λ_{z,k}) / Σ_{z' in x} acc(λ_{z',k})

The accuracy table is the ``(|Z|, K)`` class-mass matrix from
:meth:`repro.multiclass.lf.MultiClassLFFamily.empirical_class_mass`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.multiclass.lf import MultiClassLF, MultiClassLFFamily


class MCUserModel(ABC):
    """Assigns pick weights to candidate LFs; SEU normalizes per example.

    The vectorized interface maps the ``(|Z|, K)`` accuracy table to a
    ``(|Z|, K)`` weight table; only per-example ratios within a class
    column matter (Eq. 2's denominator).
    """

    name: str = "abstract"

    @abstractmethod
    def pick_weights(self, acc: np.ndarray) -> np.ndarray:
        """Return ``(|Z|, K)`` pick weights from the accuracy table."""

    def probability(
        self,
        lf: MultiClassLF,
        example_index: int,
        family: MultiClassLFFamily,
        acc: np.ndarray,
        class_priors: np.ndarray,
    ) -> float:
        """Exact ``P(λ | x)`` for one LF and example (reference for tests)."""
        primitives = family.primitives_in(example_index)
        if lf.primitive_id not in primitives:
            return 0.0
        weights = self.pick_weights(acc)[:, lf.label]
        denom = float(weights[primitives].sum())
        if denom <= 0:
            return 0.0
        return float(class_priors[lf.label]) * float(weights[lf.primitive_id]) / denom


class MCAccuracyWeightedUserModel(MCUserModel):
    """Eq. 2 generalized: pick probability ∝ estimated LF accuracy."""

    name = "accuracy"

    def pick_weights(self, acc: np.ndarray) -> np.ndarray:
        return np.asarray(acc, dtype=float).copy()


class MCUniformUserModel(MCUserModel):
    """Table-6-style ablation: all candidate primitives equally likely."""

    name = "uniform"

    def pick_weights(self, acc: np.ndarray) -> np.ndarray:
        return np.ones_like(np.asarray(acc, dtype=float))


class MCThresholdedUserModel(MCUserModel):
    """Eq. 6 generalized: zero out worse-than-chance LFs.

    Binary "worse than random" (acc ≤ 0.5) becomes ``acc ≤ 1/K`` — an LF
    whose vote is no better than a uniform guess carries no pick weight.
    """

    name = "thresholded"

    def __init__(self, threshold: float | None = None) -> None:
        if threshold is not None and not 0.0 <= threshold < 1.0:
            raise ValueError(f"threshold must be in [0, 1), got {threshold}")
        self.threshold = threshold

    def pick_weights(self, acc: np.ndarray) -> np.ndarray:
        acc = np.asarray(acc, dtype=float)
        threshold = self.threshold if self.threshold is not None else 1.0 / acc.shape[1]
        return np.where(acc > threshold, acc, 0.0)


MC_USER_MODELS = {
    "accuracy": MCAccuracyWeightedUserModel,
    "uniform": MCUniformUserModel,
    "thresholded": MCThresholdedUserModel,
}


def make_mc_user_model(name: str, **kwargs) -> MCUserModel:
    """Instantiate a registered multiclass user model by name."""
    try:
        cls = MC_USER_MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown user model {name!r}; choose from {sorted(MC_USER_MODELS)}"
        ) from None
    return cls(**kwargs)
