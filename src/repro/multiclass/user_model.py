"""Multiclass user models: adapter re-exports of the generic implementations.

The chain-rule decomposition of Eq. 2 carries over directly to K classes —
``P(λ_{z,k} | x) = P(k) · acc(λ_{z,k}) / Σ_{z' in x} acc(λ_{z',k})`` — so
the models in :mod:`repro.core.user_model` operate on ``(|Z|, K)`` accuracy
tables natively (the binary pipeline feeds them the same tables with
columns ``(+1, −1)``).  This module binds their historical MC names.
"""

from __future__ import annotations

from repro.core.user_model import (
    AccuracyWeightedUserModel as MCAccuracyWeightedUserModel,
    ThresholdedUserModel as MCThresholdedUserModel,
    UniformUserModel as MCUniformUserModel,
    UserModel as MCUserModel,
)

MC_USER_MODELS = {
    "accuracy": MCAccuracyWeightedUserModel,
    "uniform": MCUniformUserModel,
    "thresholded": MCThresholdedUserModel,
}


def make_mc_user_model(name: str, **kwargs) -> MCUserModel:
    """Instantiate a registered multiclass user model by name."""
    try:
        cls = MC_USER_MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown user model {name!r}; choose from {sorted(MC_USER_MODELS)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "MCAccuracyWeightedUserModel",
    "MCThresholdedUserModel",
    "MCUniformUserModel",
    "MCUserModel",
    "MC_USER_MODELS",
    "make_mc_user_model",
]
