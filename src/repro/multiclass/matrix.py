"""Multiclass label-matrix construction and diagnostics.

The multiclass vote matrix follows the standard convention of the
weak-supervision literature: ``L[i, j] ∈ {-1, 0, ..., K-1}`` with
``MC_ABSTAIN = -1`` meaning *abstain* and every other value naming a class.
This differs from the binary package's paper-native ``{-1, 0, +1}``
encoding (where 0 abstains); the two conventions never mix — binary
matrices flow through :mod:`repro.labelmodel`, multiclass ones through
this subpackage.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.labelmodel.matrix import column_nonzero_rows

MC_ABSTAIN = -1


def validate_mc_label_matrix(L: np.ndarray, n_classes: int) -> np.ndarray:
    """Check that ``L`` is 2-D with entries in {-1, 0, ..., K-1}; return int8.

    Parameters
    ----------
    L:
        Candidate vote matrix.
    n_classes:
        The number of classes ``K``; votes must be below this value.
    """
    if n_classes < 2:
        raise ValueError(f"n_classes must be >= 2, got {n_classes}")
    arr = np.asarray(L)
    if arr.ndim != 2:
        raise ValueError(f"label matrix must be 2-D, got shape {arr.shape}")
    values = np.unique(arr)
    bad = values[(values < MC_ABSTAIN) | (values >= n_classes)]
    if bad.size:
        raise ValueError(
            f"label matrix entries must be in {{-1, 0, ..., {n_classes - 1}}}, "
            f"found {sorted(bad.tolist())}"
        )
    return arr.astype(np.int8)


def validate_mc_labels(name: str, y: np.ndarray, n_classes: int) -> np.ndarray:
    """Validate a ground-truth label vector in {0, ..., K-1} (no abstains)."""
    arr = np.asarray(y)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    values = np.unique(arr)
    bad = values[(values < 0) | (values >= n_classes)]
    if bad.size:
        raise ValueError(
            f"{name} must contain classes in [0, {n_classes}), found {sorted(bad.tolist())}"
        )
    return arr.astype(int)


def apply_mc_lfs(lfs, B: sp.csr_matrix) -> np.ndarray:
    """Apply multiclass primitive LFs to a primitive-incidence matrix.

    Parameters
    ----------
    lfs:
        Iterable of objects with ``primitive_id`` and ``label`` (class id)
        attributes — see :class:`repro.multiclass.lf.MultiClassLF`.
    B:
        Binary ``(n, |Z|)`` incidence matrix.

    Returns
    -------
    ``(n, m)`` int8 array with entries in {-1, 0, ..., K-1}.
    """
    lfs = list(lfs)
    n = B.shape[0]
    L = np.full((n, len(lfs)), MC_ABSTAIN, dtype=np.int8)
    Bc = B.tocsc() if sp.issparse(B) else sp.csc_matrix(B)
    for j, lf in enumerate(lfs):
        L[column_nonzero_rows(Bc, lf.primitive_id), j] = lf.label
    return L


def mc_coverage_mask(L: np.ndarray) -> np.ndarray:
    """Boolean ``(n,)`` mask of examples with at least one non-abstain vote."""
    return (np.asarray(L) != MC_ABSTAIN).any(axis=1)


def mc_coverage(L: np.ndarray) -> float:
    """Fraction of examples covered by at least one LF."""
    L = np.asarray(L)
    if L.size == 0:
        return 0.0
    return float(mc_coverage_mask(L).mean())


def mc_vote_counts(L: np.ndarray, n_classes: int) -> np.ndarray:
    """Per-example per-class vote counts, shape ``(n, K)``.

    ``counts[i, k]`` is the number of LFs voting class ``k`` on example
    ``i``; abstains are not counted anywhere.
    """
    L = np.asarray(L)
    counts = np.zeros((L.shape[0], n_classes), dtype=float)
    for k in range(n_classes):
        counts[:, k] = (L == k).sum(axis=1)
    return counts


def mc_conflict_counts(L: np.ndarray, n_classes: int) -> np.ndarray:
    """Per-example number of conflicting vote *pairs*.

    Generalizes the binary ``p * q``: with per-class counts ``c_k`` on an
    example, the number of unordered pairs of votes naming *different*
    classes is ``(T² - Σ c_k²) / 2`` where ``T = Σ c_k``.
    """
    counts = mc_vote_counts(L, n_classes)
    total = counts.sum(axis=1)
    same_pairs = (counts**2).sum(axis=1)
    return ((total**2 - same_pairs) / 2.0).astype(int)


def mc_abstain_counts(L: np.ndarray) -> np.ndarray:
    """Per-example number of abstaining LFs."""
    L = np.asarray(L)
    return (L == MC_ABSTAIN).sum(axis=1)


def mc_lf_accuracies(L: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Per-LF empirical accuracy on covered examples (NaN if uncovered)."""
    L = np.asarray(L)
    y = np.asarray(y)
    votes = L != MC_ABSTAIN
    correct = (L == y[:, None]) & votes
    n_votes = votes.sum(axis=0).astype(float)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(n_votes > 0, correct.sum(axis=0) / n_votes, np.nan)


def mc_summary(L: np.ndarray, n_classes: int, y: np.ndarray | None = None) -> dict[str, float]:
    """Aggregate diagnostics dict (coverage/overlap/conflict [+ accuracy])."""
    L = np.asarray(L)
    stats = {
        "n_examples": float(L.shape[0]),
        "n_lfs": float(L.shape[1]),
        "coverage": mc_coverage(L),
    }
    if L.size:
        n_votes = (L != MC_ABSTAIN).sum(axis=1)
        stats["overlap"] = float((n_votes >= 2).mean())
        stats["conflict"] = float((mc_conflict_counts(L, n_classes) > 0).mean())
    else:
        stats["overlap"] = 0.0
        stats["conflict"] = 0.0
    if y is not None and L.shape[1] > 0:
        accs = mc_lf_accuracies(L, y)
        if np.any(~np.isnan(accs)):
            stats["mean_lf_accuracy"] = float(np.nanmean(accs))
    return stats
