"""Multiclass simulated users: adapter re-exports of the generic oracle.

The Sec. 5.1 protocol carries over unchanged to K classes; the generic
:class:`~repro.interactive.simulated_user.SimulatedUser` infers the
K-class convention from the dataset (``convention_for``), which supplies
the ``(|Z|, K)`` ground-truth accuracy table and the uniform-over-other-
classes mislabeling rule.  This module binds the historical MC names.
"""

from __future__ import annotations

from repro.interactive.simulated_user import (
    NoisyUser as MCNoisyUser,
    SimulatedUser as MCSimulatedUser,
)

__all__ = ["MCNoisyUser", "MCSimulatedUser"]
