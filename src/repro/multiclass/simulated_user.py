"""Simulated users for multiclass LF development.

The oracle protocol of Sec. 5.1 carries over unchanged: given a selected
example, enumerate the candidate LFs ``{λ_{z,y_i} | z ∈ x_i}`` using the
ground-truth class ``y_i``, filter out LFs whose (ground-truth) accuracy is
below a threshold ``t``, and sample one of the survivors — preferring
lexicon-consistent primitives when an external lexicon exists.
"""

from __future__ import annotations

import numpy as np

from repro.multiclass.data import MCFeaturizedDataset
from repro.multiclass.lf import MultiClassLF
from repro.multiclass.selection import MCSessionState
from repro.multiclass.session import MCLFDeveloper
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_range


class MCSimulatedUser(MCLFDeveloper):
    """Oracle K-class user with an accuracy threshold.

    Parameters
    ----------
    dataset:
        The multiclass featurized dataset; the oracle reads ground-truth
        *train* labels.
    accuracy_threshold:
        Candidate LFs with true accuracy below ``t`` are filtered out.  The
        paper's binary default is 0.5 ("better than random"); for K classes
        random is ``1/K``, so pass e.g. ``2.0 / n_classes`` to keep the
        same better-than-random spirit, or leave the stricter 0.5.
    use_lexicon:
        Prefer primitives whose lexicon class matches the example label,
        when any such candidate survives the filter.
    min_coverage:
        Candidates covering fewer than this many train examples are dropped.
    seed:
        Private randomness for the sampling step.
    """

    def __init__(
        self,
        dataset: MCFeaturizedDataset,
        accuracy_threshold: float = 0.5,
        use_lexicon: bool = True,
        min_coverage: int = 2,
        seed=None,
    ) -> None:
        check_in_range("accuracy_threshold", accuracy_threshold, 0.0, 1.0)
        if min_coverage < 1:
            raise ValueError(f"min_coverage must be >= 1, got {min_coverage}")
        self.dataset = dataset
        self.accuracy_threshold = accuracy_threshold
        self.use_lexicon = use_lexicon
        self.min_coverage = min_coverage
        self.rng = ensure_rng(seed)
        # Ground-truth per-(primitive, class) accuracy table, computed once.
        B = dataset.train.B
        y = dataset.train.y
        K = dataset.n_classes
        self._coverage = np.asarray(B.sum(axis=0)).ravel()
        onehot = np.zeros((len(y), K))
        onehot[np.arange(len(y)), y] = 1.0
        mass = np.asarray(B.T @ onehot)  # (|Z|, K)
        uniform = np.full_like(mass, 1.0 / K)
        self._acc = np.divide(
            mass, self._coverage[:, None], out=uniform, where=self._coverage[:, None] > 0
        )
        self._lexicon_class = self._build_lexicon_classes()

    def _build_lexicon_classes(self) -> dict[int, int]:
        classes: dict[int, int] = {}
        for token, label in self.dataset.lexicon.items():
            try:
                classes[self.dataset.primitive_id(token)] = int(label)
            except KeyError:
                continue  # lexicon word absent from the primitive domain
        return classes

    # ------------------------------------------------------------------ #
    # MCLFDeveloper interface
    # ------------------------------------------------------------------ #
    def create_lf(self, dev_index: int, state: MCSessionState) -> MultiClassLF | None:
        label = self._determine_label(dev_index)
        candidates = self._candidate_primitives(dev_index, label, state)
        if candidates.size == 0:
            return None
        chosen = self._sample_primitive(candidates, label)
        return state.family.make(int(chosen), int(label))

    # ------------------------------------------------------------------ #
    # the three user steps (Sec. 4.1)
    # ------------------------------------------------------------------ #
    def _determine_label(self, dev_index: int) -> int:
        """Step 1: the oracle reads the true class."""
        return int(self.dataset.train.y[dev_index])

    def _candidate_primitives(
        self, dev_index: int, label: int, state: MCSessionState
    ) -> np.ndarray:
        """Step 2: class-indicative, sufficiently-accurate, novel primitives."""
        primitives = state.family.primitives_in(dev_index)
        if primitives.size == 0:
            return primitives
        acc = self._true_accuracy(primitives, label)
        keep = (acc >= self.accuracy_threshold) & (
            self._coverage[primitives] >= self.min_coverage
        )
        candidates = primitives[keep]
        existing = {(lf.primitive_id, lf.label) for lf in state.lfs}
        if existing:
            novel = np.array(
                [(pid, label) not in existing for pid in candidates], dtype=bool
            )
            candidates = candidates[novel]
        return candidates

    def _sample_primitive(self, candidates: np.ndarray, label: int) -> int:
        """Step 3: sample, preferring lexicon-consistent primitives."""
        if self.use_lexicon and self._lexicon_class:
            preferred = np.array(
                [self._lexicon_class.get(int(pid)) == label for pid in candidates],
                dtype=bool,
            )
            if preferred.any():
                candidates = candidates[preferred]
        return int(self.rng.choice(candidates))

    def _true_accuracy(self, primitive_ids: np.ndarray, label: int) -> np.ndarray:
        return self._acc[primitive_ids, label]


class MCNoisyUser(MCSimulatedUser):
    """A noisy K-class participant (user-study-style imperfections).

    Parameters
    ----------
    mislabel_rate:
        Probability of misreading the development example's class; a wrong
        reading is uniform over the other classes.
    judgment_noise:
        Std of Gaussian noise on the perceived candidate accuracies.
    lexicon_adherence:
        Probability the participant consults the lexicon at all.
    """

    def __init__(
        self,
        dataset: MCFeaturizedDataset,
        accuracy_threshold: float = 0.5,
        mislabel_rate: float = 0.05,
        judgment_noise: float = 0.1,
        lexicon_adherence: float = 0.8,
        min_coverage: int = 2,
        seed=None,
    ) -> None:
        super().__init__(
            dataset,
            accuracy_threshold=accuracy_threshold,
            use_lexicon=True,
            min_coverage=min_coverage,
            seed=seed,
        )
        check_in_range("mislabel_rate", mislabel_rate, 0.0, 1.0)
        check_in_range("lexicon_adherence", lexicon_adherence, 0.0, 1.0)
        if judgment_noise < 0:
            raise ValueError(f"judgment_noise must be >= 0, got {judgment_noise}")
        self.mislabel_rate = mislabel_rate
        self.judgment_noise = judgment_noise
        self.lexicon_adherence = lexicon_adherence

    def _determine_label(self, dev_index: int) -> int:
        true_label = super()._determine_label(dev_index)
        if self.rng.random() < self.mislabel_rate:
            others = [k for k in range(self.dataset.n_classes) if k != true_label]
            return int(self.rng.choice(others))
        return true_label

    def _true_accuracy(self, primitive_ids: np.ndarray, label: int) -> np.ndarray:
        exact = super()._true_accuracy(primitive_ids, label)
        noise = self.judgment_noise * self.rng.standard_normal(len(primitive_ids))
        return np.clip(exact + noise, 0.0, 1.0)

    def _sample_primitive(self, candidates: np.ndarray, label: int) -> int:
        consult = self.rng.random() < self.lexicon_adherence
        original = self.use_lexicon
        self.use_lexicon = consult
        try:
            return super()._sample_primitive(candidates, label)
        finally:
            self.use_lexicon = original
