"""Multiclass LF utility functions Ψ_t (Eq. 3 generalized to K classes).

The binary correctness factor ``λ(x_i)·ŷ_i ∈ {−1, +1}`` has expected value
``2p − 1`` under a soft proxy — crucially, *zero at chance* (p = 0.5), so
an uninformative end model contributes no selection pressure.  The naive
K-class analogue ``2·P(y = k) − 1`` loses that property: at the uniform
proxy it equals ``2/K − 1 < 0``, every candidate LF looks "probably
wrong", and SEU's ranking inverts — it *avoids* the high-entropy regions
it should seek (observed empirically: SEU scored below random selection on
the 4-topic benchmark with this variant).  We therefore use the
chance-centered agreement

    s_k(x_i) = (K·P(y_i = k) − 1) / (K − 1)

which is +1 at certainty-correct, 0 at chance, and recovers ``2p − 1``
exactly for K = 2.  The utility of every ``λ_{z,k}`` then reduces to one
sparse mat-vec per class:

    Ψ(λ_{z,k}) = (Bᵀ (ψ ⊙ s_k))_z

with ψ the label model's posterior entropy.  The two Table-7-style
ablations drop one factor each, exactly as in the binary package.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np
import scipy.sparse as sp


def signed_agreement(proxy_proba: np.ndarray) -> np.ndarray:
    """Map ``(n, K)`` class probabilities to chance-centered agreement values.

    ``out[i, k] = (K·P(y_i = k) − 1) / (K − 1)`` — the Eq. 3 correctness
    term rescaled so that a chance-level proxy contributes zero (see the
    module docstring); identical to ``2p − 1`` when K = 2.
    """
    P = np.asarray(proxy_proba, dtype=float)
    if P.ndim != 2:
        raise ValueError(f"proxy_proba must be 2-D (n, K), got shape {P.shape}")
    if np.any(P < -1e-9) or np.any(P > 1 + 1e-9):
        raise ValueError("proxy_proba entries must lie in [0, 1]")
    K = P.shape[1]
    if K < 2:
        raise ValueError(f"proxy_proba must have at least 2 class columns, got {K}")
    return (K * P - 1.0) / (K - 1.0)


class MCLFUtility(ABC):
    """Vectorized Ψ over the multiclass primitive-LF family.

    :meth:`scores` returns the ``(|Z|, K)`` utility table: column ``k``
    holds ``Ψ(λ_{z,k})`` for every primitive ``z``.
    """

    name: str = "abstract"

    @abstractmethod
    def scores(
        self, B: sp.csr_matrix, entropies: np.ndarray, proxy_proba: np.ndarray
    ) -> np.ndarray:
        """Utility of ``λ_{z,k}`` per (primitive, class), shape ``(|Z|, K)``."""

    def score_lf(
        self,
        lf,
        B: sp.csr_matrix,
        entropies: np.ndarray,
        proxy_proba: np.ndarray,
    ) -> float:
        """Scalar Ψ(λ) for one LF (reference implementation for tests)."""
        table = self.scores(B, entropies, proxy_proba)
        return float(table[lf.primitive_id, lf.label])


class MCFullUtility(MCLFUtility):
    """Eq. 3 generalized: informativeness (entropy) × correctness."""

    name = "full"

    def scores(self, B, entropies, proxy_proba):
        agreement = signed_agreement(proxy_proba)  # (n, K)
        signal = np.asarray(entropies, dtype=float)[:, None] * agreement
        return np.asarray(B.T @ signal)


class MCNoInformativenessUtility(MCLFUtility):
    """Ablation: Ψ(λ_{z,k}) = Σ_C (2·P(y_i = k) − 1) (correctness only)."""

    name = "no-informativeness"

    def scores(self, B, entropies, proxy_proba):
        return np.asarray(B.T @ signed_agreement(proxy_proba))


class MCNoCorrectnessUtility(MCLFUtility):
    """Ablation: Ψ(λ_{z,k}) = Σ_C ψ(x_i) (coverage of uncertainty).

    Class-symmetric: every class column of a primitive scores identically.
    """

    name = "no-correctness"

    def scores(self, B, entropies, proxy_proba):
        K = np.asarray(proxy_proba).shape[1]
        per_primitive = np.asarray(B.T @ np.asarray(entropies, dtype=float)).ravel()
        return np.tile(per_primitive[:, None], (1, K))


MC_UTILITIES = {
    "full": MCFullUtility,
    "no-informativeness": MCNoInformativenessUtility,
    "no-correctness": MCNoCorrectnessUtility,
}


def make_mc_utility(name: str) -> MCLFUtility:
    """Instantiate a registered multiclass utility function by name."""
    try:
        cls = MC_UTILITIES[name]
    except KeyError:
        raise ValueError(
            f"unknown utility {name!r}; choose from {sorted(MC_UTILITIES)}"
        ) from None
    return cls()
