"""Multiclass LF utilities: adapter re-exports of the generic implementations.

Eq. 3's chance-centered K-class generalization lives in
:mod:`repro.core.utility` (see :func:`repro.core.utility.signed_agreement`
for the correctness rescaling and why it must vanish at a uniform proxy);
this module binds the historical MC names.
"""

from __future__ import annotations

from repro.core.utility import (
    FullUtility as MCFullUtility,
    LFUtility as MCLFUtility,
    NoCorrectnessUtility as MCNoCorrectnessUtility,
    NoInformativenessUtility as MCNoInformativenessUtility,
    signed_agreement,
)

MC_UTILITIES = {
    "full": MCFullUtility,
    "no-informativeness": MCNoInformativenessUtility,
    "no-correctness": MCNoCorrectnessUtility,
}


def make_mc_utility(name: str) -> MCLFUtility:
    """Instantiate a registered multiclass utility function by name."""
    try:
        cls = MC_UTILITIES[name]
    except KeyError:
        raise ValueError(
            f"unknown utility {name!r}; choose from {sorted(MC_UTILITIES)}"
        ) from None
    return cls()


__all__ = [
    "MCFullUtility",
    "MCLFUtility",
    "MCNoCorrectnessUtility",
    "MCNoInformativenessUtility",
    "MC_UTILITIES",
    "make_mc_utility",
    "signed_agreement",
]
