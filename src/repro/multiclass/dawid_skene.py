"""Multiclass Dawid–Skene EM with abstain-aware sources.

The classic Dawid–Skene model gives every source a full ``K × K`` confusion
matrix; we extend it with class-conditional *fire propensities* exactly as
the binary MeTaL stand-in does (:mod:`repro.labelmodel.metal`), and for the
same reason: uni-polar keyword LFs fire almost exclusively on one class,
and without the propensity terms EM has a degenerate optimum that collapses
all labels onto a single class.  The generative model per LF ``j``:

    P(λ_j = l | y = k)        = ρ_j(k) · Θ_j[k, l]        (l a class)
    P(λ_j = abstain | y = k)  = 1 - ρ_j(k)

with ``Θ_j`` a row-stochastic confusion matrix over emitted classes.  As in
the binary model, the posterior used for prediction keeps the vote and
fire evidence but drops abstain evidence by default, so uncovered examples
score exactly the class priors.
"""

from __future__ import annotations

import numpy as np

from repro.labelmodel.matrix import (
    COLD_PATHS,
    ColumnStats,
    column_stats_from_dense,
    resolve_cold_path,
    validated_or_stats,
)
from repro.multiclass.base import MultiClassLabelModel
from repro.multiclass.matrix import MC_ABSTAIN

_THETA_FLOOR = 1e-3
_RHO_FLOOR = 1e-4
_RHO_CEIL = 1.0 - 1e-4
_PRIOR_FLOOR = 0.01


class MCDawidSkeneModel(MultiClassLabelModel):
    """Confusion-matrix EM over abstaining multiclass sources.

    Parameters
    ----------
    n_classes:
        The number of classes ``K``.
    class_priors:
        Initial ``(K,)`` prior; refined during fitting when
        ``learn_priors=True``.
    n_iter / tol:
        EM iteration cap and convergence threshold (max parameter change).
    init_accuracy:
        Initial (and anchor) probability mass a source puts on the *correct*
        class; the remaining mass spreads uniformly over the other classes.
    anchor:
        Pseudo-vote strength of the Dirichlet anchor pulling each confusion
        row toward the ``init_accuracy`` pattern — keeps thinly-covered LFs
        identifiable, as in the binary model.
    learn_priors:
        Re-estimate the class balance from the posterior during fitting.
    abstain_evidence:
        Include the abstain propensity evidence at *prediction* time
        (fitting always uses the full model).  Off by default so uncovered
        examples keep maximal uncertainty — the exploration signal the
        selectors need.
    cold_path:
        Cold-fit kernel policy (``"auto"`` / ``"stats"`` / ``"dense"``):
        same contract as the binary models — ``"auto"`` picks the
        O(nnz·K) path at ``n >= COLD_STATS_MIN_ROWS``, ``"dense"`` is the
        bit-for-bit legacy defeat switch / parity oracle.

    Attributes
    ----------
    confusions_:
        ``(m, K, K)`` fitted confusion matrices ``Θ_j[k, l]``.
    propensities_:
        ``(m, K)`` fire rates ``ρ_j(k)``.
    priors_:
        Final ``(K,)`` class priors.
    converged_:
        Whether EM reached ``tol`` before the iteration cap.
    em_iterations_:
        EM iterations the last fit actually ran (obs attribution).
    """

    _FITTED_ATTRS = (
        "confusions_",
        "propensities_",
        "priors_",
        "converged_",
        "em_iterations_",
    )

    def __init__(
        self,
        n_classes: int,
        class_priors: np.ndarray | None = None,
        n_iter: int = 50,
        tol: float = 1e-4,
        init_accuracy: float = 0.7,
        anchor: float = 2.0,
        learn_priors: bool = True,
        abstain_evidence: bool = False,
        cold_path: str = "auto",
    ) -> None:
        super().__init__(n_classes, class_priors)
        if n_iter < 1:
            raise ValueError(f"n_iter must be >= 1, got {n_iter}")
        if not 1.0 / n_classes < init_accuracy < 1.0:
            raise ValueError(
                f"init_accuracy must be in (1/K, 1) = ({1.0 / n_classes:.3f}, 1), "
                f"got {init_accuracy}"
            )
        if anchor < 0:
            raise ValueError(f"anchor must be >= 0, got {anchor}")
        if cold_path not in COLD_PATHS:
            raise ValueError(f"cold_path must be one of {COLD_PATHS}, got {cold_path!r}")
        self.n_iter = n_iter
        self.tol = tol
        self.init_accuracy = init_accuracy
        self.anchor = anchor
        self.learn_priors = learn_priors
        self.abstain_evidence = abstain_evidence
        self.cold_path = cold_path
        self.confusions_: np.ndarray | None = None
        self.propensities_: np.ndarray | None = None
        self.priors_: np.ndarray = self.class_priors.copy()
        self.converged_: bool = False
        self.em_iterations_: int = 0

    # ------------------------------------------------------------------ #
    # fitting
    # ------------------------------------------------------------------ #
    def fit(
        self, L: np.ndarray, stats: ColumnStats | None = None
    ) -> "MCDawidSkeneModel":
        """Cold EM fit from the smoothed vote-share posterior.

        ``stats`` (a matching :class:`~repro.labelmodel.matrix.ColumnStats`
        handle) skips the dense re-validation scan.  Under the resolved
        ``cold_path`` the full EM runs either on the O(nnz·K)
        sufficient-statistics kernels (a missing handle is built here by
        one dense scan; fits are bit-identical whichever way the handle
        was obtained) or on the legacy dense arithmetic
        (``cold_path="dense"``, bit-for-bit the historical semantics).
        """
        L = self._validated_or_stats(L, stats)
        K = self.n_classes
        self.priors_ = self.class_priors.copy()
        if L.shape[1] == 0 or L.shape[0] == 0:
            self.confusions_ = np.zeros((0, K, K))
            self.propensities_ = np.zeros((0, K))
            self.converged_ = True
            self.em_iterations_ = 0
            return self
        if resolve_cold_path(self.cold_path, L.shape[0]) == "stats":
            if stats is None:
                stats = column_stats_from_dense(L, abstain=MC_ABSTAIN)
            self._fit_from_posterior(
                L, self._majority_posterior(L, stats), stats=stats
            )
        else:
            self._fit_from_posterior(L, self._majority_posterior(L))
        return self

    def fit_warm(
        self,
        L: np.ndarray,
        previous: "MCDawidSkeneModel | None" = None,
        max_iter: int | None = None,
        stats: ColumnStats | None = None,
    ) -> "MCDawidSkeneModel":
        """Fit seeded from a previous fit's posterior (incremental refits).

        Same contract as the binary model's warm fit: EM continues from the
        posterior of the previous parameters over the columns they were
        fitted on, with identical anchors and convergence tolerance, and
        ``max_iter`` optionally caps this call's EM iterations.  Falls
        back to a cold :meth:`fit` whenever the previous model is unusable.

        Warm fits always run on the incremental sufficient-statistics path
        (the ``stats`` handle threaded from the engine, or one built here
        by a single dense scan — bit-identical either way): per-class
        sparse mat-vecs replace every dense ``(L == k)`` mask, O(nnz·K)
        per EM iteration instead of O(n·m·K).
        """
        usable = (
            type(previous) is type(self)
            and getattr(previous, "confusions_", None) is not None
            and previous.confusions_.shape[0] > 0
            and previous.n_classes == self.n_classes
        )
        if not usable:
            return self.fit(L, stats=stats)
        L = self._validated_or_stats(L, stats)
        m_prev = previous.confusions_.shape[0]
        if L.shape[0] == 0 or L.shape[1] == 0 or L.shape[1] < m_prev:
            return self.fit(L, stats=stats)
        if stats is None:
            stats = column_stats_from_dense(L, abstain=MC_ABSTAIN)
        priors = np.clip(previous.priors_, _PRIOR_FLOOR, None)
        self.priors_ = priors / priors.sum()
        Q_seed = self._posterior_stats(
            stats, previous.confusions_, previous.propensities_, with_abstain=True
        )
        # As in the binary model, the *initial* class-balance estimate must
        # mirror the cold seeding (smoothed majority posterior) — seeding
        # it from the previous converged posterior lets a lopsided LF set
        # drag the priors further each refit.
        full_n_iter = self.n_iter
        if max_iter is not None:
            self.n_iter = max(1, min(self.n_iter, int(max_iter)))
        try:
            self._fit_from_posterior(
                L, Q_seed, Q_prior=self._majority_posterior(L, stats), stats=stats
            )
        finally:
            self.n_iter = full_n_iter  # the cap is scoped to this call only
        return self

    def _validated_or_stats(
        self, L: np.ndarray, stats: ColumnStats | None
    ) -> np.ndarray:
        return validated_or_stats(L, stats, self._validated)

    def _fit_from_posterior(
        self,
        L: np.ndarray,
        Q: np.ndarray,
        Q_prior: np.ndarray | None = None,
        stats: ColumnStats | None = None,
    ) -> None:
        """Run EM from an initial posterior ``Q``.

        ``Q_prior`` optionally supplies a different posterior for the
        initial class-balance update (warm fits pass the majority
        posterior; subsequent updates inside the loop use the E-step
        posterior in both the cold and warm paths).  With ``stats`` every
        E/M step runs on the O(nnz·K) sparse path.
        """
        if self.learn_priors:
            self._update_priors(L, Q if Q_prior is None else Q_prior, stats)
        theta, rho = self._m_step(L, Q, stats)
        self.converged_ = False
        iterations = 0
        for _ in range(self.n_iter):
            iterations += 1
            if stats is not None:
                Q = self._posterior_stats(stats, theta, rho, with_abstain=True)
            else:
                Q = self._posterior_dense(L, theta, rho, with_abstain=True)
            if self.learn_priors:
                self._update_priors(L, Q, stats)
            new_theta, new_rho = self._m_step(L, Q, stats)
            delta = max(
                float(np.max(np.abs(new_theta - theta))),
                float(np.max(np.abs(new_rho - rho))),
            )
            theta, rho = new_theta, new_rho
            if delta < self.tol:
                self.converged_ = True
                break
        self.confusions_ = theta
        self.propensities_ = rho
        self.em_iterations_ = iterations

    def _update_priors(
        self, L: np.ndarray, Q: np.ndarray, stats: ColumnStats | None = None
    ) -> None:
        covered = (
            stats.coverage_mask() if stats is not None else self._covered_dense(L)
        )
        if covered.any():
            priors = Q[covered].mean(axis=0)
            priors = np.clip(priors, _PRIOR_FLOOR, None)
            self.priors_ = priors / priors.sum()

    def _majority_posterior(
        self, L: np.ndarray, stats: ColumnStats | None = None
    ) -> np.ndarray:
        """Smoothed vote-share posterior that seeds EM.

        The per-row vote tallies are exact integers, so reading them from
        the stats handle's running counters is bit-identical to the dense
        scan.
        """
        K = self.n_classes
        if stats is not None:
            counts = np.stack(
                [stats.row_value_counts(k).astype(float) for k in range(K)], axis=1
            )
        else:
            counts = self._vote_counts_dense(L)
        smoothed = counts + self.class_priors[None, :]
        return smoothed / smoothed.sum(axis=1, keepdims=True)

    def _vote_counts_dense(self, L: np.ndarray) -> np.ndarray:
        """Per-row per-class vote counts by dense scan."""
        counts = np.zeros((L.shape[0], self.n_classes))
        for k in range(self.n_classes):
            counts[:, k] = (L == k).sum(axis=1)
        return counts

    @staticmethod
    def _covered_dense(L: np.ndarray) -> np.ndarray:
        """Row coverage mask by dense scan (stats-less fallback)."""
        return (L != MC_ABSTAIN).any(axis=1)

    def _m_step(
        self, L: np.ndarray, Q: np.ndarray, stats: ColumnStats | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Closed-form confusion/propensity updates with Dirichlet anchors."""
        n, m = L.shape
        K = self.n_classes
        # Anchor pattern: init_accuracy on the diagonal, rest uniform.
        off_diag = (1.0 - self.init_accuracy) / (K - 1)
        anchor_row = np.full((K, K), off_diag)
        np.fill_diagonal(anchor_row, self.init_accuracy)

        if stats is not None:
            # O(nnz·K) path: one sparse mat-mat per emitted class replaces
            # the per-column dense masks.
            class_mass = Q.sum(axis=0)  # (K,)
            counts = np.empty((m, K, K))  # counts[j, k, l]
            for l in range(K):
                counts[:, :, l] = np.asarray(stats.value_csc(l).T @ Q)
            fire_mass = counts.sum(axis=2)  # (m, K) — before the anchor
            counts += self.anchor * anchor_row[None, :, :]
            theta = np.clip(
                counts / counts.sum(axis=2, keepdims=True), _THETA_FLOOR, 1.0
            )
            theta /= theta.sum(axis=2, keepdims=True)
            with np.errstate(invalid="ignore", divide="ignore"):
                rho = np.where(
                    class_mass[None, :] > 0, fire_mass / class_mass[None, :], 0.5
                )
            rho = np.clip(rho, _RHO_FLOOR, _RHO_CEIL)
            return theta, rho
        return self._m_step_dense(L, Q, anchor_row)

    def _m_step_dense(
        self, L: np.ndarray, Q: np.ndarray, anchor_row: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dense twin of the stats M-step (the ``cold_path="dense"`` oracle)."""
        n, m = L.shape
        K = self.n_classes
        theta = np.empty((m, K, K))
        rho = np.empty((m, K))
        class_mass = Q.sum(axis=0)  # (K,)
        for j in range(m):
            votes_j = L[:, j]
            fired = votes_j != MC_ABSTAIN
            # counts[k, l] = Σ_{i: λ_j(x_i) = l} Q[i, k]
            counts = np.zeros((K, K))
            for l in range(K):
                voted_l = votes_j == l
                if voted_l.any():
                    counts[:, l] = Q[voted_l].sum(axis=0)
            counts += self.anchor * anchor_row
            theta[j] = np.clip(
                counts / counts.sum(axis=1, keepdims=True), _THETA_FLOOR, 1.0
            )
            theta[j] /= theta[j].sum(axis=1, keepdims=True)
            fire_mass = Q[fired].sum(axis=0) if fired.any() else np.zeros(K)
            with np.errstate(invalid="ignore", divide="ignore"):
                rho[j] = np.where(class_mass > 0, fire_mass / class_mass, 0.5)
        rho = np.clip(rho, _RHO_FLOOR, _RHO_CEIL)
        return theta, rho

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def predict_proba(
        self, L: np.ndarray, stats: ColumnStats | None = None
    ) -> np.ndarray:
        """``(n, K)`` posterior.

        ``stats`` skips the dense re-validation scan; the posterior runs
        on the kernel the ``cold_path`` policy resolves to at this ``n``
        (a missing handle is built by one scan on the stats path, so the
        result is byte-equal with or without ``stats``).
        """
        if self.confusions_ is None or self.propensities_ is None:
            raise RuntimeError("MCDawidSkeneModel.predict_proba called before fit")
        L = self._validated_or_stats(L, stats)
        if L.shape[1] != self.confusions_.shape[0]:
            raise ValueError(
                f"label matrix has {L.shape[1]} LFs but model was fitted with "
                f"{self.confusions_.shape[0]}"
            )
        if L.shape[1] == 0:
            return np.tile(self.priors_, (L.shape[0], 1))
        if resolve_cold_path(self.cold_path, L.shape[0]) == "stats":
            if stats is None:
                stats = column_stats_from_dense(L, abstain=MC_ABSTAIN)
            return self._posterior_stats(
                stats,
                self.confusions_,
                self.propensities_,
                with_abstain=self.abstain_evidence,
            )
        return self._posterior_dense(
            L, self.confusions_, self.propensities_, with_abstain=self.abstain_evidence
        )

    def _posterior_stats(
        self,
        stats: ColumnStats,
        theta: np.ndarray,
        rho: np.ndarray,
        with_abstain: bool,
    ) -> np.ndarray:
        """The O(nnz·K) twin of :meth:`_posterior_dense` (table-driven E-step).

        Every row starts from the all-abstain log-posterior (priors plus,
        with abstain evidence, ``Σ_j log(1 − ρ_j)``); each fired entry then
        contributes a row of the ``(m, K, K)`` evidence table
        ``E[j, k, l] = log ρ_j(k) + log Θ_j[k, l] [− log(1 − ρ_j(k))]``
        built once per call: the table is gathered through the flat entry
        arrays (:meth:`ColumnStats.entries`) as ``E[cols, :, values]`` and
        segment-summed into rows with one ``np.bincount`` per class —
        replacing the per-class sparse mat-mat passes.  Prefix-sliced at
        ``indptr[m]`` when warm-seeding from a smaller previous fit.
        """
        m = theta.shape[0]
        K = self.n_classes
        log_theta = np.log(np.clip(theta, _THETA_FLOOR, 1.0))  # (m, K, K)
        log_rho = np.log(rho)  # (m, K)
        log_not_rho = np.log1p(-rho)
        if with_abstain:
            base = np.log(self.priors_) + log_not_rho.sum(axis=0)
        else:
            base = np.log(self.priors_)
        indptr, rows, cols, values = stats.entries()
        if m != stats.m:
            end = int(indptr[m])
            rows, cols, values = rows[:end], cols[:end], values[:end]
        # evidence[j, k, l]: class-k evidence of column j emitting class l.
        evidence = log_rho[:, :, None] + log_theta  # (m, K, K)
        if with_abstain:
            evidence = evidence - log_not_rho[:, :, None]
        contrib = evidence[cols, :, values.astype(np.intp)]  # (nnz, K)
        log_post = np.empty((stats.n_rows, K))
        for k in range(K):
            log_post[:, k] = base[k] + np.bincount(
                rows, weights=contrib[:, k], minlength=stats.n_rows
            )
        log_post -= log_post.max(axis=1, keepdims=True)
        post = np.exp(log_post)
        return post / post.sum(axis=1, keepdims=True)

    def _posterior_dense(
        self,
        L: np.ndarray,
        theta: np.ndarray,
        rho: np.ndarray,
        with_abstain: bool,
    ) -> np.ndarray:
        """``P(y = k | L_i)`` under parameters ``(theta, rho, priors_)``."""
        n, m = L.shape
        log_post = np.tile(np.log(self.priors_)[None, :], (n, 1))
        log_theta = np.log(np.clip(theta, _THETA_FLOOR, 1.0))  # (m, K, K)
        log_rho = np.log(rho)  # (m, K)
        log_not_rho = np.log1p(-rho)
        for j in range(m):
            votes_j = L[:, j]
            fired = votes_j != MC_ABSTAIN
            if fired.any():
                emitted = votes_j[fired].astype(int)
                # evidence for class k: log ρ_j(k) + log Θ_j[k, emitted]
                log_post[fired] += log_rho[j][None, :] + log_theta[j][:, emitted].T
            if with_abstain and (~fired).any():
                log_post[~fired] += log_not_rho[j][None, :]
        log_post -= log_post.max(axis=1, keepdims=True)
        post = np.exp(log_post)
        return post / post.sum(axis=1, keepdims=True)

    def marginal_ll(self, L: np.ndarray) -> float:
        """Marginal log-likelihood under the fitted parameters (diagnostics)."""
        if self.confusions_ is None or self.propensities_ is None:
            raise RuntimeError("model is not fitted")
        L = self._validated(L)
        n, m = L.shape
        log_joint = np.tile(np.log(self.priors_)[None, :], (n, 1))
        log_theta = np.log(np.clip(self.confusions_, _THETA_FLOOR, 1.0))
        log_rho = np.log(self.propensities_)
        log_not_rho = np.log1p(-self.propensities_)
        for j in range(m):
            votes_j = L[:, j]
            fired = votes_j != MC_ABSTAIN
            if fired.any():
                emitted = votes_j[fired].astype(int)
                log_joint[fired] += log_rho[j][None, :] + log_theta[j][:, emitted].T
            if (~fired).any():
                log_joint[~fired] += log_not_rho[j][None, :]
        max_row = log_joint.max(axis=1, keepdims=True)
        return float(
            (max_row.ravel() + np.log(np.exp(log_joint - max_row).sum(axis=1))).sum()
        )
