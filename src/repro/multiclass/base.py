"""Multiclass label-model interface.

A multiclass label model consumes the vote matrix ``L`` (entries in
``{-1, 0, ..., K-1}``, -1 = abstain) and produces a probabilistic posterior
``P(y_i = k | L_i)`` per example — the ``(n, K)`` analogue of the binary
pipeline's ``P(y = +1 | L)`` vector.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.multiclass.matrix import validate_mc_label_matrix
from repro.utils.state import FittedStateMixin


class MultiClassLabelModel(FittedStateMixin, ABC):
    """Abstract multiclass denoiser/aggregator of weak-supervision votes.

    Parameters
    ----------
    n_classes:
        The number of classes ``K``.
    class_priors:
        ``(K,)`` prior ``P(y = k)``; uniform when omitted.  Fixed unless a
        subclass learns it.
    """

    def __init__(self, n_classes: int, class_priors: np.ndarray | None = None) -> None:
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        self.n_classes = n_classes
        if class_priors is None:
            priors = np.full(n_classes, 1.0 / n_classes)
        else:
            priors = np.asarray(class_priors, dtype=float).ravel()
            if priors.shape != (n_classes,):
                raise ValueError(
                    f"class_priors must have shape ({n_classes},), got {priors.shape}"
                )
            if np.any(priors <= 0):
                raise ValueError("class_priors must be strictly positive")
            priors = priors / priors.sum()
        self.class_priors = priors

    @abstractmethod
    def fit(self, L: np.ndarray) -> "MultiClassLabelModel":
        """Estimate source parameters from the vote matrix."""

    @abstractmethod
    def predict_proba(self, L: np.ndarray) -> np.ndarray:
        """Return ``(n, K)`` posterior ``P(y = k | L_i)``.

        Rows sum to 1; uncovered examples receive the class priors.
        """

    # ------------------------------------------------------------------ #
    # shared conveniences
    # ------------------------------------------------------------------ #
    def fit_warm(
        self,
        L: np.ndarray,
        previous: "MultiClassLabelModel | None" = None,
        max_iter: int | None = None,
    ) -> "MultiClassLabelModel":
        """Fit, optionally warm-starting from a previously fitted model.

        ``previous`` is a model of the same class fitted on the first
        ``m_prev ≤ m`` columns of ``L``; ``max_iter`` optionally caps the
        inner optimizer iterations for this call (see the binary
        :meth:`repro.labelmodel.base.LabelModel.fit_warm`).  The default
        ignores both hints and performs a full fit.
        """
        return self.fit(L)

    def fit_predict_proba(self, L: np.ndarray) -> np.ndarray:
        """``fit(L)`` then ``predict_proba(L)``."""
        return self.fit(L).predict_proba(L)

    def predict(self, L: np.ndarray) -> np.ndarray:
        """Hard class labels via the posterior argmax (first-class ties)."""
        return np.argmax(self.predict_proba(L), axis=1).astype(int)

    def _validated(self, L: np.ndarray) -> np.ndarray:
        return validate_mc_label_matrix(L, self.n_classes)


def posterior_entropy_mc(proba: np.ndarray) -> np.ndarray:
    """Shannon entropy (nats) of each posterior row — ψ_uncertainty of Eq. 3.

    The multiclass generalization of the binary entropy: uncovered examples
    carrying the (uninformative) prior score near ``log K``; fully-agreed
    examples score near zero.
    """
    p = np.clip(np.asarray(proba, dtype=float), 1e-12, 1.0)
    return -(p * np.log(p)).sum(axis=-1)
