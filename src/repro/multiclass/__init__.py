"""Multi-class generalization of the IDP pipeline (paper extension).

The paper restricts its exposition to binary classification "for ease of
exposition" (Sec. 3) while stating the IDP formalism for an arbitrary label
space ``Y``.  This subpackage carries every component of the binary pipeline
to ``K`` classes:

* primitive LFs emit a class in ``{0, ..., K-1}`` (:mod:`repro.multiclass.lf`),
* the label matrix uses the multiclass weak-supervision convention
  ``ABSTAIN = -1`` (:mod:`repro.multiclass.matrix`),
* label models generalize to per-class vote counts (majority vote) and full
  confusion matrices (Dawid–Skene EM) —
  :mod:`repro.multiclass.majority`, :mod:`repro.multiclass.dawid_skene`,
* the SEU selector's user model, utility function, and vectorized expected
  utility generalize class-by-class
  (:mod:`repro.multiclass.user_model`, :mod:`repro.multiclass.utility`,
  :mod:`repro.multiclass.seu`),
* the contextualizer (Eq. 4 is label-space agnostic) gets a multiclass
  refinement wrapper (:mod:`repro.multiclass.contextualizer`), and
* the session engine drives the full loop against a softmax end model
  (:mod:`repro.multiclass.session`).

Note the abstain conventions deliberately differ between packages: the
binary pipeline uses the paper's ``{-1, 0, +1}`` vote encoding (0 abstains),
whereas here classes occupy ``0..K-1`` and ``-1`` abstains — the standard
encoding of the multiclass weak-supervision literature.
"""

from repro.multiclass.contextualizer import MCContextualizer, MCPercentileTuner
from repro.multiclass.data import (
    MCCorpusSpec,
    MCClusterSpec,
    MCCorpusGenerator,
    MCFeaturizedDataset,
    featurize_mc_corpus,
    make_topics_dataset,
)
from repro.multiclass.dawid_skene import MCDawidSkeneModel
from repro.multiclass.lf import MultiClassLF, MultiClassLFFamily
from repro.multiclass.majority import MCMajorityVote
from repro.multiclass.base import MultiClassLabelModel, posterior_entropy_mc
from repro.multiclass.matrix import MC_ABSTAIN
from repro.multiclass.seu import MCSEUSelector
from repro.multiclass.selection import (
    MCAbstainSelector,
    MCDevDataSelector,
    MCDisagreeSelector,
    MCRandomSelector,
    MCSessionState,
    MCUncertaintySelector,
)
from repro.multiclass.session import MCLFDeveloper, MultiClassSession
from repro.multiclass.simulated_user import MCNoisyUser, MCSimulatedUser
from repro.multiclass.user_model import (
    MCAccuracyWeightedUserModel,
    MCThresholdedUserModel,
    MCUniformUserModel,
    MCUserModel,
)
from repro.multiclass.utility import (
    MCFullUtility,
    MCLFUtility,
    MCNoCorrectnessUtility,
    MCNoInformativenessUtility,
)

__all__ = [
    "MC_ABSTAIN",
    "MCAbstainSelector",
    "MCAccuracyWeightedUserModel",
    "MCClusterSpec",
    "MCDisagreeSelector",
    "MCNoisyUser",
    "MCThresholdedUserModel",
    "MCUncertaintySelector",
    "MCContextualizer",
    "MCCorpusGenerator",
    "MCCorpusSpec",
    "MCDawidSkeneModel",
    "MCDevDataSelector",
    "MCFeaturizedDataset",
    "MCFullUtility",
    "MCLFDeveloper",
    "MCLFUtility",
    "MCMajorityVote",
    "MCNoCorrectnessUtility",
    "MCNoInformativenessUtility",
    "MCPercentileTuner",
    "MCRandomSelector",
    "MCSEUSelector",
    "MCSessionState",
    "MCSimulatedUser",
    "MCUniformUserModel",
    "MCUserModel",
    "MultiClassLF",
    "MultiClassLFFamily",
    "MultiClassLabelModel",
    "MultiClassSession",
    "featurize_mc_corpus",
    "make_topics_dataset",
    "posterior_entropy_mc",
]
