"""Multiclass primitive labeling functions and the LF family.

The primitive-based LF form of the paper (Sec. 4) is label-space agnostic:

    λ_{z,y}(x):  return y if x contains z else abstain

Here ``y`` ranges over ``{0, ..., K-1}``, so the family is
``F = {λ_{z,k} | z ∈ Z, k < K}`` — ``K`` LFs per primitive instead of two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.labelmodel.matrix import column_nonzero_rows
from repro.multiclass.matrix import MC_ABSTAIN
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class MultiClassLF:
    """A keyword/primitive labeling function ``λ_{z,k}`` for class ``k``.

    Attributes
    ----------
    primitive_id:
        Column of the primitive-incidence matrix ``B`` this LF keys on.
    primitive:
        The primitive token itself (for display/lineage).
    label:
        The class id in ``{0, ..., K-1}`` emitted when the primitive is
        present.
    """

    primitive_id: int
    primitive: str
    label: int

    def __post_init__(self) -> None:
        if self.label < 0:
            raise ValueError(f"label must be a class id >= 0, got {self.label}")
        if self.primitive_id < 0:
            raise ValueError(f"primitive_id must be >= 0, got {self.primitive_id}")

    @property
    def name(self) -> str:
        """Human-readable name, e.g. ``"goal->2"``."""
        return f"{self.primitive}->{self.label}"

    def apply(self, B: sp.spmatrix) -> np.ndarray:
        """Vote vector over the rows of incidence matrix ``B``.

        Returns an ``(n,)`` int8 array in {-1, label}.  Sparse-native: only
        the rows covered by the primitive are touched (pass a CSC matrix
        for the O(nnz_col) fast path).
        """
        votes = np.full(B.shape[0], MC_ABSTAIN, dtype=np.int8)
        votes[column_nonzero_rows(B, self.primitive_id)] = self.label
        return votes


class MultiClassLFFamily:
    """The family of all multiclass primitive LFs over a primitive domain.

    Parameters
    ----------
    primitive_names:
        Token per column of ``B``.
    B:
        Binary ``(n_train, |Z|)`` incidence matrix.
    n_classes:
        The number of classes ``K``.
    """

    def __init__(self, primitive_names: list[str], B: sp.csr_matrix, n_classes: int) -> None:
        if B.shape[1] != len(primitive_names):
            raise ValueError(
                f"B has {B.shape[1]} columns but {len(primitive_names)} primitive names given"
            )
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        self.primitive_names = list(primitive_names)
        self.B = B.tocsr()
        self._B_csc: sp.csc_matrix | None = None
        self.n_classes = n_classes
        self._coverage_counts = np.asarray(self.B.sum(axis=0)).ravel()
        self._example_primitive_counts = np.diff(self.B.indptr)

    @property
    def B_csc(self) -> sp.csc_matrix:
        """Column-major twin of ``B``, built lazily and cached."""
        if self._B_csc is None:
            self._B_csc = self.B.tocsc()
        return self._B_csc

    @property
    def n_primitives(self) -> int:
        return len(self.primitive_names)

    def coverage_counts(self) -> np.ndarray:
        """Number of train examples containing each primitive, shape (|Z|,)."""
        return self._coverage_counts.copy()

    def examples_with_primitives(self) -> np.ndarray:
        """Boolean ``(n_train,)`` mask of examples containing ≥1 primitive."""
        return self._example_primitive_counts > 0

    def primitives_in(self, example_index: int) -> np.ndarray:
        """Primitive ids present in the given train example.

        Direct CSR index arithmetic — no intermediate sparse row object.
        """
        i = int(example_index)
        return self.B.indices[self.B.indptr[i] : self.B.indptr[i + 1]].copy()

    def make(self, primitive_id: int, label: int) -> MultiClassLF:
        """Construct the LF ``λ_{z,k}`` for a primitive id and class id."""
        if not 0 <= label < self.n_classes:
            raise ValueError(f"label must be in [0, {self.n_classes}), got {label}")
        return MultiClassLF(
            primitive_id=int(primitive_id),
            primitive=self.primitive_names[int(primitive_id)],
            label=int(label),
        )

    def make_by_token(self, token: str, label: int) -> MultiClassLF:
        """Construct an LF from a primitive token (raises if unknown)."""
        try:
            pid = self.primitive_names.index(token)
        except ValueError:
            raise KeyError(f"primitive {token!r} is not in the primitive domain") from None
        return self.make(pid, label)

    def explore_examples(self, primitive_id: int, k: int = 5, rng=None) -> np.ndarray:
        """The primitive-based example explorer (paper Sec. 7), multiclass."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        rng = ensure_rng(rng)
        covered = column_nonzero_rows(self.B_csc, primitive_id)
        if covered.size <= k:
            return np.sort(covered)
        return np.sort(rng.choice(covered, size=k, replace=False))

    def empirical_class_mass(self, proxy_proba: np.ndarray) -> np.ndarray:
        """Accuracy of ``λ_{z,k}`` for every ``(z, k)`` under a soft proxy.

        Returns the ``(|Z|, K)`` matrix ``acc[z, k] = P̂(y = k | z ∈ x)``
        estimated against a soft ground-truth proxy — the multiclass
        generalization of the binary family's ``empirical_accuracies``.
        Rows of uncovered primitives get the uniform ``1/K``.

        Parameters
        ----------
        proxy_proba:
            ``(n_train, K)`` end-model class probabilities (or a one-hot
            encoding of hard predictions).
        """
        P = np.asarray(proxy_proba, dtype=float)
        if P.shape != (self.B.shape[0], self.n_classes):
            raise ValueError(
                f"proxy_proba must have shape ({self.B.shape[0]}, {self.n_classes}), "
                f"got {P.shape}"
            )
        mass = np.asarray((self.B.T @ P))  # (|Z|, K)
        cov = self._coverage_counts[:, None]
        uniform = np.full_like(mass, 1.0 / self.n_classes)
        return np.divide(mass, cov, out=uniform, where=cov > 0)
