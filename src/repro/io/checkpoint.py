"""Durable checkpoint serialization (npz + JSON, atomic writes).

A checkpoint is a nested state tree mixing numpy arrays with plain JSON
values (scalars, strings, lists, dicts, ``None``) — the shape produced by
:meth:`repro.core.engine.IncrementalSessionEngine.state_dict` and the
sweep runner's job payloads.  This module serializes such a tree into a
single ``.ckpt.npz`` file:

* every array leaf is stored natively in the npz archive under a key
  derived from its path in the tree (exact dtype round-trip, no pickle);
* the remaining JSON tree — with each array leaf replaced by a reference
  marker — is stored under the reserved ``__checkpoint__`` entry,
  together with the format version.

Writes go through :func:`repro.io.atomic.atomic_replace` (temp file +
rename, exactly like ``save_transcript``): a crash mid-write leaves either
the previous complete checkpoint or none, never a torn one (resume code
trusts checkpoints blindly, so a torn file would corrupt the very state it
exists to preserve).  Loads are fail-closed: anything that
is not a well-formed checkpoint of a version this build knows — truncated
archive, missing entries, future format — raises :class:`CheckpointError`
rather than handing back a partially-reconstructed state.
"""

from __future__ import annotations

import json
import time
import zipfile
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.io.atomic import atomic_replace

#: Bumped whenever the on-disk layout changes incompatibly.  Loaders
#: accept exactly this version — state restoration is bit-level, so
#: best-effort reading of other layouts has no safe meaning.
CHECKPOINT_FORMAT_VERSION = 1

#: Reserved npz entry holding the JSON tree + format version.
_JSON_ENTRY = "__checkpoint__"

#: Marker wrapping an array reference in the JSON tree.
_ARRAY_MARKER = "__ckpt_array__"


class CheckpointError(ValueError):
    """A checkpoint file is unreadable, corrupted, or of an unknown version."""


def _flatten(value, path: str, arrays: dict[str, np.ndarray]):
    """Replace array leaves with reference markers, collecting them."""
    if isinstance(value, np.ndarray):
        arrays[path] = value
        return {_ARRAY_MARKER: path}
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, dict):
        if _ARRAY_MARKER in value:
            raise ValueError(f"state dicts may not use the reserved key {_ARRAY_MARKER!r}")
        return {str(k): _flatten(v, f"{path}/{k}", arrays) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_flatten(v, f"{path}/{i}", arrays) for i, v in enumerate(value)]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"checkpoint state at {path!r} has unsupported type {type(value).__name__}"
    )


def _unflatten(value, arrays):
    if isinstance(value, dict):
        if set(value.keys()) == {_ARRAY_MARKER}:
            key = value[_ARRAY_MARKER]
            if key not in arrays:
                raise CheckpointError(f"checkpoint references missing array {key!r}")
            return arrays[key]
        return {k: _unflatten(v, arrays) for k, v in value.items()}
    if isinstance(value, list):
        return [_unflatten(v, arrays) for v in value]
    return value


def save_checkpoint(path: str | Path, state: dict) -> Path:
    """Atomically write a state tree as a ``.ckpt.npz`` checkpoint."""
    path = Path(path)
    if not isinstance(state, dict):
        raise TypeError(f"checkpoint state must be a dict, got {type(state).__name__}")
    arrays: dict[str, np.ndarray] = {}
    tree = _flatten(state, "", arrays)
    payload = json.dumps({"format_version": CHECKPOINT_FORMAT_VERSION, "state": tree})
    entries = {_JSON_ENTRY: np.frombuffer(payload.encode("utf-8"), dtype=np.uint8)}
    for key, arr in arrays.items():
        entries[key] = arr
    return atomic_replace(path, lambda handle: np.savez(handle, **entries), binary=True)


def load_checkpoint(path: str | Path) -> dict:
    """Read a checkpoint written by :func:`save_checkpoint` (fail-closed).

    Raises
    ------
    CheckpointError
        If the file is missing, truncated, not an npz archive, lacks the
        reserved JSON entry, or declares a format version this build does
        not read.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            if _JSON_ENTRY not in archive.files:
                raise CheckpointError(
                    f"{path} is not a checkpoint (missing {_JSON_ENTRY!r} entry)"
                )
            try:
                payload = json.loads(bytes(archive[_JSON_ENTRY].tobytes()).decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                raise CheckpointError(f"{path} has a corrupted metadata entry: {exc}") from exc
            arrays = {key: archive[key] for key in archive.files if key != _JSON_ENTRY}
    except CheckpointError:
        raise
    except FileNotFoundError as exc:
        raise CheckpointError(f"checkpoint {path} does not exist") from exc
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise CheckpointError(f"{path} is not a readable checkpoint archive: {exc}") from exc
    version = payload.get("format_version") if isinstance(payload, dict) else None
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format version {version!r}; this build reads "
            f"version {CHECKPOINT_FORMAT_VERSION}"
        )
    state = payload.get("state")
    if not isinstance(state, dict):
        raise CheckpointError(f"{path} has no state tree")
    return _unflatten(state, arrays)


# --------------------------------------------------------------------- #
# retention: GC / rotation policy
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class RotationPolicy:
    """Retention policy for a directory of periodic checkpoints.

    Shared by the serve layer's per-session snapshots and the sweep
    store's per-job checkpoints: long-lived stores otherwise accumulate
    ``.ckpt.npz`` files without bound.

    ``keep_last``
        Keep at most this many files, newest first (``None`` = no count
        bound — the sweep store uses this, since its checkpoint directory
        holds one file per *different* job and a count bound across jobs
        would delete live state).
    ``max_age_seconds``
        Additionally drop any retained file older than this (``None`` =
        no age bound).

    The newest file is always kept, whatever the policy says — deleting
    the only restore point would turn retention into data loss.
    """

    keep_last: int | None = 3
    max_age_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.keep_last is not None and self.keep_last < 1:
            raise ValueError(f"keep_last must be >= 1 or None, got {self.keep_last}")
        if self.max_age_seconds is not None and self.max_age_seconds <= 0:
            raise ValueError(
                f"max_age_seconds must be > 0 or None, got {self.max_age_seconds}"
            )

    def stale(self, paths: Iterable[Path], now: float | None = None) -> list[Path]:
        """The files the policy says to delete (never includes the newest).

        Recency is modification time (name as a tie-break, so rotations
        over same-second writes stay deterministic); files that vanish
        concurrently are simply skipped.
        """
        if now is None:
            now = time.time()
        stamped: list[tuple[float, str, Path]] = []
        for path in paths:
            try:
                mtime = path.stat().st_mtime
            except FileNotFoundError:
                continue
            stamped.append((mtime, path.name, path))
        stamped.sort(reverse=True)
        stale: list[Path] = []
        for rank, (mtime, _, path) in enumerate(stamped):
            if rank == 0:
                continue  # the newest restore point is sacrosanct
            if self.keep_last is not None and rank >= self.keep_last:
                stale.append(path)
            elif (
                self.max_age_seconds is not None
                and now - mtime > self.max_age_seconds
            ):
                stale.append(path)
        return stale


def rotate_checkpoints(
    directory: str | Path,
    policy: RotationPolicy,
    pattern: str = "*.ckpt.npz",
    now: float | None = None,
) -> list[Path]:
    """Apply ``policy`` to the checkpoints in ``directory``; return deletions.

    A missing directory is an empty rotation, and concurrent deletion of
    an already-stale file is tolerated — rotation is maintenance, not a
    correctness gate.
    """
    directory = Path(directory)
    if not directory.exists():
        return []
    paths: Sequence[Path] = [p for p in directory.glob(pattern) if p.is_file()]
    deleted: list[Path] = []
    for path in policy.stale(paths, now=now):
        try:
            path.unlink()
        except FileNotFoundError:
            continue
        deleted.append(path)
    return deleted


# --------------------------------------------------------------------- #
# session-level conveniences
# --------------------------------------------------------------------- #
def save_session_checkpoint(session, path: str | Path, extra: dict | None = None) -> Path:
    """Snapshot a live session (plus optional caller payload) to ``path``.

    ``session`` is any object exposing the engine snapshot protocol
    (``state_dict``/``load_state_dict`` — both IDP sessions qualify).
    ``extra`` rides along for the caller — the sweep runner stores its
    protocol progress (curve so far, iteration cursor) there.
    """
    state = {"session": session.state_dict(), "extra": dict(extra or {})}
    return save_checkpoint(path, state)


def load_session_checkpoint(session, path: str | Path) -> dict:
    """Restore ``session`` in place from ``path``; returns the extra payload.

    Fail-closed like :func:`load_checkpoint`; additionally rejects
    checkpoints that do not carry a session snapshot (e.g. a foreign npz
    file that happens to parse).
    """
    state = load_checkpoint(path)
    payload = state.get("session")
    if not isinstance(payload, dict):
        raise CheckpointError(f"{path} does not contain a session snapshot")
    try:
        session.load_state_dict(payload)
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, CheckpointError):
            raise
        raise CheckpointError(f"{path} could not be restored: {exc}") from exc
    extra = state.get("extra")
    return extra if isinstance(extra, dict) else {}
