"""Transcript data model, JSON round-trip, and session replay.

A transcript is the persisted form of the IDP interaction history: the
ordered ``(iteration, dev_index, LF)`` triples of the lineage store
(paper Sec. 3's ``(Λ_t, S_t)`` tuples).  Iterations in which the user
produced no LF are not recorded — they leave the learning state untouched,
so a replay of the recorded triples reproduces the same sequence of label
matrices, label models, and end models.

Both the binary (:class:`repro.core.lf.PrimitiveLF`) and multiclass
(:class:`repro.multiclass.lf.MultiClassLF`) LF types serialize through a
``kind`` tag; primitives are stored by *token* (with the id as a
consistency check), so a transcript survives re-featurization as long as
the vocabulary is stable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.lf import PrimitiveLF
from repro.io.atomic import atomic_write_text
from repro.core.selection import DevDataSelector, SessionState
from repro.core.session import DataProgrammingSession, LFDeveloper

TRANSCRIPT_FORMAT_VERSION = 1

_LF_KINDS = {"binary", "multiclass"}


def _lf_to_dict(lf) -> dict:
    """Serialize a PrimitiveLF or MultiClassLF to plain JSON types."""
    from repro.multiclass.lf import MultiClassLF

    if isinstance(lf, PrimitiveLF):
        kind = "binary"
    elif isinstance(lf, MultiClassLF):
        kind = "multiclass"
    else:
        raise TypeError(f"cannot serialize LF of type {type(lf).__name__}")
    return {
        "kind": kind,
        "primitive_id": int(lf.primitive_id),
        "primitive": str(lf.primitive),
        "label": int(lf.label),
    }


def _lf_from_dict(data: dict):
    """Inverse of :func:`_lf_to_dict`."""
    kind = data.get("kind")
    if kind not in _LF_KINDS:
        raise ValueError(f"unknown LF kind {kind!r}; expected one of {sorted(_LF_KINDS)}")
    if kind == "binary":
        return PrimitiveLF(
            primitive_id=int(data["primitive_id"]),
            primitive=str(data["primitive"]),
            label=int(data["label"]),
        )
    from repro.multiclass.lf import MultiClassLF

    return MultiClassLF(
        primitive_id=int(data["primitive_id"]),
        primitive=str(data["primitive"]),
        label=int(data["label"]),
    )


@dataclass(frozen=True)
class TranscriptEntry:
    """One recorded interaction: the ``(Λ_t, S_t)`` tuple of iteration ``t``."""

    iteration: int
    dev_index: int
    lf: object  # PrimitiveLF | MultiClassLF

    def to_dict(self) -> dict:
        return {
            "iteration": int(self.iteration),
            "dev_index": int(self.dev_index),
            "lf": _lf_to_dict(self.lf),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TranscriptEntry":
        return cls(
            iteration=int(data["iteration"]),
            dev_index=int(data["dev_index"]),
            lf=_lf_from_dict(data["lf"]),
        )


@dataclass
class SessionTranscript:
    """A persisted IDP interaction history.

    Attributes
    ----------
    dataset_name:
        Name of the dataset the session ran on (consistency check at
        replay time).
    entries:
        The recorded interactions, ordered by iteration.
    metadata:
        Free-form provenance (method name, seed, user parameters, ...).
    """

    dataset_name: str
    entries: list[TranscriptEntry] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.entries)

    def __post_init__(self) -> None:
        iterations = [e.iteration for e in self.entries]
        if iterations != sorted(iterations):
            raise ValueError("transcript entries must be ordered by iteration")
        if len(set(iterations)) != len(iterations):
            raise ValueError("transcript entries must have distinct iterations")

    def to_dict(self) -> dict:
        return {
            "format_version": TRANSCRIPT_FORMAT_VERSION,
            "dataset_name": self.dataset_name,
            "metadata": dict(self.metadata),
            "entries": [e.to_dict() for e in self.entries],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionTranscript":
        version = data.get("format_version")
        if version != TRANSCRIPT_FORMAT_VERSION:
            raise ValueError(
                f"unsupported transcript format version {version!r}; "
                f"this build reads version {TRANSCRIPT_FORMAT_VERSION}"
            )
        return cls(
            dataset_name=str(data["dataset_name"]),
            entries=[TranscriptEntry.from_dict(e) for e in data["entries"]],
            metadata=dict(data.get("metadata", {})),
        )


def transcript_from_session(session, metadata: dict | None = None) -> SessionTranscript:
    """Extract the transcript of a (binary or multiclass) session.

    Works on any object exposing a ``lineage`` store and a ``dataset`` —
    both :class:`~repro.core.session.DataProgrammingSession` and
    :class:`~repro.multiclass.session.MultiClassSession` qualify.
    """
    entries = [
        TranscriptEntry(iteration=r.iteration, dev_index=r.dev_index, lf=r.lf)
        for r in session.lineage.records
    ]
    return SessionTranscript(
        dataset_name=session.dataset.name,
        entries=entries,
        metadata=dict(metadata or {}),
    )


def save_transcript(transcript: SessionTranscript, path: str | Path) -> Path:
    """Write a transcript as JSON atomically; returns the path written.

    An in-place write that crashes midway leaves a truncated file
    :func:`load_transcript` cannot parse, destroying the very history the
    transcript exists to preserve — so the write goes through
    :func:`repro.io.atomic.atomic_write_text` (temp file + rename):
    readers see either the old complete transcript or the new one, never a
    torn write.
    """
    payload = json.dumps(transcript.to_dict(), indent=2) + "\n"
    return atomic_write_text(path, payload)


def load_transcript(path: str | Path) -> SessionTranscript:
    """Read a transcript written by :func:`save_transcript`."""
    return SessionTranscript.from_dict(json.loads(Path(path).read_text()))


class ScriptedSelector(DevDataSelector):
    """Replays the recorded development-data choices, one per step.

    Returns ``None`` once the transcript is exhausted (the session then
    consumes the iteration without learning, as with an empty pool).
    """

    name = "scripted"

    def __init__(self, transcript: SessionTranscript) -> None:
        self.transcript = transcript
        self._cursor = 0

    def select(self, state: SessionState) -> int | None:
        if self._cursor >= len(self.transcript.entries):
            return None
        entry = self.transcript.entries[self._cursor]
        self._cursor += 1
        n = state.n_train
        if not 0 <= entry.dev_index < n:
            raise ValueError(
                f"transcript dev_index {entry.dev_index} out of range for "
                f"train split of size {n}"
            )
        return entry.dev_index


class ReplayUser(LFDeveloper):
    """Replays the recorded LFs, one per step, verifying the dev index.

    The replayed LF is rebuilt against the *current* dataset's primitive
    domain by token, so replay fails loudly (rather than silently voting
    through the wrong column) if the vocabulary changed.
    """

    def __init__(self, transcript: SessionTranscript) -> None:
        self.transcript = transcript
        self._cursor = 0

    def create_lf(self, dev_index: int, state):
        if self._cursor >= len(self.transcript.entries):
            return None
        entry = self.transcript.entries[self._cursor]
        self._cursor += 1
        if entry.dev_index != dev_index:
            raise ValueError(
                f"replay divergence at entry {self._cursor - 1}: recorded dev "
                f"index {entry.dev_index}, session selected {dev_index}"
            )
        rebuilt = state.family.make_by_token(entry.lf.primitive, entry.lf.label)
        if rebuilt.primitive_id != entry.lf.primitive_id:
            raise ValueError(
                f"primitive {entry.lf.primitive!r} moved from column "
                f"{entry.lf.primitive_id} to {rebuilt.primitive_id}; the "
                f"dataset was featurized differently from the recording"
            )
        return rebuilt


def replay_session(
    transcript: SessionTranscript,
    dataset,
    session_factory=None,
    **session_kwargs,
) -> object:
    """Re-drive a recorded interaction history through a learning pipeline.

    Parameters
    ----------
    transcript:
        The recorded history.
    dataset:
        The featurized dataset the transcript was recorded on (or an
        identically-featurized rebuild; name and vocabulary are checked).
    session_factory:
        Callable ``(dataset, selector, user, **kwargs) -> session``.
        Defaults to :class:`~repro.core.session.DataProgrammingSession`;
        pass :class:`~repro.multiclass.session.MultiClassSession` to replay
        a multiclass transcript.
    **session_kwargs:
        Forwarded to the factory — this is where a *different* learning
        pipeline is plugged in (``contextualizer=...``,
        ``label_model_factory=...``) to re-score recorded LFs, as the
        paper does for ImplyLoss on the Snorkel user-study LFs.

    Returns
    -------
    The session after all recorded interactions have been replayed.
    """
    if dataset.name != transcript.dataset_name:
        raise ValueError(
            f"transcript was recorded on {transcript.dataset_name!r} but the "
            f"given dataset is {dataset.name!r}"
        )
    factory = session_factory or DataProgrammingSession
    session = factory(
        dataset,
        ScriptedSelector(transcript),
        ReplayUser(transcript),
        **session_kwargs,
    )
    for _ in range(len(transcript.entries)):
        session.step()
    return session
