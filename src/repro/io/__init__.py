"""Session persistence and replay.

Records the interaction history of an IDP session — which development
example was shown at each iteration and which LF the user created — as a
JSON-serializable transcript, and replays a transcript through a (possibly
different) learning pipeline.

Replay is not a convenience: it is how the paper itself evaluates
alternative pipelines on human-generated LFs ("We compute the result for
ImplyLoss based on LFs created in the Snorkel user study", Sec. 5.2).  With
a transcript on disk, any learning-stage ablation — label model, distance
function, refinement percentile, contextualizer variant — can be re-scored
on the exact same recorded LF sequence without re-running the user.
"""

from repro.io.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    load_checkpoint,
    load_session_checkpoint,
    save_checkpoint,
    save_session_checkpoint,
)
from repro.io.session_store import (
    ReplayUser,
    ScriptedSelector,
    SessionTranscript,
    TranscriptEntry,
    load_transcript,
    replay_session,
    save_transcript,
    transcript_from_session,
)

__all__ = [
    "TranscriptEntry",
    "SessionTranscript",
    "transcript_from_session",
    "save_transcript",
    "load_transcript",
    "ReplayUser",
    "ScriptedSelector",
    "replay_session",
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "save_session_checkpoint",
    "load_session_checkpoint",
]
