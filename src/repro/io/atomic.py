"""Crash-safe file replacement, shared by every on-disk writer.

Transcripts, checkpoints, and sweep results all persist state that resume
code trusts blindly, so none of them may ever be observable half-written:
the payload goes to a temporary file in the destination directory and is
moved into place with :func:`os.replace` — readers see either the old
complete file or the new one, never a torn write.  The umask dance exists
because ``mkstemp`` creates 0600 files; restoring the umask-derived mode a
plain ``open()`` would have used keeps the artifacts shareable.  (chmod by
name, not ``fchmod`` — the latter is missing on Windows.)
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_replace(path: str | Path, write_fn, binary: bool = False) -> Path:
    """Atomically (re)write ``path`` with the output of ``write_fn(handle)``.

    ``write_fn`` receives an open file handle (text or binary per
    ``binary``) positioned at the start of a temporary file; on success the
    temp file replaces ``path`` in one rename.  Any failure — inside
    ``write_fn`` or the surrounding plumbing — removes the temp file and
    leaves a pre-existing ``path`` untouched.  Missing parent directories
    are created (every caller would otherwise have to wrap this with its
    own mkdir).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    fd_owned = True  # until fdopen takes ownership
    try:
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp_name, 0o666 & ~umask)
        handle = os.fdopen(fd, "wb" if binary else "w")
        fd_owned = False
        with handle:
            write_fn(handle)
        os.replace(tmp_name, path)
    except BaseException:
        if fd_owned:
            try:
                os.close(fd)
            except OSError:
                pass
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomically write a string to ``path``."""
    return atomic_replace(path, lambda handle: handle.write(text))
