"""repro — a full reproduction of *Nemo: Guiding and Contextualizing Weak
Supervision for Interactive Data Programming* (Hsieh, Zhang, Ratner;
PVLDB 15(13), 2022).

The package implements the complete Interactive Data Programming stack from
scratch: TF-IDF featurization, synthetic benchmark corpora, primitive-based
labeling functions, the SEU development-data selector, the LF
contextualizer, label models (MeTaL-style, majority vote, Dawid-Skene,
triplets, ImplyLoss), the logistic end model, simulated users, every
baseline of the paper's evaluation, and the experiment harness that
regenerates its tables and figures.

Beyond the paper's evaluated scope it ships the multiclass generalization
(:mod:`repro.multiclass`), the weighted context-sequence contextualizer the
paper names as future work (:mod:`repro.core.context_sequence`), session
transcripts with replay (:mod:`repro.io`), and a command-line interface
(``python -m repro``).

Quickstart
----------
>>> from repro import load_dataset, NemoConfig, SimulatedUser
>>> dataset = load_dataset("amazon", scale="tiny", seed=0)
>>> user = SimulatedUser(dataset, seed=0)
>>> session = NemoConfig().create_session(dataset, user, seed=0)
>>> score = session.run(10).test_score()
>>> 0.0 <= score <= 1.0
True
"""

from repro.core import (
    BatchDataProgrammingSession,
    BatchRandomSelector,
    BatchSEUSelector,
    DataProgrammingSession,
    LFContextualizer,
    LFFamily,
    LineageStore,
    NemoConfig,
    PrimitiveLF,
    SEUSelector,
    nemo_config,
    snorkel_config,
)
from repro.data import load_dataset
from repro.endmodel import SoftLabelLogisticRegression
from repro.experiments import evaluate_method, make_method, run_learning_curve
from repro.interactive import SimulatedUser
from repro.labelmodel import MetalLabelModel, make_label_model

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "load_dataset",
    "PrimitiveLF",
    "LFFamily",
    "LineageStore",
    "LFContextualizer",
    "SEUSelector",
    "DataProgrammingSession",
    "BatchDataProgrammingSession",
    "BatchSEUSelector",
    "BatchRandomSelector",
    "NemoConfig",
    "nemo_config",
    "snorkel_config",
    "SimulatedUser",
    "MetalLabelModel",
    "make_label_model",
    "SoftLabelLogisticRegression",
    "evaluate_method",
    "make_method",
    "run_learning_curve",
]
