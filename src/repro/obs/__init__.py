"""Observability: metrics registry, request tracing, structured logs.

Stdlib-only and determinism-neutral by contract — nothing in this
package touches any RNG, and none of its types may be stored in fitted
state or checkpoints (enforced by the ``obs-no-state-leak`` lint rule
plus the instrumentation-parity test suites).  See ENGINE.md §9.
"""

from .log import JsonLineFormatter, attach_stderr_handler, get_logger, log_event
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)
from .session import EngineObserver
from .trace import Span, current_span, make_request_id, normalize_request_id, request_span

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "EngineObserver",
    "Gauge",
    "Histogram",
    "JsonLineFormatter",
    "MetricsRegistry",
    "Span",
    "attach_stderr_handler",
    "current_span",
    "get_logger",
    "log_event",
    "make_request_id",
    "normalize_request_id",
    "parse_prometheus_text",
    "request_span",
]
