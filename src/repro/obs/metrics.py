"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

Design constraints (see ENGINE.md §9):

* stdlib only — no prometheus_client, no third-party exporters;
* thread-safe under the serve layer's ``ThreadingHTTPServer`` — every
  instrument guards its numbers with one small lock, updates are a few
  adds, never an allocation in the hot path after first touch;
* determinism-neutral — instruments never touch any RNG and never live
  inside fitted state (``obs-no-state-leak`` enforces the latter);
* snapshot-able to plain JSON and renderable in the Prometheus text
  exposition format (version 0.0.4) so the same registry backs
  ``GET /metrics``, ``GET /statusz``, and offline artifacts.

Label values are caller-supplied and MUST be bounded (command names,
outcome classes) — never session names, paths, or request ids, which
would grow child maps without bound.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "parse_prometheus_text",
]

# Seconds.  Spans 1ms..10s, enough resolution around the interactive
# 10-500ms band the serve path targets; +Inf is implicit.
DEFAULT_LATENCY_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _validate_labels(names, values):
    if len(values) != len(names):
        raise ValueError(
            f"expected {len(names)} label value(s) for {names!r}, got {values!r}"
        )
    return tuple(str(v) for v in values)


def _escape_label_value(value):
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value):
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value)) if isinstance(value, float) else str(value)


class _Instrument:
    """Shared shell: name, help text, label schema, per-child cells."""

    kind = "untyped"

    def __init__(self, name, help_text, label_names=()):
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._children = {}

    def _cell(self, label_values):
        key = _validate_labels(self.label_names, label_values)
        cell = self._children.get(key)
        if cell is None:
            with self._lock:
                cell = self._children.setdefault(key, self._new_cell())
        return cell

    def _new_cell(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, *label_values):
        """Return a bound child; with no labels the single default child."""
        return _Bound(self, _validate_labels(self.label_names, label_values))

    def label_sets(self):
        """Every label-value tuple this instrument has been touched with."""
        with self._lock:
            return sorted(self._children)

    def _iter_children(self):
        with self._lock:
            return sorted(self._children.items())


class _Bound:
    """A (instrument, label values) pair exposing the write methods."""

    def __init__(self, instrument, label_values):
        self._instrument = instrument
        self._label_values = label_values

    def inc(self, amount=1.0):
        self._instrument.inc(*self._label_values, amount=amount)

    def set(self, value):
        self._instrument.set(*self._label_values, value=value)

    def observe(self, value):
        self._instrument.observe(*self._label_values, value=value)


class Counter(_Instrument):
    """Monotonically increasing float, optionally labeled."""

    kind = "counter"

    def _new_cell(self):
        return [0.0]

    def inc(self, *label_values, amount=1.0):
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        cell = self._cell(label_values)
        with self._lock:
            cell[0] += amount

    def value(self, *label_values):
        cell = self._cell(label_values)
        with self._lock:
            return cell[0]

    def items(self):
        """``[(label_values, value), ...]`` over every touched child."""
        return [(key, cell[0]) for key, cell in self._iter_children()]

    def snapshot(self):
        return {
            "type": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
            "values": [
                {"labels": list(key), "value": cell[0]}
                for key, cell in self._iter_children()
            ],
        }

    def render(self, lines):
        lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key, cell in self._iter_children():
            lines.append(f"{self.name}{_label_suffix(self.label_names, key)} {_format_value(cell[0])}")


class Gauge(_Instrument):
    """A value that can go up and down (live sessions, active cold starts)."""

    kind = "gauge"

    def _new_cell(self):
        return [0.0]

    def set(self, *label_values, value):
        cell = self._cell(label_values)
        with self._lock:
            cell[0] = float(value)

    def inc(self, *label_values, amount=1.0):
        cell = self._cell(label_values)
        with self._lock:
            cell[0] += amount

    def dec(self, *label_values, amount=1.0):
        self.inc(*label_values, amount=-amount)

    def value(self, *label_values):
        cell = self._cell(label_values)
        with self._lock:
            return cell[0]

    items = Counter.items
    snapshot = Counter.snapshot
    render = Counter.render


class Histogram(_Instrument):
    """Fixed-bucket histogram with cumulative bucket counts.

    Buckets are upper bounds (le); +Inf is implicit.  ``quantile`` gives a
    bucket-interpolated estimate — good enough for statusz p50/p99, not a
    substitute for client-side percentiles (the loadtest keeps both and
    cross-checks the counts).
    """

    kind = "histogram"

    def __init__(self, name, help_text, label_names=(), buckets=DEFAULT_LATENCY_BUCKETS):
        super().__init__(name, help_text, label_names)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds

    def _new_cell(self):
        # [count, sum, per-bucket counts...] — bucket counts stored
        # non-cumulative, cumulated at render/snapshot time.
        return [0, 0.0] + [0] * (len(self.bounds) + 1)

    def observe(self, *label_values, value):
        value = float(value)
        cell = self._cell(label_values)
        idx = _bucket_index(self.bounds, value)
        with self._lock:
            cell[0] += 1
            cell[1] += value
            cell[2 + idx] += 1

    def count(self, *label_values):
        cell = self._cell(label_values)
        with self._lock:
            return cell[0]

    def sum(self, *label_values):
        cell = self._cell(label_values)
        with self._lock:
            return cell[1]

    def quantile(self, q, *label_values):
        """Bucket-interpolated quantile estimate in the observed unit."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        cell = self._cell(label_values)
        with self._lock:
            total = cell[0]
            counts = list(cell[2:])
        if total == 0:
            return None
        rank = q * total
        seen = 0
        for i, n in enumerate(counts):
            seen += n
            if seen >= rank and n:
                hi = self.bounds[i] if i < len(self.bounds) else self.bounds[-1]
                lo = self.bounds[i - 1] if 0 < i <= len(self.bounds) else 0.0
                frac = (rank - (seen - n)) / n
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
        return self.bounds[-1]

    def snapshot(self):
        values = []
        for key, cell in self._iter_children():
            with self._lock:
                count, total = cell[0], cell[1]
                counts = list(cell[2:])
            cumulative = []
            running = 0
            for n in counts:
                running += n
                cumulative.append(running)
            values.append(
                {
                    "labels": list(key),
                    "count": count,
                    "sum": total,
                    "buckets": [
                        {"le": le, "count": c}
                        for le, c in zip(list(self.bounds) + [math.inf], cumulative)
                    ],
                }
            )
        return {
            "type": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
            "values": values,
        }

    def render(self, lines):
        lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key, cell in self._iter_children():
            with self._lock:
                count, total = cell[0], cell[1]
                counts = list(cell[2:])
            running = 0
            for le, n in zip(list(self.bounds) + [math.inf], counts):
                running += n
                suffix = _label_suffix(self.label_names + ("le",), key + (_format_value(le),))
                lines.append(f"{self.name}_bucket{suffix} {running}")
            base = _label_suffix(self.label_names, key)
            lines.append(f"{self.name}_sum{base} {_format_value(total)}")
            lines.append(f"{self.name}_count{base} {count}")


def _bucket_index(bounds, value):
    lo, hi = 0, len(bounds)
    while lo < hi:
        mid = (lo + hi) // 2
        if value <= bounds[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


def _label_suffix(names, values):
    if not names:
        return ""
    pairs = ",".join(
        f'{n}="{_escape_label_value(v)}"' for n, v in zip(names, values)
    )
    return "{" + pairs + "}"


class MetricsRegistry:
    """A named collection of instruments, one per process component.

    Instruments are created once (``counter``/``gauge``/``histogram`` are
    get-or-create, raising on a kind mismatch) so call sites can re-declare
    rather than thread instrument handles through every layer.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments = {}

    def _get_or_create(self, cls, name, help_text, label_names, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.label_names != tuple(label_names):
                    raise ValueError(
                        f"metric {name!r} re-registered with a different "
                        f"kind or label schema"
                    )
                return existing
            instrument = cls(name, help_text, label_names, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name, help_text, label_names=()):
        return self._get_or_create(Counter, name, help_text, label_names)

    def gauge(self, name, help_text, label_names=()):
        return self._get_or_create(Gauge, name, help_text, label_names)

    def histogram(self, name, help_text, label_names=(), buckets=DEFAULT_LATENCY_BUCKETS):
        return self._get_or_create(
            Histogram, name, help_text, label_names, buckets=buckets
        )

    def get(self, name):
        with self._lock:
            return self._instruments.get(name)

    def snapshot(self):
        """JSON-safe dict of every instrument's current numbers."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {name: inst.snapshot() for name, inst in instruments}

    def render_prometheus(self):
        """Prometheus text exposition format (0.0.4), trailing newline."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        lines = []
        for _, inst in instruments:
            inst.render(lines)
        return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus_text(text):
    """Parse exposition text back into ``{sample_name{labels}: value}``.

    Deliberately minimal — enough for the smoke script and tests to check
    non-emptiness and counter monotonicity across two scrapes.  Keys are
    the raw sample lines' name+label strings, values are floats.
    """
    samples = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, raw = line.rpartition(" ")
        if not key:
            continue
        value = math.inf if raw == "+Inf" else float(raw)
        samples[key] = value
    return samples
