"""Structured JSON logging for the serve path.

One logger (``repro.obs.log``), one formatter: every record renders as a
single JSON object per line with a stable field order (ts, level, msg,
then sorted extras).  Libraries must stay silent by default, so the
logger ships with a ``NullHandler``; ``repro serve`` attaches a stderr
handler via :func:`attach_stderr_handler`.

Timestamps come from ``time.time`` at emit — they live only on the log
stream, never in fitted state, so determinism-neutrality holds.
"""

from __future__ import annotations

import json
import logging

__all__ = ["JsonLineFormatter", "attach_stderr_handler", "get_logger", "log_event"]

LOGGER_NAME = "repro.obs.log"

_RESERVED = frozenset(logging.LogRecord("", 0, "", 0, "", (), None).__dict__) | {
    "message",
    "asctime",
    "taskName",
}


class JsonLineFormatter(logging.Formatter):
    """Render a LogRecord as one JSON line; extras become fields."""

    def format(self, record):
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "msg": record.getMessage(),
        }
        for key in sorted(record.__dict__):
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = record.__dict__[key]
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, sort_keys=False)


def get_logger():
    logger = logging.getLogger(LOGGER_NAME)
    if not logger.handlers:
        logger.addHandler(logging.NullHandler())
    return logger


def attach_stderr_handler(level=logging.INFO, stream=None):
    """Attach the shared JSON formatter to stderr (idempotent)."""
    logger = get_logger()
    for handler in logger.handlers:
        if getattr(handler, "_repro_obs_stderr", False):
            return logger
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonLineFormatter())
    handler._repro_obs_stderr = True
    logger.addHandler(handler)
    logger.setLevel(level)
    return logger


def log_event(msg, /, **fields):
    """Emit one structured line (no-op unless a handler is attached)."""
    get_logger().info(msg, extra=fields)
