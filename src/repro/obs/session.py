"""EngineObserver: bridges engine-side attribution into metrics + spans.

``IncrementalSessionEngine`` keeps a *transient* ``observer`` attribute
(never checkpointed — see ``obs-no-state-leak``).  After each command it
calls :meth:`EngineObserver.on_command` with a plain dict describing what
just happened: which command, per-phase compute seconds, whether the
refit took the cold path, which end-model fit mode ran, and — for
submit/decline — how long the proposal sat open (human think-time, kept
separate from compute since the develop-split fix).

One observer instance is shared across all live sessions of a
:class:`~repro.serve.manager.SessionManager`; label cardinality stays
bounded (phase names, fit modes), never per-session.
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from .trace import current_span

__all__ = ["EngineObserver"]

# Engine compute phases that may appear in a command's attribution.
ENGINE_PHASES = ("select", "develop", "label_model", "end_model", "contextualize")


class EngineObserver:
    """Accumulates engine command attribution into a metrics registry."""

    def __init__(self, registry=None):
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self.commands = r.counter(
            "repro_engine_commands_total",
            "Engine commands executed, by command.",
            ("command",),
        )
        self.phase_seconds = r.counter(
            "repro_engine_phase_seconds_total",
            "Engine compute seconds accrued, by phase.",
            ("phase",),
        )
        self.refits = r.counter(
            "repro_engine_refits_total",
            "Label-model refits, by path (warm or cold backstop).",
            ("path",),
        )
        self.end_fits = r.counter(
            "repro_engine_end_fits_total",
            "End-model fits, by mode.",
            ("mode",),
        )
        self.open_interval_seconds = r.counter(
            "repro_engine_open_interval_seconds_total",
            "Wall seconds proposals sat open awaiting the user (not compute).",
        )
        self.em_iterations = r.counter(
            "repro_labelmodel_em_iterations_total",
            "Label-model EM/SGD iterations run, by refit path.",
            ("path",),
        )
        self.label_fit_seconds = r.counter(
            "repro_labelmodel_fit_seconds_total",
            "Label-model fit wall seconds, by refit path.",
            ("path",),
        )

    def on_command(self, info):
        """Record one engine command's attribution dict.

        ``info`` is engine-built and JSON-safe: ``command`` (str),
        ``phases`` ({phase: seconds}), optional ``refit``
        ({"path": "warm"|"cold", "end_fit_mode": str}), optional
        ``open_interval_seconds`` (float).
        """
        command = info.get("command", "unknown")
        self.commands.inc(command)
        phases = info.get("phases") or {}
        for phase, seconds in phases.items():
            self.phase_seconds.inc(phase, amount=float(seconds))
        refit = info.get("refit")
        if refit:
            path = refit.get("path", "unknown")
            self.refits.inc(path)
            mode = refit.get("end_fit_mode")
            if mode:
                self.end_fits.inc(mode)
            em_iterations = refit.get("em_iterations")
            if em_iterations is not None:
                self.em_iterations.inc(path, amount=int(em_iterations))
            fit_seconds = refit.get("fit_seconds")
            if fit_seconds is not None:
                self.label_fit_seconds.inc(path, amount=float(fit_seconds))
        open_interval = info.get("open_interval_seconds")
        if open_interval is not None:
            self.open_interval_seconds.inc(amount=float(open_interval))

        span = current_span()
        if span is not None:
            for phase, seconds in phases.items():
                span.add_phase(f"engine.{phase}", float(seconds))
            if refit:
                span.annotate(
                    refit_path=refit.get("path"),
                    end_fit_mode=refit.get("end_fit_mode"),
                )
            if open_interval is not None:
                span.annotate(open_interval_ms=round(float(open_interval) * 1000.0, 3))
