"""Request tracing: ids, spans, per-phase child timings.

A :class:`Span` is a lightweight in-process trace record for one serve
command: request id, command name, wall-clock window, named phase
timings (restore, latch_wait, engine select/develop/...), point events
(eviction, snapshot, cold_start) and free-form annotations.  Spans are
propagated down the call stack via a ``contextvars.ContextVar`` so the
manager and engine can attribute work without threading a span argument
through every signature.

Request ids are minted without randomness — a process-wide monotonic
counter plus the pid — so tracing stays determinism-neutral (nothing
here touches any RNG; the ``obs-no-state-leak`` lint rule keeps span
state out of checkpoints).  An inbound ``X-Request-Id`` always wins.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import os
import time

__all__ = ["Span", "current_span", "make_request_id", "normalize_request_id", "request_span"]

_REQUEST_COUNTER = itertools.count(1)

_CURRENT_SPAN = contextvars.ContextVar("repro_obs_current_span", default=None)

# Inbound ids are caller-controlled; clamp what we echo back / log.
_MAX_REQUEST_ID_LEN = 128


def make_request_id():
    """Mint a process-unique request id without touching any RNG."""
    return f"req-{os.getpid():x}-{next(_REQUEST_COUNTER):08x}"


def normalize_request_id(raw):
    """Honor an inbound X-Request-Id when sane, mint otherwise."""
    if raw:
        cleaned = "".join(ch for ch in str(raw).strip() if ch.isprintable())
        if cleaned:
            return cleaned[:_MAX_REQUEST_ID_LEN]
    return make_request_id()


class Span:
    """One command's trace record.

    Not thread-safe by design: a span belongs to the single handler
    thread that created it.  Cross-thread attribution (e.g. a latch wait
    on another thread's restore) is recorded on the *waiting* thread's
    span.
    """

    __slots__ = ("request_id", "name", "started_at", "ended_at", "phases", "events", "annotations")

    def __init__(self, name, request_id=None):
        self.request_id = request_id or make_request_id()
        self.name = name
        self.started_at = time.perf_counter()
        self.ended_at = None
        self.phases = {}
        self.events = []
        self.annotations = {}

    def add_phase(self, phase, seconds):
        """Accrue ``seconds`` of wall time to a named child phase."""
        self.phases[phase] = self.phases.get(phase, 0.0) + float(seconds)

    @contextlib.contextmanager
    def phase(self, name):
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.add_phase(name, time.perf_counter() - t0)

    def event(self, name, **fields):
        """Record a point event (eviction, snapshot, cold_start, ...)."""
        self.events.append({"event": name, **fields})

    def annotate(self, **fields):
        self.annotations.update(fields)

    def finish(self):
        if self.ended_at is None:
            self.ended_at = time.perf_counter()
        return self

    @property
    def duration(self):
        end = self.ended_at if self.ended_at is not None else time.perf_counter()
        return end - self.started_at

    def to_dict(self):
        """JSON-safe summary for the structured access log."""
        out = {
            "request_id": self.request_id,
            "span": self.name,
            "duration_ms": round(self.duration * 1000.0, 3),
        }
        if self.phases:
            out["phases_ms"] = {
                k: round(v * 1000.0, 3) for k, v in sorted(self.phases.items())
            }
        if self.events:
            out["events"] = list(self.events)
        if self.annotations:
            out.update(self.annotations)
        return out


def current_span():
    """The span of the request being handled on this thread, or None."""
    return _CURRENT_SPAN.get()


@contextlib.contextmanager
def request_span(name, request_id=None):
    """Install a span as the current one for the dynamic extent."""
    span = Span(name, request_id=request_id)
    token = _CURRENT_SPAN.set(span)
    try:
        yield span
    finally:
        span.finish()
        _CURRENT_SPAN.reset(token)
