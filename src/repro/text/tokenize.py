"""Tokenization utilities.

Nemo's primitive domain for text tasks is "the set of uni-grams in the
unlabeled set" (Example 4.1); this module provides the tokenizer that
defines those uni-grams, plus an n-gram helper for richer primitive domains.
"""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(r"[a-z0-9']+")


def simple_tokenize(text: str, lowercase: bool = True) -> list[str]:
    """Split ``text`` into word tokens.

    Lowercases (by default), then extracts maximal runs of
    ``[a-z0-9']`` characters — punctuation and whitespace act as
    delimiters.  This mirrors the standard bag-of-words preprocessing used
    by the paper's TF-IDF featurization.

    Examples
    --------
    >>> simple_tokenize("Perfect for my work-outs!")
    ['perfect', 'for', 'my', 'work', 'outs']
    >>> simple_tokenize("Don't stop")
    ["don't", 'stop']
    """
    if lowercase:
        text = text.lower()
    return _TOKEN_RE.findall(text)


def ngrams(tokens: list[str], n: int) -> list[str]:
    """Return the ``n``-grams of a token list, joined with spaces.

    Examples
    --------
    >>> ngrams(["a", "b", "c"], 2)
    ['a b', 'b c']
    >>> ngrams(["a"], 2)
    []
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return list(tokens)
    return [" ".join(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]
