"""Distance functions used by the LF contextualizer (Eq. 4).

The paper evaluates cosine distance (default, Table 9 winner) and euclidean
distance.  All functions accept dense arrays or ``scipy.sparse`` matrices and
are vectorized: the contextualizer only ever needs distances from *one*
development point to all examples, so :func:`distances_to_point` is the hot
path.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
import scipy.sparse as sp

Matrix = "np.ndarray | sp.spmatrix"

#: Names accepted by :func:`get_distance_fn`.
DISTANCE_NAMES = ("cosine", "euclidean")


def _as_dense_rows(X) -> np.ndarray:
    if sp.issparse(X):
        return np.asarray(X.todense(), dtype=float)
    arr = np.asarray(X, dtype=float)
    if arr.ndim == 1:
        arr = arr[None, :]
    return arr


def _row_norms(X) -> np.ndarray:
    if sp.issparse(X):
        return np.sqrt(np.asarray(X.multiply(X).sum(axis=1))).ravel()
    return np.linalg.norm(np.asarray(X, dtype=float), axis=1)


def cosine_distances_to_point(X, point) -> np.ndarray:
    """Cosine distance (``1 - cos``) from every row of ``X`` to ``point``.

    Zero vectors are assigned the maximal distance 1.0 (no directional
    information means "not close to anything").
    """
    p = _as_dense_rows(point).ravel()
    p_norm = np.linalg.norm(p)
    norms = _row_norms(X)
    dots = np.asarray(X @ p).ravel()
    denom = norms * p_norm
    sims = np.divide(dots, denom, out=np.zeros_like(dots), where=denom > 0)
    return 1.0 - np.clip(sims, -1.0, 1.0)


def euclidean_distances_to_point(X, point) -> np.ndarray:
    """Euclidean distance from every row of ``X`` to ``point``.

    Uses the expansion ``||x - p||^2 = ||x||^2 - 2 x·p + ||p||^2`` so that
    sparse inputs never get densified.
    """
    p = _as_dense_rows(point).ravel()
    sq_norms = _row_norms(X) ** 2
    dots = np.asarray(X @ p).ravel()
    sq = sq_norms - 2.0 * dots + float(p @ p)
    return np.sqrt(np.maximum(sq, 0.0))


def distances_to_point(X, point, metric: str = "cosine") -> np.ndarray:
    """Dispatch to the named point-to-rows distance function."""
    return get_distance_fn(metric)(X, point)


def get_distance_fn(metric: str) -> Callable:
    """Return the ``(X, point) -> distances`` function for ``metric``.

    Raises ``ValueError`` for unknown names so configuration errors surface
    immediately.
    """
    if metric == "cosine":
        return cosine_distances_to_point
    if metric == "euclidean":
        return euclidean_distances_to_point
    raise ValueError(f"unknown distance metric {metric!r}; choose from {DISTANCE_NAMES}")


def cosine_distance_matrix(X, Y=None) -> np.ndarray:
    """Full pairwise cosine-distance matrix between rows of ``X`` and ``Y``.

    ``Y`` defaults to ``X``.  Intended for analysis (Figure 2) on modest
    corpus sizes; the interactive loop itself never materializes this.
    """
    if Y is None:
        Y = X
    x_norms = _row_norms(X)
    y_norms = _row_norms(Y)
    dots = np.asarray((X @ Y.T).todense() if sp.issparse(X) and sp.issparse(Y) else X @ Y.T)
    denom = np.outer(x_norms, y_norms)
    sims = np.divide(dots, denom, out=np.zeros_like(dots, dtype=float), where=denom > 0)
    return 1.0 - np.clip(sims, -1.0, 1.0)


def euclidean_distance_matrix(X, Y=None) -> np.ndarray:
    """Full pairwise euclidean-distance matrix between rows of ``X`` and ``Y``."""
    if Y is None:
        Y = X
    x_sq = _row_norms(X) ** 2
    y_sq = _row_norms(Y) ** 2
    dots = np.asarray((X @ Y.T).todense() if sp.issparse(X) and sp.issparse(Y) else X @ Y.T)
    sq = x_sq[:, None] - 2.0 * dots + y_sq[None, :]
    return np.sqrt(np.maximum(sq, 0.0))
