"""TF-IDF featurization built on :mod:`scipy.sparse`.

Implements the smoothed-IDF, L2-normalized variant that is the de-facto
standard (and what the paper's featurization uses): ``idf(t) =
ln((1 + n) / (1 + df(t))) + 1``, applied to raw term counts and followed by
row-wise L2 normalization.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np
import scipy.sparse as sp

from repro.text.tokenize import simple_tokenize
from repro.text.vocab import Vocabulary


class TfidfVectorizer:
    """Fit a vocabulary on a corpus and transform documents to TF-IDF rows.

    Parameters
    ----------
    min_df:
        Minimum document frequency for a token to enter the vocabulary.
    max_df_ratio:
        Maximum document-frequency *ratio* for a token (filters
        near-stopwords).
    sublinear_tf:
        If true, replace raw term counts ``tf`` with ``1 + ln(tf)``.
    normalize:
        If true (default), L2-normalize each row so cosine similarity is a
        plain dot product.
    tokenizer:
        Callable mapping a raw string to a token list; defaults to
        :func:`repro.text.tokenize.simple_tokenize`.

    Examples
    --------
    >>> vec = TfidfVectorizer(min_df=1)
    >>> X = vec.fit_transform(["good movie", "bad movie"])
    >>> X.shape == (2, 3)
    True
    """

    def __init__(
        self,
        min_df: int = 1,
        max_df_ratio: float = 1.0,
        sublinear_tf: bool = False,
        normalize: bool = True,
        tokenizer=simple_tokenize,
    ) -> None:
        self.min_df = min_df
        self.max_df_ratio = max_df_ratio
        self.sublinear_tf = sublinear_tf
        self.normalize = normalize
        self.tokenizer = tokenizer
        self.vocabulary: Vocabulary | None = None
        self._idf: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # fitting
    # ------------------------------------------------------------------ #
    def fit(self, docs: Iterable[str]) -> "TfidfVectorizer":
        """Learn the vocabulary and IDF weights from ``docs``."""
        tokenized = [self.tokenizer(doc) for doc in docs]
        self.vocabulary = Vocabulary(
            min_df=self.min_df, max_df_ratio=self.max_df_ratio
        ).fit(tokenized)
        n_docs = max(len(tokenized), 1)
        df = np.array(
            [self.vocabulary.doc_frequency(tok) for tok in self.vocabulary.tokens],
            dtype=float,
        )
        self._idf = np.log((1.0 + n_docs) / (1.0 + df)) + 1.0
        return self

    def fit_transform(self, docs: Iterable[str]) -> sp.csr_matrix:
        """Equivalent to ``fit(docs)`` followed by ``transform(docs)``."""
        docs = list(docs)
        self.fit(docs)
        return self.transform(docs)

    # ------------------------------------------------------------------ #
    # transforming
    # ------------------------------------------------------------------ #
    def transform(self, docs: Iterable[str]) -> sp.csr_matrix:
        """Map documents to a sparse ``(n_docs, vocab_size)`` TF-IDF matrix.

        Tokens outside the fitted vocabulary are ignored.
        """
        if self.vocabulary is None or self._idf is None:
            raise RuntimeError("TfidfVectorizer.transform called before fit")
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        n_docs = 0
        for row_idx, doc in enumerate(docs):
            n_docs += 1
            counts: dict[int, int] = {}
            for token in self.tokenizer(doc):
                col = self.vocabulary.get(token)
                if col is not None:
                    counts[col] = counts.get(col, 0) + 1
            for col, count in counts.items():
                tf = 1.0 + np.log(count) if self.sublinear_tf else float(count)
                rows.append(row_idx)
                cols.append(col)
                vals.append(tf * self._idf[col])
        matrix = sp.csr_matrix(
            (vals, (rows, cols)), shape=(n_docs, len(self.vocabulary)), dtype=float
        )
        if self.normalize:
            matrix = _l2_normalize_rows(matrix)
        return matrix

    @property
    def idf(self) -> np.ndarray:
        """The fitted IDF vector (one weight per vocabulary token)."""
        if self._idf is None:
            raise RuntimeError("TfidfVectorizer has not been fitted")
        return self._idf.copy()


def _l2_normalize_rows(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Return a copy of ``matrix`` with each non-empty row scaled to unit L2 norm."""
    matrix = matrix.tocsr(copy=True)
    row_norms = np.sqrt(np.asarray(matrix.multiply(matrix).sum(axis=1))).ravel()
    scale = np.divide(
        1.0, row_norms, out=np.zeros_like(row_norms), where=row_norms > 0
    )
    diag = sp.diags(scale)
    return (diag @ matrix).tocsr()
