"""Vocabulary: a bidirectional token <-> index mapping with frequency filters.

The vocabulary doubles as Nemo's *primitive domain* ``Z`` for text tasks:
every retained token is a candidate LF primitive.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator


class Vocabulary:
    """An ordered token <-> integer-id mapping.

    Tokens are assigned ids in the order they are added (via
    :meth:`add` or :meth:`fit`), which keeps downstream feature matrices
    deterministic for a fixed corpus.

    Parameters
    ----------
    min_df:
        When built with :meth:`fit`, drop tokens that appear in fewer than
        this many documents.
    max_df_ratio:
        When built with :meth:`fit`, drop tokens that appear in more than
        this fraction of documents (near-stopwords).
    """

    def __init__(self, min_df: int = 1, max_df_ratio: float = 1.0) -> None:
        if min_df < 1:
            raise ValueError(f"min_df must be >= 1, got {min_df}")
        if not 0.0 < max_df_ratio <= 1.0:
            raise ValueError(f"max_df_ratio must be in (0, 1], got {max_df_ratio}")
        self.min_df = min_df
        self.max_df_ratio = max_df_ratio
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        self._doc_freq: Counter[str] = Counter()
        self._n_docs = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add(self, token: str) -> int:
        """Add a token (idempotent) and return its id."""
        existing = self._token_to_id.get(token)
        if existing is not None:
            return existing
        idx = len(self._id_to_token)
        self._token_to_id[token] = idx
        self._id_to_token.append(token)
        return idx

    def fit(self, tokenized_docs: Iterable[list[str]]) -> "Vocabulary":
        """Build the vocabulary from tokenized documents, applying filters.

        Document frequency (not term frequency) drives both the ``min_df``
        and ``max_df_ratio`` filters, matching the conventional TF-IDF
        pipeline.  Returns ``self`` for chaining.
        """
        docs = list(tokenized_docs)
        self._n_docs = len(docs)
        self._doc_freq = Counter()
        for tokens in docs:
            self._doc_freq.update(set(tokens))
        max_df = self.max_df_ratio * max(self._n_docs, 1)
        self._token_to_id = {}
        self._id_to_token = []
        for tokens in docs:
            for token in tokens:
                if token in self._token_to_id:
                    continue
                df = self._doc_freq[token]
                if df >= self.min_df and df <= max_df:
                    self.add(token)
        return self

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def id_of(self, token: str) -> int:
        """Return the id of ``token``; raises ``KeyError`` if absent."""
        return self._token_to_id[token]

    def token_of(self, idx: int) -> str:
        """Return the token with id ``idx``."""
        return self._id_to_token[idx]

    def get(self, token: str, default: int | None = None) -> int | None:
        """Return the id of ``token`` or ``default`` when absent."""
        return self._token_to_id.get(token, default)

    def doc_frequency(self, token: str) -> int:
        """Document frequency of ``token`` observed during :meth:`fit`."""
        return self._doc_freq.get(token, 0)

    @property
    def n_docs_fitted(self) -> int:
        """Number of documents seen by the last :meth:`fit` call."""
        return self._n_docs

    @property
    def tokens(self) -> list[str]:
        """All tokens, ordered by id (a copy)."""
        return list(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_token)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Vocabulary(size={len(self)}, min_df={self.min_df})"
