"""Text substrate: tokenization, vocabulary, TF-IDF features, distances.

The paper featurizes text with TF-IDF and measures inter-example proximity
with cosine (default) or euclidean distance; this subpackage implements that
stack from scratch on top of ``numpy``/``scipy.sparse``.
"""

from repro.text.distance import (
    cosine_distance_matrix,
    distances_to_point,
    euclidean_distance_matrix,
    get_distance_fn,
)
from repro.text.tfidf import TfidfVectorizer
from repro.text.tokenize import simple_tokenize, ngrams
from repro.text.vocab import Vocabulary

__all__ = [
    "simple_tokenize",
    "ngrams",
    "Vocabulary",
    "TfidfVectorizer",
    "cosine_distance_matrix",
    "euclidean_distance_matrix",
    "distances_to_point",
    "get_distance_fn",
]
