"""Curated word banks for the synthetic corpus generator.

The paper evaluates on public corpora (Amazon/Yelp/IMDB reviews, YouTube/SMS
spam, Visual Genome scene graphs) that are unavailable offline.  The
synthetic generator in :mod:`repro.data.synthetic` rebuilds corpora with the
same *structure* — latent category clusters, globally reliable cue words, and
cluster-local cue words whose polarity is only reliable near their home
cluster (Example 1.1 of the paper).  These word banks supply realistic
vocabulary for each dataset flavour so that generated documents, primitives,
and lexicons read like their real counterparts.

Nothing here is load-bearing for the algorithms: swapping any list for
random strings changes only the aesthetics of examples and error messages.
"""

from __future__ import annotations

#: Neutral high-frequency filler shared by every text dataset.  These words
#: carry no label signal and mostly get filtered by the ``max_df_ratio``
#: vocabulary cut, exactly like real stopwords.
COMMON_FILLER = [
    "the", "a", "an", "and", "or", "but", "so", "to", "of", "in", "on",
    "for", "with", "at", "by", "from", "as", "it", "its", "this", "that",
    "these", "those", "i", "we", "you", "they", "he", "she", "my", "our",
    "your", "their", "is", "are", "was", "were", "be", "been", "have",
    "has", "had", "do", "does", "did", "will", "would", "can", "could",
    "should", "may", "might", "just", "also", "very", "really", "quite",
    "then", "than", "when", "while", "after", "before", "because", "if",
    "about", "into", "over", "under", "again", "more", "most", "some",
    "any", "all", "both", "each", "few", "other", "such", "only", "own",
    "same", "too", "not", "no", "nor", "now", "here", "there", "what",
    "which", "who", "how", "why", "where", "out", "up", "down", "off",
]

# --------------------------------------------------------------------- #
# Sentiment cue words (global: reliable in every category)
# --------------------------------------------------------------------- #
SENTIMENT_POSITIVE = [
    "great", "excellent", "amazing", "wonderful", "fantastic", "perfect",
    "love", "loved", "best", "awesome", "superb", "outstanding",
    "impressive", "satisfied", "recommend", "happy", "pleased", "enjoyable",
]

SENTIMENT_NEGATIVE = [
    "terrible", "awful", "horrible", "worst", "bad", "poor",
    "disappointing", "disappointed", "waste", "useless", "broken",
    "refund", "regret", "annoying", "garbage", "mediocre", "unusable",
    "defective",
]

# --------------------------------------------------------------------- #
# Amazon product reviews: four product categories (Fig. 3's four clusters)
# --------------------------------------------------------------------- #
AMAZON_CLUSTERS = {
    "food": [
        "taste", "flavor", "snack", "coffee", "tea", "chocolate", "sauce",
        "recipe", "chips", "cookies", "organic", "sugar", "protein",
        "drink", "cereal", "spice", "honey", "juice", "pasta", "candy",
        "kitchen", "meal", "breakfast", "packaging",
    ],
    "electronics": [
        "battery", "screen", "charger", "cable", "device", "laptop",
        "phone", "camera", "speaker", "bluetooth", "wireless", "usb",
        "keyboard", "mouse", "monitor", "headphones", "software", "setup",
        "firmware", "adapter", "tablet", "router", "pixel", "port",
    ],
    "movies": [
        "movie", "film", "plot", "actor", "actress", "director", "scene",
        "character", "story", "dialogue", "ending", "sequel", "drama",
        "thriller", "comedy", "soundtrack", "cinematography", "cast",
        "episode", "series", "screenplay", "remake", "trailer", "studio",
    ],
    "sports": [
        "workout", "gym", "running", "yoga", "weights", "fitness", "bike",
        "tennis", "golf", "ball", "shoes", "grip", "training", "mat",
        "resistance", "treadmill", "jersey", "outdoor", "hiking", "camping",
        "racket", "helmet", "gloves", "stretch",
    ],
}

#: Cluster-local sentiment cues: reliable *within* their home category,
#: ambiguous elsewhere (e.g. "funny" is positive for movies, a red flag for
#: food).  Keys mirror ``AMAZON_CLUSTERS``.
AMAZON_LOCAL_CUES = {
    "food": {
        "positive": ["delicious", "tasty", "fresh", "crispy", "yummy", "savory"],
        "negative": ["stale", "bland", "soggy", "rancid", "expired", "funny"],
    },
    "electronics": {
        "positive": ["fast", "sturdy", "responsive", "crisp", "seamless", "durable"],
        "negative": ["laggy", "flimsy", "overheats", "glitchy", "bricked", "slow"],
    },
    "movies": {
        "positive": ["funny", "gripping", "moving", "hilarious", "captivating", "touching"],
        "negative": ["boring", "predictable", "slow", "cheesy", "overacted", "dull"],
    },
    "sports": {
        "positive": ["comfortable", "lightweight", "supportive", "breathable", "durable", "snug"],
        "negative": ["heavy", "stiff", "slippery", "bulky", "flimsy", "tight"],
    },
}

# --------------------------------------------------------------------- #
# Yelp restaurant/business reviews: three business categories
# --------------------------------------------------------------------- #
YELP_CLUSTERS = {
    "restaurant": [
        "menu", "waiter", "dish", "appetizer", "dessert", "dinner", "lunch",
        "brunch", "chef", "table", "reservation", "portion", "entree",
        "burger", "sushi", "pizza", "tacos", "noodles", "steak", "salad",
        "patio", "takeout", "happy_hour", "buffet",
    ],
    "salon": [
        "haircut", "stylist", "salon", "appointment", "color", "nails",
        "manicure", "massage", "spa", "facial", "barber", "trim", "wax",
        "blowout", "polish", "treatment", "scalp", "lashes", "brows",
        "shampoo", "conditioner", "booking", "chair", "mirror",
    ],
    "repair": [
        "mechanic", "repair", "oil", "brakes", "engine", "tires",
        "transmission", "estimate", "quote", "diagnostic", "warranty",
        "alignment", "inspection", "battery", "bumper", "windshield",
        "garage", "labor", "parts", "tow", "leak", "muffler", "dent",
        "shop",
    ],
}

YELP_LOCAL_CUES = {
    "restaurant": {
        "positive": ["delicious", "flavorful", "fresh", "cozy", "attentive", "generous"],
        "negative": ["bland", "cold", "greasy", "slow", "rude", "overpriced"],
    },
    "salon": {
        "positive": ["relaxing", "gentle", "stylish", "clean", "friendly", "precise"],
        "negative": ["botched", "uneven", "painful", "rushed", "unsanitary", "cold"],
    },
    "repair": {
        "positive": ["honest", "quick", "fair", "reliable", "thorough", "transparent"],
        "negative": ["overcharged", "shady", "slow", "sloppy", "unresolved", "greasy"],
    },
}

# --------------------------------------------------------------------- #
# IMDB movie reviews: two broad genre clusters, longer documents
# --------------------------------------------------------------------- #
IMDB_CLUSTERS = {
    "drama": [
        "drama", "performance", "oscar", "emotional", "character", "novel",
        "adaptation", "monologue", "tragedy", "romance", "biopic", "period",
        "acting", "script", "dialogue", "theme", "narrative", "subtle",
        "portrayal", "ensemble", "arc", "pacing", "tone", "depth",
    ],
    "action": [
        "action", "explosion", "chase", "fight", "stunt", "villain", "hero",
        "sequel", "franchise", "blockbuster", "cgi", "effects", "gunfight",
        "car", "spy", "mission", "battle", "warrior", "showdown",
        "adrenaline", "budget", "choreography", "set_piece", "finale",
    ],
}

IMDB_LOCAL_CUES = {
    "drama": {
        "positive": ["moving", "nuanced", "powerful", "haunting", "poignant", "masterful"],
        "negative": ["melodramatic", "slow", "pretentious", "tedious", "hollow", "overwrought"],
    },
    "action": {
        "positive": ["thrilling", "explosive", "slick", "relentless", "spectacular", "fun"],
        "negative": ["mindless", "incoherent", "loud", "derivative", "bloated", "choppy"],
    },
}

# --------------------------------------------------------------------- #
# YouTube comment spam: two comment-context clusters
# --------------------------------------------------------------------- #
YOUTUBE_CLUSTERS = {
    "music": [
        "song", "music", "video", "album", "beat", "lyrics", "voice",
        "remix", "artist", "listening", "chorus", "melody", "concert",
        "playlist", "cover", "tune", "track", "singer", "band", "guitar",
    ],
    "gaming": [
        "game", "gameplay", "level", "player", "stream", "console", "clip",
        "speedrun", "boss", "mod", "update", "patch", "server", "loot",
        "quest", "tutorial", "walkthrough", "controller", "graphics", "fps",
    ],
}

#: Spam cue words: "positive" here means the spam class (+1).
SPAM_GLOBAL_POSITIVE = [
    "subscribe", "free", "win", "winner", "click", "link", "channel",
    "giveaway", "promo", "follow", "cash", "prize", "offer", "earn",
    "money", "visit", "website", "bonus",
]

#: Ham cue words (the -1 class): ordinary engagement vocabulary.
SPAM_GLOBAL_NEGATIVE = [
    "love", "favorite", "awesome", "thanks", "nice", "best", "cool",
    "beautiful", "amazing", "classic", "memories", "masterpiece",
    "talented", "legend", "epic", "underrated", "vibes", "chills",
]

YOUTUBE_LOCAL_CUES = {
    "music": {
        "positive": ["sub4sub", "mixtape", "soundcloud", "promotion", "collab", "shoutout"],
        "negative": ["nostalgia", "anthem", "goosebumps", "repeat", "timeless", "acoustic"],
    },
    "gaming": {
        "positive": ["hack", "cheats", "generator", "unlock", "coins", "glitch"],
        "negative": ["clutch", "strategy", "build", "squad", "ranked", "grind"],
    },
}

# --------------------------------------------------------------------- #
# SMS spam: two message-context clusters, heavy class imbalance
# --------------------------------------------------------------------- #
SMS_CLUSTERS = {
    "personal": [
        "home", "tonight", "tomorrow", "meet", "dinner", "call", "later",
        "love", "miss", "sorry", "ok", "yeah", "lol", "good", "night",
        "morning", "mum", "dad", "friend", "movie", "bus", "class", "work",
        "sleep",
    ],
    "transactional": [
        "account", "bank", "order", "delivery", "appointment", "reminder",
        "confirm", "code", "payment", "balance", "ticket", "booking",
        "flight", "train", "invoice", "receipt", "schedule", "update",
        "service", "customer", "ref", "number", "due", "renewal",
    ],
}

SMS_LOCAL_CUES = {
    "personal": {
        "positive": ["xxx", "dating", "hot", "singles", "chat", "babe"],
        "negative": ["haha", "cya", "thx", "gonna", "wanna", "hugs"],
    },
    "transactional": {
        "positive": ["won", "claim", "urgent", "guaranteed", "prize", "tone"],
        "negative": ["dispatched", "confirmed", "arrives", "statement", "branch", "helpline"],
    },
}

SMS_GLOBAL_POSITIVE = [
    "free", "win", "cash", "txt", "text", "call", "mobile", "stop",
    "award", "awarded", "entry", "offer", "credit", "voucher", "bonus",
    "winner", "congratulations", "selected",
]

SMS_GLOBAL_NEGATIVE = [
    "see", "come", "know", "time", "today", "still", "thing", "going",
    "feel", "want", "said", "back", "take", "need", "week", "right",
    "think", "day",
]

# --------------------------------------------------------------------- #
# Visual Genome "carrying" vs "riding": object tokens per scene type.
# Examples are object-token sets; primitives are the object annotations,
# exactly as the paper configures VG (Sec. 5.1).
# --------------------------------------------------------------------- #
VG_CLUSTERS = {
    "street": [
        "road", "sidewalk", "car", "traffic_light", "crosswalk", "building",
        "sign", "lamp_post", "bus", "curb", "intersection", "pavement",
        "storefront", "pedestrian", "crowd", "umbrella", "jacket", "street",
    ],
    "park": [
        "grass", "tree", "bench", "path", "fountain", "playground", "dog",
        "leash", "picnic", "field", "pond", "trail", "shade", "kite",
        "frisbee", "flowers", "lawn", "gate",
    ],
    "beach": [
        "sand", "ocean", "wave", "towel", "sunglasses", "swimsuit", "shore",
        "seagull", "pier", "shell", "tide", "dune", "boardwalk", "cooler",
        "sunscreen", "palm", "surf", "breeze",
    ],
}

#: Objects that indicate the "riding" relation (+1 class).
VG_GLOBAL_POSITIVE = [
    "horse", "bicycle", "motorcycle", "skateboard", "saddle", "helmet",
    "handlebars", "scooter", "wagon", "elephant", "carousel", "surfboard",
    "wheel", "pedal",
]

#: Objects that indicate the "carrying" relation (-1 class).
VG_GLOBAL_NEGATIVE = [
    "bag", "backpack", "tray", "box", "basket", "suitcase", "satchel",
    "bundle", "groceries", "luggage", "purse", "briefcase", "bucket",
    "parcel",
]

VG_LOCAL_CUES = {
    "street": {
        "positive": ["taxi", "rickshaw", "segway", "moped", "tram", "unicycle"],
        "negative": ["shopping_bag", "crate", "delivery", "package", "cart", "umbrella_bag"],
    },
    "park": {
        "positive": ["pony", "tricycle", "rollerblades", "tandem", "mare", "stirrup"],
        "negative": ["picnic_basket", "cooler_box", "water_bottle", "blanket_roll", "toy_bag", "stroller_bag"],
    },
    "beach": {
        "positive": ["jetski", "paddleboard", "bodyboard", "kayak", "windsurfer", "raft"],
        "negative": ["beach_bag", "bucket_spade", "towel_roll", "icebox", "net_bag", "umbrella_case"],
    },
}
