"""Dataset containers: raw corpora, splits, and featurized views.

A :class:`FeaturizedDataset` is the single object every interactive method
consumes.  It bundles, per split:

* TF-IDF feature rows ``X`` (what the end model and distance functions see),
* binary primitive-incidence rows ``B`` (``B[i, z] = 1`` iff primitive ``z``
  occurs in example ``i`` — the substrate LFs vote through), and
* ground-truth labels ``y`` (read only by the oracle simulated user, the
  evaluation code, and the validation tuner — mirroring the paper's setup).

Ground truth for the *train* split exists but is hidden behind the simulated
user, exactly as in the paper's protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.data.synthetic import SyntheticCorpus
from repro.text.tfidf import TfidfVectorizer
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_range

SPLIT_NAMES = ("train", "valid", "test")


@dataclass
class Split:
    """One split of a featurized dataset."""

    texts: list[str]
    X: sp.csr_matrix
    B: sp.csr_matrix
    y: np.ndarray
    clusters: np.ndarray

    @property
    def n(self) -> int:
        return len(self.texts)

    @property
    def B_csc(self) -> sp.csc_matrix:
        """Column-major twin of ``B``, built lazily and cached.

        LF application reads one primitive column per call; the CSC layout
        makes that an O(nnz_col) ``indptr`` slice instead of an O(nnz)
        CSR column extraction.
        """
        cached = getattr(self, "_B_csc", None)
        if cached is None:
            cached = self.B.tocsc()
            object.__setattr__(self, "_B_csc", cached)
        return cached


@dataclass
class FeaturizedDataset:
    """A fully-prepared dataset ready for interactive data programming.

    Attributes
    ----------
    name:
        Dataset name (e.g. ``"amazon"``).
    metric:
        ``"accuracy"`` or ``"f1"`` — the paper uses F1 only for SMS.
    splits:
        Mapping from split name to :class:`Split`.
    primitive_names:
        Token for each primitive-domain column of ``B``.
    lexicon:
        Cue word -> polarity map available to the simulated user.
    label_prior:
        ``P(y = +1)`` estimated from the validation split (the user model's
        ``P(y)`` in Eq. 2).
    cluster_names:
        Names of the generator's latent clusters (analysis only).
    """

    name: str
    metric: str
    splits: dict[str, Split]
    primitive_names: list[str]
    lexicon: dict[str, int] = field(default_factory=dict)
    label_prior: float = 0.5
    cluster_names: list[str] = field(default_factory=list)

    # -- convenience accessors ---------------------------------------- #
    @property
    def train(self) -> Split:
        return self.splits["train"]

    @property
    def valid(self) -> Split:
        return self.splits["valid"]

    @property
    def test(self) -> Split:
        return self.splits["test"]

    @property
    def n_primitives(self) -> int:
        return len(self.primitive_names)

    def primitive_id(self, token: str) -> int:
        """Index of ``token`` in the primitive domain; raises if absent."""
        try:
            return self._primitive_index[token]
        except AttributeError:
            self._primitive_index = {t: i for i, t in enumerate(self.primitive_names)}
            return self._primitive_index[token]

    def describe(self) -> str:
        """One-line, Table-1-style statistics string."""
        sizes = {name: split.n for name, split in self.splits.items()}
        return (
            f"{self.name}: #Train={sizes['train']} #Valid={sizes['valid']} "
            f"#Test={sizes['test']} |Z|={self.n_primitives} metric={self.metric}"
        )


def train_valid_test_split(
    n: int,
    valid_ratio: float = 0.1,
    test_ratio: float = 0.1,
    seed=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random 80/10/10-style index split (paper Sec. 5.1 convention)."""
    check_in_range("valid_ratio", valid_ratio, 0.0, 1.0, inclusive=False)
    check_in_range("test_ratio", test_ratio, 0.0, 1.0, inclusive=False)
    if valid_ratio + test_ratio >= 1.0:
        raise ValueError("valid_ratio + test_ratio must be < 1")
    rng = ensure_rng(seed)
    order = rng.permutation(n)
    n_valid = max(int(round(valid_ratio * n)), 1)
    n_test = max(int(round(test_ratio * n)), 1)
    valid_idx = order[:n_valid]
    test_idx = order[n_valid : n_valid + n_test]
    train_idx = order[n_valid + n_test :]
    return np.sort(train_idx), np.sort(valid_idx), np.sort(test_idx)


def featurize_corpus(
    corpus: SyntheticCorpus,
    metric: str = "accuracy",
    min_df: int = 2,
    max_df_ratio: float = 0.5,
    valid_ratio: float = 0.1,
    test_ratio: float = 0.1,
    seed=None,
) -> FeaturizedDataset:
    """Split and featurize a corpus into a :class:`FeaturizedDataset`.

    The TF-IDF vectorizer (and hence the primitive domain, which is its
    vocabulary) is fitted on the *train* split only, then applied to all
    splits; the label prior is estimated on the validation split.

    Parameters
    ----------
    corpus:
        A generated :class:`SyntheticCorpus`.
    metric:
        ``"accuracy"`` or ``"f1"``.
    min_df / max_df_ratio:
        Vocabulary filters; ``max_df_ratio`` removes near-stopwords from the
        primitive domain (users do not write LFs on "the").
    valid_ratio / test_ratio:
        Split fractions (default 80/10/10).
    seed:
        Controls the split permutation only.
    """
    if metric not in ("accuracy", "f1"):
        raise ValueError(f"metric must be 'accuracy' or 'f1', got {metric!r}")
    train_idx, valid_idx, test_idx = train_valid_test_split(
        len(corpus), valid_ratio=valid_ratio, test_ratio=test_ratio, seed=seed
    )
    index_of = {"train": train_idx, "valid": valid_idx, "test": test_idx}

    train_texts = [corpus.texts[i] for i in train_idx]
    vectorizer = TfidfVectorizer(min_df=min_df, max_df_ratio=max_df_ratio)
    vectorizer.fit(train_texts)
    primitive_names = vectorizer.vocabulary.tokens

    splits: dict[str, Split] = {}
    for split_name, idx in index_of.items():
        texts = [corpus.texts[i] for i in idx]
        X = vectorizer.transform(texts)
        B = _binarize(X)
        splits[split_name] = Split(
            texts=texts,
            X=X,
            B=B,
            y=corpus.labels[idx].astype(int),
            clusters=corpus.clusters[idx].astype(int),
        )

    valid_y = splits["valid"].y
    label_prior = float(np.clip((valid_y == 1).mean(), 0.05, 0.95))
    return FeaturizedDataset(
        name=corpus.name,
        metric=metric,
        splits=splits,
        primitive_names=primitive_names,
        lexicon=dict(corpus.lexicon),
        label_prior=label_prior,
        cluster_names=list(corpus.cluster_names),
    )


def _binarize(X: sp.csr_matrix) -> sp.csr_matrix:
    """0/1 incidence matrix with the sparsity pattern of ``X``."""
    B = X.copy().tocsr()
    B.data = np.ones_like(B.data)
    return B
