"""Sampled corpus growth: scale a generated corpus without regenerating it.

The token-level :class:`~repro.data.synthetic.CorpusGenerator` is a Python
loop over every token of every document — fine at bench scale, but the
perf harness sweeps to n_train = 500k (625k documents), where full
generation costs minutes of pure RNG churn.  :func:`grow_corpus` instead
generates a *base* corpus at a fraction of the target size and grows it by
**document bootstrap**: each new document picks a base document uniformly
at random and resamples that document's own tokens with replacement.

The grown corpus preserves exactly what the perf benchmark needs:

* the vocabulary (no new tokens are minted, so the primitive domain and
  feature dimensionality match a directly-generated corpus of the same
  spec),
* each document's cluster, label, and length (bootstrap keeps the source
  document's metadata and token count), hence the corpus-level class
  balance and cluster mix in expectation, and
* per-document token statistics — resampling *within* one document draws
  from that document's empirical token distribution, so grown documents
  are distinct TF-IDF rows (not row duplicates) that still sit in their
  source's cluster region.

It deliberately does **not** reproduce the generator's exact corpus-level
word frequencies (a bootstrap never does); quality benchmarks keep using
the generator directly.  Growth is fully deterministic given the seed.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import SyntheticCorpus
from repro.utils.rng import ensure_rng


def grow_corpus(base: SyntheticCorpus, n_docs: int, seed=None) -> SyntheticCorpus:
    """Grow ``base`` to ``n_docs`` documents by document bootstrap.

    Parameters
    ----------
    base:
        A generated corpus to grow.  Returned unchanged if it already has
        ``n_docs`` documents.
    n_docs:
        Target total document count; must be >= ``len(base)``.
    seed:
        Seed (or Generator) driving source-document choice and the
        within-document token resampling.
    """
    if n_docs < len(base):
        raise ValueError(
            f"cannot grow a corpus of {len(base)} documents down to {n_docs}; "
            "growth only adds documents"
        )
    if n_docs == len(base):
        return base
    rng = ensure_rng(seed)
    n_extra = n_docs - len(base)
    sources = rng.integers(0, len(base), size=n_extra)
    base_tokens = [text.split() for text in base.texts]

    texts = list(base.texts)
    for src in sources:
        tokens = base_tokens[src]
        draw = rng.integers(0, len(tokens), size=len(tokens))
        texts.append(" ".join(tokens[j] for j in draw))

    labels = np.concatenate([base.labels, base.labels[sources]])
    clusters = np.concatenate([base.clusters, base.clusters[sources]])
    return SyntheticCorpus(
        name=base.name,
        texts=texts,
        labels=labels,
        clusters=clusters,
        cluster_names=list(base.cluster_names),
        lexicon=dict(base.lexicon),
    )
