"""Synthetic corpus generator reproducing the paper's data phenomena.

The generator builds labeled corpora with the two structural properties that
Nemo's contributions exploit (paper Figures 2 and 3, Example 1.1):

1. **Cluster-local generalization.**  Documents belong to latent *category
   clusters* with cluster-specific marker vocabulary, so TF-IDF proximity
   correlates with cluster membership and keyword LFs mostly cover documents
   from the cluster of their development example.

2. **Distance-decaying LF accuracy.**  Two kinds of label-cue words exist:
   *global cues* that indicate a label reliably everywhere, and *local cues*
   that are reliable only inside their home cluster — outside it their
   polarity is re-randomized per cluster.  An LF built on a local cue is
   therefore accurate near its development data and noisy far away, which is
   exactly what the LF contextualizer (Eq. 4) is designed to exploit.

All sampling is driven by an explicit :class:`numpy.random.Generator`, so
corpora are fully reproducible from a single seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class ClusterSpec:
    """One latent category cluster.

    Parameters
    ----------
    name:
        Human-readable cluster name (e.g. ``"food"``).
    marker_words:
        Neutral words characteristic of this cluster; they carry no label
        signal but define the cluster's region in feature space.
    local_positive / local_negative:
        Cue words whose stated polarity holds *inside this cluster only*.
    weight:
        Relative probability of a document being drawn from this cluster.
    """

    name: str
    marker_words: tuple[str, ...]
    local_positive: tuple[str, ...] = ()
    local_negative: tuple[str, ...] = ()
    weight: float = 1.0


@dataclass(frozen=True)
class CorpusSpec:
    """Full specification of a synthetic corpus.

    Parameters
    ----------
    name:
        Corpus name (used for seeding and error messages).
    clusters:
        The latent category clusters.
    global_positive / global_negative:
        Cue words indicating +1 / -1 reliably in every cluster.
    common_words:
        Label- and cluster-neutral filler vocabulary.
    positive_ratio:
        Class prior ``P(y = +1)``; 0.13 reproduces SMS-like imbalance.
    mean_doc_length:
        Poisson mean of document length in tokens (clipped at
        ``min_doc_length``).
    min_doc_length:
        Hard lower bound on tokens per document.
    p_common / p_marker / p_global / p_local:
        Per-token mixture weights of the four word sources; must sum to 1.
    global_reliability:
        Probability that an emitted global cue matches the document label.
    global_reliability_pos:
        Optional override of ``global_reliability`` for *positive* documents
        only.  Asymmetric reliabilities model e.g. spam that deliberately
        mimics ham vocabulary (spam messages containing "come", "see", ...)
        while ham essentially never contains spam trigger words.
    local_reliability:
        Probability that an emitted home-cluster local cue matches the
        document label.
    local_leak:
        Probability that a "local" emission borrows another cluster's local
        cue word; borrowed cues are polarity-randomized per
        (word, cluster) pair, producing the accuracy-decay phenomenon.
    zipf_exponent:
        Within-bank word frequencies follow a Zipf law with this exponent
        (0 recovers uniform sampling).  Zipfian frequencies are load-bearing
        for the paper's selection dynamics: head words let a few LFs cover
        a large share of their home cluster quickly, so uncertainty mass
        shifts to under-covered clusters early — the regime in which
        strategic selection pays off (paper Fig. 6).  Curated words sit at
        the head of each bank, so they are also the frequent ones.
    """

    name: str
    clusters: tuple[ClusterSpec, ...]
    global_positive: tuple[str, ...]
    global_negative: tuple[str, ...]
    common_words: tuple[str, ...]
    positive_ratio: float = 0.5
    mean_doc_length: float = 20.0
    min_doc_length: int = 4
    p_common: float = 0.40
    p_marker: float = 0.28
    p_global: float = 0.14
    p_local: float = 0.18
    global_reliability: float = 0.88
    global_reliability_pos: float | None = None
    local_reliability: float = 0.92
    local_leak: float = 0.25
    zipf_exponent: float = 0.6

    def __post_init__(self) -> None:
        check_in_range("positive_ratio", self.positive_ratio, 0.0, 1.0, inclusive=False)
        check_positive("mean_doc_length", self.mean_doc_length)
        total = self.p_common + self.p_marker + self.p_global + self.p_local
        if not np.isclose(total, 1.0):
            raise ValueError(f"token mixture weights must sum to 1, got {total}")
        check_in_range("global_reliability", self.global_reliability, 0.5, 1.0)
        if self.global_reliability_pos is not None:
            check_in_range(
                "global_reliability_pos", self.global_reliability_pos, 0.5, 1.0
            )
        check_in_range("local_reliability", self.local_reliability, 0.5, 1.0)
        check_in_range("local_leak", self.local_leak, 0.0, 1.0)
        if self.zipf_exponent < 0:
            raise ValueError(f"zipf_exponent must be >= 0, got {self.zipf_exponent}")
        if not self.clusters:
            raise ValueError("at least one cluster is required")


@dataclass
class SyntheticCorpus:
    """A generated corpus: parallel arrays of texts, labels, and clusters.

    ``lexicon`` maps every *global* cue word to its true polarity — the
    synthetic stand-in for the external opinion lexicon the paper's
    simulated user consults (Sec. 5.1 footnote 1).
    """

    name: str
    texts: list[str]
    labels: np.ndarray  # (n,) int in {-1, +1}
    clusters: np.ndarray  # (n,) int cluster index
    cluster_names: list[str]
    lexicon: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.texts)


class CorpusGenerator:
    """Samples :class:`SyntheticCorpus` instances from a :class:`CorpusSpec`."""

    def __init__(self, spec: CorpusSpec) -> None:
        self.spec = spec
        self._cluster_weights = np.array([c.weight for c in spec.clusters], float)
        self._cluster_weights /= self._cluster_weights.sum()
        self._zipf_cache: dict[int, np.ndarray] = {}

    def _pick(self, rng: np.random.Generator, bank) -> str:
        """Sample one word from a bank under the spec's Zipf law."""
        n = len(bank)
        if n == 1:
            return str(bank[0])
        probs = self._zipf_cache.get(n)
        if probs is None:
            ranks = np.arange(1, n + 1, dtype=float)
            weights = ranks ** (-self.spec.zipf_exponent)
            probs = weights / weights.sum()
            self._zipf_cache[n] = probs
        return str(bank[int(rng.choice(n, p=probs))])

    def generate(self, n_docs: int, seed=None) -> SyntheticCorpus:
        """Generate ``n_docs`` documents.

        The per-(word, cluster) polarity of *borrowed* local cues is sampled
        once per corpus, so a given foreign cue word is consistently
        misleading (or accidentally correct) within a cluster — matching how
        e.g. "funny" consistently skews negative for food reviews.
        """
        check_positive("n_docs", n_docs)
        rng = ensure_rng(seed)
        spec = self.spec
        foreign_polarity = self._sample_foreign_polarities(rng)
        texts: list[str] = []
        labels = np.empty(n_docs, dtype=int)
        clusters = np.empty(n_docs, dtype=int)
        for i in range(n_docs):
            c = int(rng.choice(len(spec.clusters), p=self._cluster_weights))
            y = 1 if rng.random() < spec.positive_ratio else -1
            length = max(int(rng.poisson(spec.mean_doc_length)), spec.min_doc_length)
            tokens = [self._sample_token(rng, c, y, foreign_polarity) for _ in range(length)]
            texts.append(" ".join(tokens))
            labels[i] = y
            clusters[i] = c
        lexicon = {w: 1 for w in spec.global_positive}
        lexicon.update({w: -1 for w in spec.global_negative})
        # Real opinion lexicons also list context-dependent cues ("funny" is
        # a positive word to Hu & Liu) — include local cues at their *home*
        # polarity, so the simulated user plausibly writes LFs whose
        # accuracy decays away from their development cluster (Fig. 2).
        for cluster in spec.clusters:
            for word in cluster.local_positive:
                lexicon.setdefault(word, 1)
            for word in cluster.local_negative:
                lexicon.setdefault(word, -1)
        return SyntheticCorpus(
            name=spec.name,
            texts=texts,
            labels=labels,
            clusters=clusters,
            cluster_names=[c.name for c in spec.clusters],
            lexicon=lexicon,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _sample_foreign_polarities(self, rng: np.random.Generator) -> dict[tuple[str, int], int]:
        """Assign each local cue a fixed polarity in every *foreign* cluster."""
        spec = self.spec
        polarity: dict[tuple[str, int], int] = {}
        for home_idx, home in enumerate(spec.clusters):
            for word in (*home.local_positive, *home.local_negative):
                for other_idx in range(len(spec.clusters)):
                    if other_idx == home_idx:
                        continue
                    polarity[(word, other_idx)] = 1 if rng.random() < 0.5 else -1
        return polarity

    def _sample_token(
        self,
        rng: np.random.Generator,
        cluster_idx: int,
        label: int,
        foreign_polarity: dict[tuple[str, int], int],
    ) -> str:
        spec = self.spec
        cluster = spec.clusters[cluster_idx]
        roll = rng.random()
        if roll < spec.p_common:
            return self._pick(rng, spec.common_words)
        roll -= spec.p_common
        if roll < spec.p_marker and cluster.marker_words:
            return self._pick(rng, cluster.marker_words)
        roll -= spec.p_marker
        if roll < spec.p_global:
            reliability = spec.global_reliability
            if label == 1 and spec.global_reliability_pos is not None:
                reliability = spec.global_reliability_pos
            emitted = label if rng.random() < reliability else -label
            bank = spec.global_positive if emitted == 1 else spec.global_negative
            return self._pick(rng, bank)
        return self._sample_local_cue(rng, cluster_idx, label, foreign_polarity)

    def _sample_local_cue(
        self,
        rng: np.random.Generator,
        cluster_idx: int,
        label: int,
        foreign_polarity: dict[tuple[str, int], int],
    ) -> str:
        spec = self.spec
        cluster = spec.clusters[cluster_idx]
        borrow = rng.random() < spec.local_leak and len(spec.clusters) > 1
        if borrow:
            other_indices = [i for i in range(len(spec.clusters)) if i != cluster_idx]
            src_idx = int(rng.choice(other_indices))
            src = spec.clusters[src_idx]
            candidates = [
                w
                for w in (*src.local_positive, *src.local_negative)
                if foreign_polarity.get((w, cluster_idx), 0) == label
            ]
            if candidates:
                return self._pick(rng, candidates)
            # No borrowed word carries this label in this cluster; fall through
            # to a home-cluster cue.
        emitted = label if rng.random() < spec.local_reliability else -label
        bank = cluster.local_positive if emitted == 1 else cluster.local_negative
        if not bank:  # cluster without local cues: emit a global cue instead
            bank = spec.global_positive if emitted == 1 else spec.global_negative
        return self._pick(rng, bank)


def make_toy_clusters(
    n_docs: int = 400,
    n_clusters: int = 4,
    separation: float = 4.0,
    noise: float = 0.8,
    seed=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate the 2-D Gaussian toy data of Figures 3/6/7.

    Returns ``(X, y, clusters)`` where ``X`` is ``(n, 2)`` float, ``y`` in
    {-1, +1}, and ``clusters`` are integer ids.  Cluster centers sit on a
    circle; each cluster is label-homogeneous with probability 0.9 on its
    majority label, mirroring the paper's "each cluster corresponds to a
    product category" toy.
    """
    check_positive("n_docs", n_docs)
    check_positive("n_clusters", n_clusters)
    rng = ensure_rng(seed)
    angles = 2 * np.pi * np.arange(n_clusters) / n_clusters
    centers = separation * np.stack([np.cos(angles), np.sin(angles)], axis=1)
    majority = np.array([1 if k % 2 == 0 else -1 for k in range(n_clusters)])
    sizes = rng.multinomial(n_docs, np.full(n_clusters, 1.0 / n_clusters))
    xs, ys, cs = [], [], []
    for k, size in enumerate(sizes):
        pts = centers[k] + noise * rng.standard_normal((size, 2))
        lbl = np.where(rng.random(size) < 0.9, majority[k], -majority[k])
        xs.append(pts)
        ys.append(lbl)
        cs.append(np.full(size, k))
    X = np.concatenate(xs, axis=0)
    y = np.concatenate(ys).astype(int)
    clusters = np.concatenate(cs).astype(int)
    order = rng.permutation(len(y))
    return X[order], y[order], clusters[order]
