"""Datasets: synthetic corpora reproducing the paper's six benchmarks.

See DESIGN.md for the substitution rationale (the public corpora are
unavailable offline; the generator reproduces the structural properties the
paper's methods exploit).
"""

from repro.data.dataset import (
    FeaturizedDataset,
    Split,
    featurize_corpus,
    train_valid_test_split,
)
from repro.data.growth import grow_corpus
from repro.data.recipes import (
    DATASET_NAMES,
    load_dataset,
    make_amazon,
    make_imdb,
    make_sms,
    make_vg,
    make_yelp,
    make_youtube,
)
from repro.data.synthetic import (
    ClusterSpec,
    CorpusGenerator,
    CorpusSpec,
    SyntheticCorpus,
    make_toy_clusters,
)

__all__ = [
    "FeaturizedDataset",
    "Split",
    "featurize_corpus",
    "train_valid_test_split",
    "grow_corpus",
    "DATASET_NAMES",
    "load_dataset",
    "make_amazon",
    "make_yelp",
    "make_imdb",
    "make_youtube",
    "make_sms",
    "make_vg",
    "ClusterSpec",
    "CorpusSpec",
    "CorpusGenerator",
    "SyntheticCorpus",
    "make_toy_clusters",
]
