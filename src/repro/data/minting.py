"""Deterministic pseudo-word minting for vocabulary expansion.

The curated word banks in :mod:`repro.data.wordbanks` carry the semantics
(category markers, sentiment/spam cues), but real corpora have *thousands*
of distinct tokens, each covering only a percent or two of documents.
Vocabulary size is load-bearing for the paper's dynamics: with a small
vocabulary every keyword LF covers 10-25% of the corpus, coverage saturates
within ten iterations, and the interactive regime the paper studies
(50 iterations of gradual coverage growth) collapses.  Minted words pad
every bank to realistic sizes while keeping documents pronounceable.
"""

from __future__ import annotations

from repro.utils.rng import ensure_rng

_ONSETS = (
    "b", "br", "c", "ch", "cl", "d", "dr", "f", "fl", "g", "gr", "h", "j",
    "k", "l", "m", "n", "p", "pl", "pr", "qu", "r", "s", "sh", "sl", "sn",
    "st", "t", "th", "tr", "v", "w", "z",
)
_VOWELS = ("a", "e", "i", "o", "u", "ai", "ea", "ou", "oo")
_CODAS = ("", "", "", "n", "r", "s", "l", "t", "m", "nd", "st", "ck")


def mint_word(rng, n_syllables: int) -> str:
    """One pronounceable pseudo-word with the given syllable count."""
    parts = []
    for idx in range(n_syllables):
        onset = str(rng.choice(_ONSETS))
        vowel = str(rng.choice(_VOWELS))
        coda = str(rng.choice(_CODAS)) if idx == n_syllables - 1 else ""
        parts.append(onset + vowel + coda)
    return "".join(parts)


def mint_words(
    n: int,
    seed=None,
    taken: set[str] | None = None,
    min_syllables: int = 2,
    max_syllables: int = 3,
) -> list[str]:
    """Mint ``n`` distinct pseudo-words, avoiding the ``taken`` set.

    Deterministic for a fixed seed; collisions (with ``taken`` or previous
    mints) are retried, so the output is always exactly ``n`` unique words.

    Examples
    --------
    >>> words = mint_words(5, seed=0)
    >>> len(set(words)) == 5
    True
    >>> mint_words(5, seed=0) == mint_words(5, seed=0)
    True
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    rng = ensure_rng(seed)
    used = set(taken) if taken else set()
    words: list[str] = []
    while len(words) < n:
        n_syl = int(rng.integers(min_syllables, max_syllables + 1))
        word = mint_word(rng, n_syl)
        if word in used:
            continue
        used.add(word)
        words.append(word)
    return words


def expand_bank(
    bank: list[str] | tuple[str, ...],
    target_size: int,
    seed=None,
    taken: set[str] | None = None,
) -> tuple[str, ...]:
    """Pad a curated word bank with minted words up to ``target_size``.

    The curated words stay first (they remain the most recognizable cues in
    generated text and in the lexicon); returns the bank unchanged when it
    already meets the target.
    """
    bank = tuple(bank)
    if len(bank) >= target_size:
        return bank
    avoid = set(bank) | (set(taken) if taken else set())
    extra = mint_words(target_size - len(bank), seed=seed, taken=avoid)
    return bank + tuple(extra)
