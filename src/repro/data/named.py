"""Name-based dataset resolution across both cardinalities.

The CLI and the sweep subsystem both address datasets by name — the six
binary benchmarks (Table 1) plus the multiclass ``topics`` extension —
with a size preset.  This module is the single source of that mapping, so
a worker process, the CLI, and a sweep spec all resolve a ``(name,
scale, seed)`` triple to the identical featurized dataset.

Kept in the data layer deliberately: the sweep package and the CLI both
import *down* into it, never each other.
"""

from __future__ import annotations

from repro.data.recipes import DATASET_NAMES

#: The multiclass extension dataset; selects the K-class method registry.
MC_DATASET_NAMES = ("topics",)

#: Dataset size presets shared by the CLI and sweep specs.
SCALES = ("tiny", "bench", "paper")

_TOPICS_DOCS = {"tiny": 600, "bench": 1500, "paper": 4000}
_TOPICS_VOCAB = {"tiny": 8, "bench": 15, "paper": 40}


def is_mc_dataset(name: str) -> bool:
    """Whether ``name`` selects the multiclass registry."""
    return name in MC_DATASET_NAMES


def load_named_dataset(name: str, scale: str = "bench", seed: int = 0):
    """Build any bundled dataset (binary benchmarks or the MC extension)."""
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")
    if is_mc_dataset(name):
        from repro.multiclass import make_topics_dataset

        return make_topics_dataset(
            n_docs=_TOPICS_DOCS[scale], seed=seed, vocab_scale=_TOPICS_VOCAB[scale]
        )
    if name not in DATASET_NAMES:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {DATASET_NAMES + MC_DATASET_NAMES}"
        )
    from repro.data.recipes import load_dataset

    return load_dataset(name, scale=scale, seed=seed)
